//! The serving pipeline: a bounded admission queue feeding one micro-batcher
//! thread that owns the tenant caches ([`TenantedCache`]) outright.
//!
//! Single ownership is the ordering story: every cache-touching request —
//! lookups, inserts, threshold updates, flushes, stats snapshots — flows
//! through the same FIFO queue and executes on the batcher thread, so the
//! observable history is one total order consistent with per-connection
//! submission order. Within that order the batcher is free to *group*: runs
//! of consecutive same-tenant lookups become one
//! [`SemanticCache::probe_batch`] call followed by per-outcome commits in
//! submission order, which is decision-identical to looking each up
//! sequentially (probes never observe commits — commits only touch eviction
//! recency metadata). Runs never span tenants, so one tenant's probes stay
//! bit-independent of a neighbour's traffic.
//!
//! Backpressure: the queue refuses pushes at capacity
//! ([`SubmitError::Overloaded`]) instead of buffering unboundedly, and
//! shutdown closes the queue but drains everything already admitted — every
//! ticket ever returned by [`ServePipeline::submit`] resolves.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mc_embedder::EmbeddingMemo;
use mc_metrics::trace::{flag, Stage, Trace};
use mc_store::{FsyncPolicy, RecoveryStats, StoreError};
use meancache::persist::{load_sharded_cache_tagged, save_sharded_cache_tagged};
use meancache::{
    reshard, CacheDecisionOutcome, CacheError, RoutingMode, SemanticCache, ShardedCache,
    TenantedCache, DEFAULT_TENANT,
};
use serde::{Deserialize, Serialize};

use crate::protocol::ErrorCode;
use crate::queue::{BoundedQueue, SubmitError};
use crate::stats::{ServeMetrics, ServeStatsSnapshot};
use crate::wal::{wal_path, ServeWal, WalOp};

/// One tenant a server is configured to accept: wire name, the shared
/// secret its clients present in the `Hello` handshake, and its capacity
/// quota (entries; `0` = inherit the template cache's capacity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeTenant {
    /// Tenant name (the storage namespace and the `tenant` label in
    /// metrics). At most [`crate::protocol::MAX_TENANT_LEN`] bytes on the
    /// wire.
    pub name: String,
    /// Shared secret the tenant's clients must present. Compared in
    /// constant time by the event loop.
    pub token: String,
    /// Capacity quota in entries (`0` = inherit the template capacity). A
    /// tenant at quota evicts its *own* LRU tail, never a neighbour's.
    pub quota: usize,
}

/// Configuration of the serving pipeline and the server around it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests the micro-batcher groups into one pass. `1`
    /// disables batching (every request is its own batch) — the reference
    /// configuration `exp_serve` compares against.
    pub max_batch: usize,
    /// How long an open batch lingers for stragglers after its first
    /// request arrives. Bounded added latency: a lone request is delayed by
    /// at most this much.
    pub max_wait: Duration,
    /// Admission-queue capacity; pushes beyond it are shed with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent connections the server admits; one reader and one writer
    /// pool thread are budgeted per connection, and connections beyond the
    /// limit are refused with a `Busy` frame.
    pub max_connections: usize,
    /// Artificial delay applied to every formed batch before it executes.
    /// Zero in production; tests raise it to simulate a slow consumer and
    /// exercise the load-shedding path deterministically.
    pub batch_delay: Duration,
    /// Where the cache persists: the target of the `Save` control command
    /// and of the automatic save on graceful shutdown. `None` (the
    /// default) disables both — the cache lives and dies in memory. The
    /// default tenant persists at this exact path (byte-identical to
    /// pre-tenancy layouts); extra tenants persist beside it at
    /// `<path>.tenant.<name>` plus a `<path>.tenants.json` manifest.
    pub persist_path: Option<PathBuf>,
    /// Capacity (entries) of the embedding memo-cache installed in front of
    /// the query encoder. `0` disables the memo. The memo is sound because
    /// the encoder is frozen for the server's lifetime and its tokenizer
    /// lowercases, so `trim().to_lowercase()`-equal texts encode
    /// identically. The memo is shared *across* tenants deliberately:
    /// memoized embeddings are pure functions of the query text, so sharing
    /// leaks no decisions, only speed.
    pub memo_capacity: usize,
    /// Byte bound on the embedding memo-cache (`0` = unbounded; the entry
    /// capacity still applies).
    pub memo_max_bytes: usize,
    /// Collapse identical `(tenant, query, context)` lookups that are in
    /// flight *across* batches: a duplicate attaches to the pending ticket
    /// instead of re-entering the queue. (Within-batch duplicates are
    /// always coalesced regardless of this switch.) The tenant is part of
    /// the key: one tenant's ticket never resolves with another tenant's
    /// frame.
    pub singleflight: bool,
    /// How often the batcher sweeps dead conversation-root pins from the
    /// routing table — and, with tenancy, lazily reclaims TTL-expired and
    /// epoch-invalidated entries. Zero disables the sweep. Sweeps run on
    /// the batcher thread between batches, so they serialise with inserts;
    /// an idle server does not sweep, which is fine — stale entries are
    /// already screened into misses at probe time.
    pub pin_sweep_interval: Duration,
    /// Per-request deadline, measured from admission. A *lookup* whose
    /// deadline has already expired when the batcher reaches it is not
    /// probed: its ticket resolves to a retryable deadline-exceeded
    /// failure, so a client that has given up stops costing probe work.
    /// Inserts and control commands always execute — dropping an
    /// acknowledged-admission write would be the confusing kind of fast.
    /// `Duration::ZERO` (the default) disables deadlines.
    pub request_deadline: Duration,
    /// Close connections with no traffic for this long (enforced by the
    /// event loop, not the pipeline; lives here because [`ServeConfig`] is
    /// the one config that reaches the server). `Duration::ZERO` (the
    /// default) disables reaping — idle connections cost only a file
    /// descriptor, so reaping is an operator policy, not a necessity.
    pub idle_timeout: Duration,
    /// Fsync policy for the serve write-ahead log (only consulted when
    /// [`ServeConfig::persist_path`] is set). `Always` makes every
    /// acknowledged write durable before its response leaves; `EveryN`
    /// bounds loss to the last N acknowledged writes; `Never` (the
    /// default) leaves flushing to the OS — a crash loses the un-flushed
    /// tail, a graceful stop loses nothing.
    pub fsync: FsyncPolicy,
    /// What snapshot-load recovery replayed and truncated before the
    /// server started (reported by
    /// [`meancache::persist::load_sharded_cache_with_report`]); folded
    /// into the stats plane next to the WAL's own recovery numbers.
    pub restored: RecoveryStats,
    /// Per-request trace sampling: every Nth request gets a full
    /// [`mc_metrics::Trace`] through the stage pipeline. `0` disables
    /// sampling entirely (outliers — slow / deadline-expired / panicked
    /// requests — are still force-recorded with a synthesised trace).
    /// The default, 64, keeps the hot path at one relaxed counter bump.
    pub trace_sample: u64,
    /// Requests slower than this end-to-end are flagged slow, forced into
    /// the flight recorder, and appended to the slow-request log when one
    /// is configured. `Duration::ZERO` (the default) disables slow
    /// detection.
    pub trace_slow: Duration,
    /// Path of the slow-request log: one JSON trace per line for every
    /// outlier request. `None` (the default) disables the log.
    pub trace_log: Option<PathBuf>,
    /// Tenants this server accepts via the `Hello` handshake, each with a
    /// token and a capacity quota. Empty (the default) means the server is
    /// effectively single-tenant: only the default tenant exists.
    pub tenants: Vec<ServeTenant>,
    /// The tenant legacy clients (no `Hello` handshake) are served as.
    /// `None` refuses un-authenticated data requests with a retryable
    /// `Unauthenticated` failure. The default, `Some("default")`, keeps
    /// pre-tenancy clients working unchanged.
    pub default_tenant: Option<String>,
    /// Per-entry time-to-live: a probe hit on an entry older than this is
    /// screened into a miss, and the sweep reclaims the entry lazily.
    /// `Duration::ZERO` (the default) disables expiry. TTLs are wall-clock
    /// leases measured from insert (or restore) time; they restart on
    /// server restart.
    pub ttl: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            max_connections: 32,
            batch_delay: Duration::ZERO,
            persist_path: None,
            memo_capacity: 4096,
            memo_max_bytes: 0,
            singleflight: true,
            pin_sweep_interval: Duration::from_secs(30),
            request_deadline: Duration::ZERO,
            idle_timeout: Duration::ZERO,
            fsync: FsyncPolicy::Never,
            restored: RecoveryStats::default(),
            trace_sample: 64,
            trace_slow: Duration::ZERO,
            trace_log: None,
            tenants: Vec::new(),
            default_tenant: Some(DEFAULT_TENANT.to_string()),
            ttl: Duration::ZERO,
        }
    }
}

/// A request the pipeline executes on the batcher thread.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Semantic lookup under an optional conversation context.
    Lookup {
        /// The query text.
        query: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Store a fresh (query, response) pair.
    Insert {
        /// The query text.
        query: String,
        /// The response to cache.
        response: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Snapshot the stats plane.
    Stats,
    /// Replace the cosine threshold τ on every tenant's shards.
    SetThreshold(f32),
    /// Switch the shard-routing mode by resharding every tenant's cache in
    /// place (every entry is replayed through fresh routing; public ids are
    /// reassigned). Totally ordered with the lookups around it, like every
    /// control command.
    SetRouting(RoutingMode),
    /// Persist every tenant's cache to [`ServeConfig::persist_path`].
    Save,
    /// Drop the submitting tenant's cached entries (its cache is rebuilt
    /// empty in place; neighbours are untouched).
    Flush,
    /// Render the stats plane as a plain-text metrics exposition.
    Metrics,
    /// Dump the flight recorder (recent + outlier request traces) as JSON.
    TraceDump,
    /// Bump a tenant's invalidation epoch: entries inserted before the bump
    /// are screened into misses at probe time and reclaimed lazily. `0`
    /// advances by one; a non-zero epoch is applied as `max(current, epoch)`
    /// (idempotent for retries).
    Invalidate {
        /// The tenant whose epoch advances.
        tenant: String,
        /// Target epoch (`0` = advance by one).
        epoch: u64,
    },
}

/// Classifies a request for trace labels (`Trace::kind`).
pub(crate) fn request_kind(request: &ServeRequest) -> &'static str {
    match request {
        ServeRequest::Lookup { .. } => "lookup",
        ServeRequest::Insert { .. } => "insert",
        _ => "control",
    }
}

/// What a [`ServeRequest`] resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// Lookup outcome (hit with payload, or miss).
    Outcome(CacheDecisionOutcome),
    /// Insert succeeded with this public entry id.
    Inserted(u64),
    /// Stats snapshot.
    Stats(Box<ServeStatsSnapshot>),
    /// Control command acknowledged.
    Ack,
    /// Flush completed; this many entries were dropped.
    Flushed(u64),
    /// Save completed; this many entries were persisted.
    Saved(u64),
    /// Plain-text metrics exposition
    /// ([`ServeStatsSnapshot::render_text`]).
    MetricsText(String),
    /// Flight-recorder dump as JSON (an [`mc_metrics::TraceDump`]).
    TraceJson(String),
    /// Invalidate applied; the tenant's epoch is now this value.
    Invalidated(u64),
    /// The request failed. `code` classifies the failure on the wire,
    /// `retryable` tells the client whether the request definitively did
    /// not execute (safe to resend), and `message` is operator-facing.
    Failed {
        /// Machine-readable failure class (crosses the wire as a byte).
        code: ErrorCode,
        /// `true` iff the request is known not to have executed.
        retryable: bool,
        /// Operator-facing detail.
        message: String,
    },
}

impl ServeReply {
    /// Shorthand for a failure reply.
    fn failed(code: ErrorCode, retryable: bool, message: impl Into<String>) -> Self {
        ServeReply::Failed {
            code,
            retryable,
            message: message.into(),
        }
    }
}

struct TicketState {
    reply: Option<ServeReply>,
    /// Callbacks run exactly once, on the resolving thread, after the
    /// reply is set. The event-driven server parks a waker here (a resolved
    /// ticket must nudge the loop to flush the response); the singleflight
    /// table parks its own removal here.
    watchers: Vec<Box<dyn FnOnce() + Send>>,
}

struct TicketInner {
    state: Mutex<TicketState>,
    ready: Condvar,
    /// The sampled trace riding on this request, when the tracer picked it.
    /// Set at creation, never mutated — every stage marks through here.
    trace: Option<Arc<Trace>>,
}

impl std::fmt::Debug for TicketInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("ticket lock poisoned");
        f.debug_struct("TicketInner")
            .field("reply", &state.reply)
            .field("watchers", &state.watchers.len())
            .finish()
    }
}

/// A claim on one submitted request's eventual reply. Cloneable; any clone
/// may wait, poll, or register a resolution callback.
#[derive(Debug, Clone)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    fn new(trace: Option<Arc<Trace>>) -> Self {
        Ticket(Arc::new(TicketInner {
            state: Mutex::new(TicketState {
                reply: None,
                watchers: Vec::new(),
            }),
            ready: Condvar::new(),
            trace,
        }))
    }

    /// A ticket born resolved (protocol-level replies that never enter the
    /// pipeline, e.g. `Busy`).
    pub fn resolved(reply: ServeReply) -> Self {
        let ticket = Ticket::new(None);
        ticket.resolve(reply);
        ticket
    }

    /// The sampled trace riding on this request, if any.
    pub(crate) fn trace(&self) -> Option<&Arc<Trace>> {
        self.0.trace.as_ref()
    }

    /// Resolves the ticket. Called exactly once per submitted ticket, by
    /// the batcher. Watchers run here, on the resolving thread, after the
    /// lock is released — so a watcher may freely take other locks.
    pub(crate) fn resolve(&self, reply: ServeReply) {
        let watchers = {
            let mut state = self.0.state.lock().expect("ticket lock poisoned");
            debug_assert!(state.reply.is_none(), "a ticket resolves exactly once");
            state.reply = Some(reply);
            std::mem::take(&mut state.watchers)
        };
        self.0.ready.notify_all();
        for watcher in watchers {
            watcher();
        }
    }

    /// Resolves the ticket only if it has not resolved yet; returns whether
    /// this call did the resolving. The panic-isolation path uses this to
    /// sweep a batch after `catch_unwind` — some tickets resolved before
    /// the panic, and those must not resolve twice.
    pub(crate) fn resolve_if_pending(&self, reply: ServeReply) -> bool {
        let watchers = {
            let mut state = self.0.state.lock().expect("ticket lock poisoned");
            if state.reply.is_some() {
                return false;
            }
            state.reply = Some(reply);
            std::mem::take(&mut state.watchers)
        };
        self.0.ready.notify_all();
        for watcher in watchers {
            watcher();
        }
        true
    }

    /// Registers a callback to run when the ticket resolves (immediately,
    /// on this thread, when it already has).
    pub(crate) fn on_resolve(&self, f: impl FnOnce() + Send + 'static) {
        let mut state = self.0.state.lock().expect("ticket lock poisoned");
        if state.reply.is_some() {
            drop(state);
            f();
        } else {
            state.watchers.push(Box::new(f));
        }
    }

    /// Blocks until the reply is available and clones it out.
    pub fn wait(&self) -> ServeReply {
        let mut state = self.0.state.lock().expect("ticket lock poisoned");
        loop {
            if let Some(reply) = state.reply.as_ref() {
                return reply.clone();
            }
            state = self.0.ready.wait(state).expect("ticket lock poisoned");
        }
    }

    /// The reply if already available, without blocking (the response
    /// writer uses this to coalesce only what is ready).
    pub fn try_reply(&self) -> Option<ServeReply> {
        self.0
            .state
            .lock()
            .expect("ticket lock poisoned")
            .reply
            .clone()
    }

    fn downgrade(&self) -> Weak<TicketInner> {
        Arc::downgrade(&self.0)
    }
}

#[derive(Debug)]
struct Submitted {
    /// The tenant this request executes under (resolved at submission:
    /// either the connection's authenticated tenant or the configured
    /// default).
    tenant: String,
    request: ServeRequest,
    ticket: Ticket,
    /// When the request was admitted; resolution records the difference
    /// into the latency histogram.
    accepted_at: Instant,
}

/// Key of an in-flight lookup in the cross-batch singleflight table. The
/// tenant leads: one tenant's pending ticket must never be handed to
/// another tenant's identical query.
type InflightKey = (String, String, Vec<String>);

/// On-disk manifest record for one tenant (at
/// `<persist_path>.tenants.json`): enough to restore quotas and epochs
/// across restarts. Written on every save; absent for pre-tenancy layouts.
#[derive(Debug, Serialize, Deserialize)]
struct TenantManifest {
    name: String,
    quota: usize,
    epoch: u64,
}

/// Filesystem-safe rendering of a tenant name for path suffixes.
fn tenant_suffix(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Where a non-default tenant's cache persists, relative to the base
/// persist path.
pub(crate) fn tenant_cache_path(base: &Path, name: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".tenant.{}", tenant_suffix(name)));
    PathBuf::from(os)
}

/// Where the tenant manifest persists, relative to the base persist path.
pub(crate) fn tenant_manifest_path(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".tenants.json");
    PathBuf::from(os)
}

/// The serving pipeline: admission queue + metrics + the batcher thread
/// that owns the tenant caches. See the module docs for semantics.
#[derive(Debug)]
pub struct ServePipeline {
    queue: Arc<BoundedQueue<Submitted>>,
    metrics: Arc<ServeMetrics>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    /// Cross-batch singleflight: lookups currently in the queue or being
    /// executed, keyed by `(tenant, query, context)`. `None` when disabled.
    inflight: Option<Arc<Mutex<HashMap<InflightKey, Ticket>>>>,
    /// The tenant tenant-less submissions ([`ServePipeline::submit`])
    /// execute under.
    default_tenant: String,
}

impl ServePipeline {
    /// Takes ownership of `cache` (which becomes the default tenant's
    /// store *and* the template every configured tenant's private cache is
    /// cloned from) and starts the batcher thread. Installs the embedding
    /// memo-cache when [`ServeConfig::memo_capacity`] is non-zero — shared
    /// across tenants, which is sound because memoized embeddings are pure
    /// functions of the query text.
    ///
    /// When [`ServeConfig::persist_path`] is set, restores every tenant
    /// recorded in the `<path>.tenants.json` manifest (epochs, quotas, and
    /// each tenant's cache from `<path>.tenant.<name>`), then opens
    /// (creating if absent) the serve write-ahead log at `<persist_path>.wal`
    /// and replays any acknowledged writes a crash stranded there *before*
    /// serving begins — so a restart after `kill -9` observes every write
    /// the WAL made durable, each under its own tenant.
    ///
    /// # Errors
    /// Propagates WAL open/recovery failures ([`StoreError::Io`] on
    /// filesystem trouble, [`StoreError::Corrupt`] on an undecodable
    /// checksum-valid record) and invalid tenant configuration. A server
    /// that cannot establish its durability story should fail loudly at
    /// startup, not serve without it.
    pub fn start(mut cache: ShardedCache, config: &ServeConfig) -> Result<Self, StoreError> {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let metrics = Arc::new(ServeMetrics::default());
        metrics
            .configure_tracing(
                config.trace_sample,
                config.trace_slow,
                config.trace_log.as_deref(),
            )
            .map_err(StoreError::Io)?;
        if config.memo_capacity > 0 {
            let mut memo = EmbeddingMemo::new(config.memo_capacity, config.memo_max_bytes);
            // Every memo consultation feeds the `encode` stage histogram.
            memo.set_observer(Arc::new(crate::stats::EncodeStageObserver::new(
                Arc::clone(&metrics),
            )));
            cache.set_embedding_memo(Some(Arc::new(memo)));
        }
        metrics.record_recovery(config.restored);
        let default_name = config
            .default_tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        let ttl = (!config.ttl.is_zero()).then_some(config.ttl);
        let mut tenants = TenantedCache::new(&default_name, cache, ttl);
        for spec in &config.tenants {
            tenants
                .add_tenant(&spec.name, spec.quota)
                .map_err(cache_to_store_err)?;
        }
        if let Some(path) = &config.persist_path {
            restore_tenants(&mut tenants, path, &metrics);
        }
        let wal = match &config.persist_path {
            None => None,
            Some(path) => {
                let (wal, ops, stats) = ServeWal::open(wal_path(path), config.fsync)?;
                metrics.record_recovery(stats);
                metrics.record_wal_replayed(ops.len() as u64);
                replay_wal_ops(&mut tenants, &ops);
                Some(wal)
            }
        };
        let batcher = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mc-serve-batcher".into())
                .spawn(move || batcher_loop(tenants, wal, &queue, &metrics, &config))
                .expect("batcher thread spawn failed")
        };
        Ok(Self {
            queue,
            metrics,
            batcher: Mutex::new(Some(batcher)),
            inflight: config
                .singleflight
                .then(|| Arc::new(Mutex::new(HashMap::new()))),
            default_tenant: default_name,
        })
    }

    /// Submits a request under the default tenant; the returned ticket
    /// resolves once the batcher has executed it. Never blocks.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the admission queue is full (the
    /// request is shed), [`SubmitError::ShutDown`] after
    /// [`ServePipeline::shutdown`].
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let tenant = self.default_tenant.clone();
        self.submit_for(&tenant, request)
    }

    /// Submits a request under an explicit tenant.
    ///
    /// With singleflight enabled, a lookup identical to one already in
    /// flight *for the same tenant* attaches to the pending ticket instead
    /// of re-entering the queue: both callers get the same outcome from one
    /// probe (and one commit). Decision-identical — probes are pure and the
    /// duplicate would have been coalesced had it landed in the same batch
    /// anyway — but the duplicate skips the queue entirely, so a thundering
    /// herd costs one queue slot, not many. Lookups from *different*
    /// tenants never share a ticket, no matter how equal the query text.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the admission queue is full,
    /// [`SubmitError::ShutDown`] after [`ServePipeline::shutdown`].
    pub fn submit_for(&self, tenant: &str, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let trace = self.metrics.tracer().begin(request_kind(&request));
        if let Some(t) = &trace {
            // Direct pipeline callers skip the wire: accepted = decoded.
            t.mark(Stage::Accepted);
            t.mark(Stage::Decoded);
        }
        self.submit_traced_for(tenant, request, trace)
    }

    /// [`ServePipeline::submit`] for callers that began the trace
    /// themselves (the server starts it at frame-accept time, so the trace
    /// covers decode and queueing, not just execution).
    pub fn submit_traced(
        &self,
        request: ServeRequest,
        trace: Option<Arc<Trace>>,
    ) -> Result<Ticket, SubmitError> {
        let tenant = self.default_tenant.clone();
        self.submit_traced_for(&tenant, request, trace)
    }

    /// [`ServePipeline::submit_for`] for callers that began the trace
    /// themselves.
    pub fn submit_traced_for(
        &self,
        tenant: &str,
        request: ServeRequest,
        trace: Option<Arc<Trace>>,
    ) -> Result<Ticket, SubmitError> {
        let key = match (&self.inflight, &request) {
            (Some(_), ServeRequest::Lookup { query, context }) => {
                Some((tenant.to_string(), query.clone(), context.clone()))
            }
            _ => None,
        };
        if let (Some(inflight), Some(key)) = (&self.inflight, &key) {
            let table = inflight.lock().expect("singleflight lock poisoned");
            if let Some(pending) = table.get(key) {
                self.metrics.record_singleflight();
                return Ok(pending.clone());
            }
        }
        let ticket = Ticket::new(trace);
        let result = self.queue.push(Submitted {
            tenant: tenant.to_string(),
            request,
            ticket: ticket.clone(),
            accepted_at: Instant::now(),
        });
        match result {
            Ok(()) => {
                self.metrics.record_admitted();
                if let Some(t) = ticket.trace() {
                    t.mark(Stage::Enqueued);
                }
                if let (Some(inflight), Some(key)) = (&self.inflight, key) {
                    inflight
                        .lock()
                        .expect("singleflight lock poisoned")
                        .insert(key.clone(), ticket.clone());
                    // Remove the entry exactly when this ticket resolves.
                    // The watcher holds a Weak so an ill-fated ticket can't
                    // keep itself alive through its own callback, and the
                    // pointer check means a newer in-flight entry under the
                    // same key is never removed by an older resolve.
                    let table = Arc::clone(inflight);
                    let me = ticket.downgrade();
                    ticket.on_resolve(move || {
                        let mut table = table.lock().expect("singleflight lock poisoned");
                        let matches = table
                            .get(&key)
                            .zip(me.upgrade())
                            .is_some_and(|(entry, me)| Arc::ptr_eq(&entry.0, &me));
                        if matches {
                            table.remove(&key);
                        }
                    });
                }
                Ok(ticket)
            }
            Err(SubmitError::Overloaded) => {
                self.metrics.record_shed();
                Err(SubmitError::Overloaded)
            }
            Err(e) => Err(e),
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The pipeline's live counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The tenant tenant-less submissions execute under.
    pub fn default_tenant(&self) -> &str {
        &self.default_tenant
    }

    /// Graceful shutdown: closes the queue (new submissions fail with
    /// [`SubmitError::ShutDown`]), lets the batcher drain everything
    /// already admitted — resolving every outstanding ticket — and joins
    /// it. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handle = self.batcher.lock().expect("batcher handle poisoned").take();
        if let Some(handle) = handle {
            // A panicked batcher is a bug, but the shutdown path is the
            // wrong place to double the damage: propagating here turns one
            // dead thread into a panic inside Drop (and an abort during
            // unwinding). Log it and let the process finish its teardown.
            if handle.join().is_err() {
                eprintln!(
                    "mc-serve: batcher thread panicked outside batch execution; \
                     shutting down without its final drain"
                );
            }
        }
    }
}

impl Drop for ServePipeline {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maps a cache-layer error into the store-level error `start` returns.
fn cache_to_store_err(e: CacheError) -> StoreError {
    match e {
        CacheError::Store(e) => e,
        other => StoreError::InvalidConfig(other.to_string()),
    }
}

/// Restores persisted tenant state beside the default tenant's cache (which
/// the caller loaded from the base path before [`ServePipeline::start`]):
/// reads the tenant manifest, re-applies quotas and epochs, loads each
/// non-default tenant's cache from `<path>.tenant.<name>` (verifying its
/// snapshot tenant tag), and re-registers lifecycle metadata for every
/// restored entry. Restore is tolerant: a tenant whose files are missing or
/// unreadable starts empty (its acknowledged tail is still in the WAL) —
/// one bad tenant must not block the rest of the fleet from serving.
fn restore_tenants(tenants: &mut TenantedCache, path: &Path, metrics: &ServeMetrics) {
    let manifest: Vec<TenantManifest> = match std::fs::read_to_string(tenant_manifest_path(path)) {
        Err(_) => return, // pre-tenancy layout: nothing tenant-aware saved yet
        Ok(text) => match serde_json::from_str(&text) {
            Ok(manifest) => manifest,
            Err(e) => {
                eprintln!("mc-serve: unreadable tenant manifest (starting tenants empty): {e}");
                return;
            }
        },
    };
    let default_name = tenants.default_tenant().to_string();
    let template = tenants
        .tenant(&default_name)
        .expect("default tenant always exists");
    let encoder = template.cache().encoder().clone();
    let memo = template.cache().embedding_memo().cloned();
    for entry in &manifest {
        // A manifested tenant missing from the live config is still
        // restored (quota from the manifest): its data exists and its
        // clients may re-authenticate after a config round-trip.
        if let Err(e) = tenants.add_tenant(&entry.name, entry.quota) {
            eprintln!("mc-serve: skipping manifest tenant {:?}: {e}", entry.name);
            continue;
        }
        tenants.restore_epoch(&entry.name, entry.epoch);
        if entry.name != default_name {
            let tpath = tenant_cache_path(path, &entry.name);
            match load_sharded_cache_tagged(encoder.clone(), &tpath, Some(&entry.name)) {
                Ok((mut loaded, stats)) => {
                    metrics.record_recovery(stats);
                    loaded.set_embedding_memo(memo.clone());
                    if entry.quota > 0 {
                        loaded.set_total_capacity(entry.quota);
                    }
                    *tenants.cache_mut(&entry.name).expect("tenant added above") = loaded;
                }
                Err(e) => {
                    eprintln!(
                        "mc-serve: tenant {:?} cache at {} unrestorable (starting empty, \
                         WAL replay still applies): {e}",
                        entry.name,
                        tpath.display()
                    );
                    continue;
                }
            }
        }
        // Restored entries re-enter lifecycle tracking under the manifest
        // epoch, with their TTL clocks restarted (TTLs are wall-clock
        // leases; they do not survive a restart).
        let ids = tenants
            .tenant(&entry.name)
            .map(|s| s.cache().entry_ids())
            .unwrap_or_default();
        for id in ids {
            tenants.register_restored(&entry.name, id, entry.epoch);
        }
    }
}

/// Re-applies crash-stranded WAL ops to the freshly restored tenant caches.
/// Legacy records (no tenant) map to the default tenant — a legacy flush
/// meant "the whole process" and flushes every tenant. Replay is tolerant
/// at the entry level: an op the live config refuses (it was accepted by
/// the pre-crash config) is logged and skipped — one odd entry must not
/// block recovery of the rest.
fn replay_wal_ops(tenants: &mut TenantedCache, ops: &[WalOp]) {
    let default_name = tenants.default_tenant().to_string();
    for op in ops {
        match op {
            WalOp::Insert {
                tenant,
                query,
                response,
                context,
            } => {
                let name = tenant.as_deref().unwrap_or(&default_name);
                if tenants.tenant(name).is_none() {
                    // The tenant held acknowledged data pre-crash; recreate
                    // it (template quota) rather than dropping the write.
                    if let Err(e) = tenants.add_tenant(name, 0) {
                        eprintln!("mc-serve: cannot recreate WAL tenant {name:?}: {e}");
                        continue;
                    }
                }
                if let Err(e) = tenants.insert(name, query, response, context) {
                    eprintln!("mc-serve: skipping unre-playable WAL insert {query:?}: {e}");
                }
            }
            WalOp::Flush { tenant: None } => {
                if let Err(e) = tenants.flush_all() {
                    eprintln!("mc-serve: WAL flush replay failed: {e}");
                }
            }
            WalOp::Flush { tenant: Some(name) } => {
                if let Err(e) = tenants.flush(name) {
                    eprintln!("mc-serve: WAL tenant-flush replay failed for {name:?}: {e}");
                }
            }
            WalOp::Invalidate { tenant, epoch } => {
                // The record carries the *resulting* epoch; max-merge keeps
                // replay idempotent.
                tenants.restore_epoch(tenant, *epoch);
            }
        }
    }
}

/// Persists every tenant: the default tenant at the base path exactly as a
/// single-tenant server would (legacy files stay byte-identical), each
/// extra tenant tagged at `<path>.tenant.<name>`, plus the quota/epoch
/// manifest. Returns the total entries persisted.
fn persist_all(tenants: &TenantedCache, path: &Path) -> meancache::Result<u64> {
    let mut saved = 0u64;
    for (name, store) in tenants.iter() {
        if name == tenants.default_tenant() {
            save_sharded_cache_tagged(store.cache(), path, None)?;
        } else {
            save_sharded_cache_tagged(store.cache(), &tenant_cache_path(path, name), Some(name))?;
        }
        saved += store.len() as u64;
    }
    let manifest: Vec<TenantManifest> = tenants
        .iter()
        .map(|(name, store)| TenantManifest {
            name: name.to_string(),
            quota: store.quota(),
            epoch: store.epoch(),
        })
        .collect();
    let text =
        serde_json::to_string(&manifest).map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(tenant_manifest_path(path), text)
        .map_err(|e| CacheError::Store(StoreError::Io(e)))?;
    Ok(saved)
}

fn batcher_loop(
    mut tenants: TenantedCache,
    mut wal: Option<ServeWal>,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut batch: Vec<Submitted> = Vec::with_capacity(config.max_batch.max(1));
    let mut last_sweep = Instant::now();
    loop {
        batch.clear();
        if !queue.pop_batch(config.max_batch, config.max_wait, &mut batch) {
            break; // closed and fully drained
        }
        // One clock read covers the whole batch's queue-wait accounting.
        let dequeued_at = Instant::now();
        for item in &batch {
            metrics.record_queue_wait_micros(
                dequeued_at
                    .saturating_duration_since(item.accepted_at)
                    .as_micros() as u64,
            );
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Dequeued);
            }
        }
        if !config.batch_delay.is_zero() {
            std::thread::sleep(config.batch_delay);
        }
        metrics.record_batch(batch.len());
        for item in &batch {
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Batched);
            }
        }
        execute_batch(&mut tenants, &mut wal, &batch, queue, metrics, config);
        // GC sweep: between batches the batcher is the only cache writer,
        // so both the root-pin sweep and the TTL/epoch reclaim serialise
        // with inserts by construction.
        if !config.pin_sweep_interval.is_zero() && last_sweep.elapsed() >= config.pin_sweep_interval
        {
            metrics.record_ttl_reclaimed(tenants.sweep() as u64);
            let mut pins = 0;
            for (_, store) in tenants.iter() {
                pins += store.cache().sweep_root_pins();
            }
            metrics.record_pins_swept(pins as u64);
            last_sweep = Instant::now();
        }
    }
    // Graceful-shutdown persistence: the queue is closed and drained, the
    // batcher owns the caches outright, so this is the one place a final
    // save observes every acknowledged write. The save writes each shard's
    // entry log *and* its `MCSNAP01` mmap snapshot (docs/FORMAT.md) for
    // every tenant, so the next boot restores zero-copy instead of
    // replaying. The save supersedes the serve WAL, which resets so the
    // next boot does not replay what the save already holds.
    if let Some(path) = &config.persist_path {
        match persist_all(&tenants, path) {
            Ok(_) => {
                if let Some(wal) = wal.as_mut() {
                    if let Err(e) = wal.reset() {
                        eprintln!("mc-serve: failed to reset WAL after shutdown save: {e}");
                    }
                }
            }
            Err(e) => eprintln!(
                "mc-serve: failed to persist cache to {} on shutdown: {e}",
                path.display()
            ),
        }
    }
}

/// Executes one formed batch in submission order, grouping maximal runs of
/// consecutive *same-tenant* lookups into single `probe_batch` passes with
/// duplicate requests **coalesced**: identical `(query, context)` pairs in
/// one run — the thundering-herd shape a popular cache service sees
/// constantly — are probed once and their outcome fanned out to every
/// requester (singleflight, the request-collapsing CDNs and inference
/// servers do). Probes are pure against the frozen-within-the-batch cache,
/// so coalescing is response-identical to probing each duplicate; commits
/// still run once per *request* in submission order, so eviction recency
/// matches sequential serving exactly. Runs break at tenant boundaries —
/// coalescing never crosses tenants.
fn execute_batch(
    tenants: &mut TenantedCache,
    wal: &mut Option<ServeWal>,
    batch: &[Submitted],
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut i = 0;
    while i < batch.len() {
        let is_lookup = matches!(batch[i].request, ServeRequest::Lookup { .. });
        if !is_lookup {
            execute_control(tenants, wal, &batch[i], queue, metrics, config);
            i += 1;
            continue;
        }
        let mut j = i;
        while j < batch.len()
            && matches!(batch[j].request, ServeRequest::Lookup { .. })
            && batch[j].tenant == batch[i].tenant
        {
            j += 1;
        }
        execute_lookup_run(tenants, &batch[i..j], metrics, config);
        i = j;
    }
}

/// True when `item` has outlived the configured per-request deadline.
fn past_deadline(item: &Submitted, config: &ServeConfig) -> bool {
    !config.request_deadline.is_zero() && item.accepted_at.elapsed() > config.request_deadline
}

/// Executes one maximal run of consecutive same-tenant lookups: expired
/// deadlines are answered without probing, the rest probe (coalesced when
/// the run has duplicates) behind a panic fence — a panic in cache code
/// resolves the run's outstanding tickets with a retryable error instead of
/// killing the batcher and stranding every future request. Every outcome is
/// screened through the tenant's TTL/epoch rules before it resolves.
fn execute_lookup_run(
    tenants: &TenantedCache,
    run: &[Submitted],
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let tenant = run[0].tenant.as_str();
    // Deadline pass: a lookup whose client has already given up is not
    // worth a probe. Lookups are read-only, so skipping one is invisible
    // to the served history; the ticket resolves retryable.
    let mut live: Vec<&Submitted> = Vec::with_capacity(run.len());
    for item in run {
        if past_deadline(item, config) {
            metrics.record_deadline_expired();
            // Deadline-expired requests always land in the flight recorder:
            // `record_done` force-records them, synthesising a trace when
            // the request wasn't sampled.
            metrics.record_done(
                item.accepted_at.elapsed(),
                "lookup",
                item.ticket.trace(),
                flag::DEADLINE_EXPIRED,
            );
            item.ticket.resolve(ServeReply::failed(
                ErrorCode::DeadlineExceeded,
                true,
                format!(
                    "queued past the {:?} request deadline; not executed",
                    config.request_deadline
                ),
            ));
        } else {
            live.push(item);
        }
    }
    if live.is_empty() {
        return;
    }
    let Some(store) = tenants.tenant(tenant) else {
        // Unknown tenant (direct pipeline callers only; the server
        // validates at handshake time): a lookup against a namespace with
        // no cache is a miss by definition.
        for item in &live {
            metrics.record_served(false);
            metrics.record_done(item.accepted_at.elapsed(), "lookup", item.ticket.trace(), 0);
            item.ticket
                .resolve(ServeReply::Outcome(CacheDecisionOutcome::Miss));
        }
        return;
    };
    let fenced = catch_unwind(AssertUnwindSafe(|| {
        // Fault injection: lets the test suite prove the panic fence holds
        // without contriving a real cache bug. Inert outside test builds.
        // The tag is the run's first query so tests can scope the fuse to
        // their own traffic.
        let fuse_tag = match &live[0].request {
            ServeRequest::Lookup { query, .. } => query.as_str(),
            _ => "lookup",
        };
        if let Some(Err(e)) = mc_store::failpoints::write_hook("serve.batch.work", fuse_tag, 0) {
            panic!("injected batch-work panic: {e}");
        }
        if let [item] = live[..] {
            // Singleton run: the plain probe path, no batch machinery. This
            // is also the entire hot path of a `max_batch = 1` (unbatched)
            // configuration.
            let ServeRequest::Lookup { query, context } = &item.request else {
                unreachable!("run contains only lookups");
            };
            let trace = item.ticket.trace();
            if let Some(t) = trace {
                // Pre-resolve the embedding through the memo so the probe's
                // internal encode is a guaranteed memo hit — this attributes
                // the encode to hit/miss without perturbing the result.
                if let Some(hit) = store.cache().warm_memo(query) {
                    t.set_flag(if hit { flag::MEMO_HIT } else { flag::MEMO_MISS });
                }
                t.mark(Stage::Encoded);
            }
            let probe_start = Instant::now();
            let outcome = tenants.screen(tenant, store.cache().probe(query, context));
            let probe_end = Instant::now();
            metrics.record_probe_micros(
                probe_end.saturating_duration_since(probe_start).as_micros() as u64,
            );
            if let Some(t) = trace {
                t.mark(Stage::Probed);
            }
            tenants.commit(tenant, &outcome);
            metrics.record_commit_micros(probe_end.elapsed().as_micros() as u64);
            if let Some(t) = trace {
                t.mark(Stage::Committed);
            }
            metrics.record_served(outcome.is_hit());
            metrics.record_done(item.accepted_at.elapsed(), "lookup", trace, 0);
            item.ticket.resolve(ServeReply::Outcome(outcome));
            return;
        }
        // Coalesce duplicates: probe each distinct (query, context) once.
        let mut unique: Vec<(&str, &[String])> = Vec::with_capacity(live.len());
        let mut index_of: HashMap<(&str, &[String]), usize> = HashMap::with_capacity(live.len());
        let assigned: Vec<usize> = live
            .iter()
            .map(|item| match &item.request {
                ServeRequest::Lookup { query, context } => *index_of
                    .entry((query.as_str(), context.as_slice()))
                    .or_insert_with(|| {
                        unique.push((query.as_str(), context.as_slice()));
                        unique.len() - 1
                    }),
                _ => unreachable!("run contains only lookups"),
            })
            .collect();
        metrics.record_coalesced((live.len() - unique.len()) as u64);
        let coalesced = live.len() > unique.len();
        // Sampled items get their memo consultation attributed before the
        // batch probe (cheap: the probe's own encode becomes a memo hit).
        for item in &live {
            if let Some(t) = item.ticket.trace() {
                if let ServeRequest::Lookup { query, .. } = &item.request {
                    if let Some(hit) = store.cache().warm_memo(query) {
                        t.set_flag(if hit { flag::MEMO_HIT } else { flag::MEMO_MISS });
                    }
                }
                t.mark(Stage::Encoded);
                if coalesced {
                    t.set_flag(flag::COALESCED);
                }
            }
        }
        let probe_start = Instant::now();
        let outcomes = store.cache().probe_batch(&unique);
        // Amortise the batch probe over its unique probes: one histogram
        // sample per probe actually executed.
        let probe_us = probe_start.elapsed().as_micros() as u64 / unique.len().max(1) as u64;
        for _ in &unique {
            metrics.record_probe_micros(probe_us);
        }
        for item in &live {
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Probed);
            }
        }
        // Screen, then commit in submission order before resolving each
        // ticket: the served history (including LRU/LFU touches) matches
        // sequential `lookup` calls exactly. A screened (expired/stale) hit
        // resolves as a miss and is *not* committed — dead entries get no
        // recency credit.
        for (item, &unique_index) in live.iter().zip(&assigned) {
            let outcome = tenants.screen(tenant, outcomes[unique_index].clone());
            let commit_start = Instant::now();
            tenants.commit(tenant, &outcome);
            metrics.record_commit_micros(commit_start.elapsed().as_micros() as u64);
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Committed);
            }
            metrics.record_served(outcome.is_hit());
            metrics.record_done(item.accepted_at.elapsed(), "lookup", item.ticket.trace(), 0);
            item.ticket.resolve(ServeReply::Outcome(outcome));
        }
    }));
    if fenced.is_err() {
        // The cache's locks recover from poisoning (probes never leave
        // partial writes), so the next batch proceeds; every ticket the
        // panic stranded resolves retryable — lookups are read-only, so
        // "not executed" is certain.
        metrics.record_panic_caught();
        for item in &live {
            let resolved = item.ticket.resolve_if_pending(ServeReply::failed(
                ErrorCode::Panicked,
                true,
                "cache work panicked mid-batch; lookup not executed",
            ));
            if resolved {
                // Panicked requests always land in the flight recorder,
                // sampled or not.
                metrics.record_done(
                    item.accepted_at.elapsed(),
                    "lookup",
                    item.ticket.trace(),
                    flag::PANICKED,
                );
            }
        }
    }
}

/// Runs a WAL append for an acknowledged write. An append failure degrades
/// durability (the write survives in memory and in the next snapshot) but
/// must not fail the already-executed request — it is logged and counted
/// so operators see the degradation.
fn append_wal(
    wal: &mut Option<ServeWal>,
    metrics: &ServeMetrics,
    append: impl FnOnce(&mut ServeWal) -> Result<(), StoreError>,
) {
    let Some(wal) = wal.as_mut() else { return };
    match append(wal) {
        Ok(()) => metrics.record_wal_append(),
        Err(e) => {
            metrics.record_wal_append_error();
            eprintln!("mc-serve: WAL append failed (durability degraded until next save): {e}");
        }
    }
}

fn execute_control(
    tenants: &mut TenantedCache,
    wal: &mut Option<ServeWal>,
    item: &Submitted,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    // Panic fence: a panic inside cache work resolves this ticket with an
    // error frame instead of killing the batcher thread. Writes are
    // append-or-nothing at the cache layer, but a panic leaves "whether it
    // applied" unknown — the reply says so and is marked retryable per the
    // wire taxonomy (a duplicate insert of identical content is benign).
    let fenced = catch_unwind(AssertUnwindSafe(|| {
        control_reply(tenants, wal, item, queue, metrics, config)
    }));
    let panicked = fenced.is_err();
    let reply = fenced.unwrap_or_else(|_| {
        metrics.record_panic_caught();
        ServeReply::failed(
            ErrorCode::Panicked,
            true,
            "cache work panicked mid-request; whether it applied is unknown",
        )
    });
    if let Some(t) = item.ticket.trace() {
        t.mark(Stage::Committed);
    }
    metrics.record_done(
        item.accepted_at.elapsed(),
        request_kind(&item.request),
        item.ticket.trace(),
        if panicked { flag::PANICKED } else { 0 },
    );
    item.ticket.resolve(reply);
}

fn control_reply(
    tenants: &mut TenantedCache,
    wal: &mut Option<ServeWal>,
    item: &Submitted,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) -> ServeReply {
    match &item.request {
        ServeRequest::Insert {
            query,
            response,
            context,
        } => match tenants.insert(&item.tenant, query, response, context) {
            Ok(id) => {
                metrics.record_insert();
                // Logged (and fsynced per policy) before the ticket
                // resolves: under `--fsync always` an acknowledged insert
                // is already durable when the client reads its response.
                // Always tenant-explicit — only legacy logs carry bare
                // inserts.
                append_wal(wal, metrics, |w| {
                    w.append_insert_for(&item.tenant, query, response, context)
                });
                ServeReply::Inserted(id)
            }
            Err(e) => ServeReply::failed(ErrorCode::Internal, false, format!("insert failed: {e}")),
        },
        ServeRequest::Stats => {
            metrics.record_control();
            ServeReply::Stats(Box::new(ServeStatsSnapshot::collect_tenanted(
                tenants,
                metrics,
                queue.len(),
                queue.capacity(),
            )))
        }
        ServeRequest::Metrics => {
            metrics.record_control();
            ServeReply::MetricsText(
                ServeStatsSnapshot::collect_tenanted(
                    tenants,
                    metrics,
                    queue.len(),
                    queue.capacity(),
                )
                .render_text(),
            )
        }
        ServeRequest::TraceDump => {
            metrics.record_control();
            ServeReply::TraceJson(metrics.tracer().dump_json())
        }
        ServeRequest::SetThreshold(threshold) => {
            if (0.0..=1.0).contains(threshold) {
                metrics.record_control();
                for (_, cache) in tenants.caches_mut() {
                    cache.set_threshold(*threshold);
                }
                ServeReply::Ack
            } else {
                ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    format!("threshold {threshold} must be in [0, 1]"),
                )
            }
        }
        ServeRequest::SetRouting(mode) => {
            metrics.record_control();
            let mut error = None;
            for (name, cache) in tenants.caches_mut() {
                if cache.routing() == *mode {
                    continue;
                }
                match reshard(cache, cache.config().clone().with_routing(*mode)) {
                    Ok(new_cache) => *cache = new_cache,
                    Err(e) => {
                        error = Some(format!(
                            "reshard of tenant {name:?} to {} failed: {e}",
                            mode.name()
                        ));
                        break;
                    }
                }
            }
            match error {
                None => ServeReply::Ack,
                Some(message) => ServeReply::failed(ErrorCode::Internal, false, message),
            }
        }
        ServeRequest::Save => {
            metrics.record_control();
            match &config.persist_path {
                None => ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    "no persist path configured (start the server with --persist)",
                ),
                Some(path) => match persist_all(tenants, path) {
                    Ok(saved) => {
                        // The snapshot now covers everything the WAL held;
                        // truncate so the next boot does not double-replay.
                        if let Some(wal) = wal.as_mut() {
                            if let Err(e) = wal.reset() {
                                metrics.record_wal_append_error();
                                eprintln!("mc-serve: WAL reset after save failed: {e}");
                            }
                        }
                        ServeReply::Saved(saved)
                    }
                    Err(e) => {
                        ServeReply::failed(ErrorCode::Internal, false, format!("save failed: {e}"))
                    }
                },
            }
        }
        ServeRequest::Flush => {
            metrics.record_control();
            match tenants.tenant(&item.tenant) {
                None => ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    format!("unknown tenant {:?}", item.tenant),
                ),
                Some(store) => {
                    let evicted = store.len() as u64;
                    // Empty the tenant's shards in place: the live config
                    // (which tracks threshold updates) and any seeded
                    // routing centroids survive the flush — dropping the
                    // centroids would silently degrade centroid routing to
                    // its hash fallback. Neighbouring tenants are untouched.
                    match tenants.flush(&item.tenant) {
                        Ok(()) => {
                            append_wal(wal, metrics, |w| w.append_flush_for(&item.tenant));
                            ServeReply::Flushed(evicted)
                        }
                        Err(e) => ServeReply::failed(
                            ErrorCode::Internal,
                            false,
                            format!("flush failed: {e}"),
                        ),
                    }
                }
            }
        }
        ServeRequest::Invalidate { tenant, epoch } => {
            metrics.record_control();
            match tenants.invalidate(tenant, *epoch) {
                Some(new_epoch) => {
                    // Eagerly reclaim what the bump just killed. Probe-time
                    // screening already hides stale entries, but they would
                    // otherwise shadow re-inserts of the same query until
                    // the periodic sweep — an explicit invalidation is rare
                    // enough to afford the sweep inline, totally ordered
                    // with the traffic around it.
                    metrics.record_ttl_reclaimed(tenants.sweep() as u64);
                    // The WAL records the *resulting* epoch so replay is a
                    // max-merge, idempotent under retries and reordering.
                    append_wal(wal, metrics, |w| w.append_invalidate(tenant, new_epoch));
                    ServeReply::Invalidated(new_epoch)
                }
                None => ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    format!("unknown tenant {tenant:?}"),
                ),
            }
        }
        ServeRequest::Lookup { .. } => unreachable!("lookups are handled in runs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::{ModelProfile, QueryEncoder};
    use meancache::MeanCacheConfig;

    fn cache(shards: usize) -> ShardedCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        ShardedCache::new(
            encoder,
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_shards(shards),
        )
        .unwrap()
    }

    fn lookup(query: &str) -> ServeRequest {
        ServeRequest::Lookup {
            query: query.into(),
            context: Vec::new(),
        }
    }

    fn insert(query: &str, response: &str) -> ServeRequest {
        ServeRequest::Insert {
            query: query.into(),
            response: response.into(),
            context: Vec::new(),
        }
    }

    #[test]
    fn insert_then_lookup_round_trips_through_the_pipeline() {
        let pipeline = ServePipeline::start(cache(4), &ServeConfig::default()).unwrap();
        let inserted = pipeline
            .submit(insert("what is federated learning", "On-device training."))
            .unwrap()
            .wait();
        assert!(matches!(inserted, ServeReply::Inserted(_)));
        let hit = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap()
            .wait();
        match hit {
            ServeReply::Outcome(outcome) => {
                assert!(outcome.is_hit());
                assert_eq!(outcome.hit().unwrap().response, "On-device training.");
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
        let miss = pipeline.submit(lookup("never inserted")).unwrap().wait();
        assert!(matches!(
            miss,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        pipeline.shutdown();
        assert_eq!(
            pipeline.submit(ServeRequest::Stats).map(|_| ()),
            Err(SubmitError::ShutDown)
        );
    }

    #[test]
    fn control_plane_orders_with_lookups() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
        pipeline
            .submit(insert(
                "how do I bake sourdough bread",
                "Ferment overnight.",
            ))
            .unwrap()
            .wait();
        // Stats sees the insert (total order through the queue).
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.inserts, 1);
        // Threshold update applies to later lookups; invalid ones fail.
        assert_eq!(
            pipeline
                .submit(ServeRequest::SetThreshold(0.99))
                .unwrap()
                .wait(),
            ServeReply::Ack
        );
        assert!(matches!(
            pipeline
                .submit(ServeRequest::SetThreshold(7.0))
                .unwrap()
                .wait(),
            ServeReply::Failed { .. }
        ));
        // Flush empties; the lookup ordered after it misses.
        assert_eq!(
            pipeline.submit(ServeRequest::Flush).unwrap().wait(),
            ServeReply::Flushed(1)
        );
        let after = pipeline
            .submit(lookup("how do I bake sourdough bread"))
            .unwrap()
            .wait();
        assert!(matches!(
            after,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        // And the flushed cache kept the updated threshold.
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 0);
        assert!((stats.threshold - 0.99).abs() < 1e-6);
    }

    #[test]
    fn identical_inflight_lookups_share_one_ticket_across_batches() {
        // max_batch = 1 plus a batch delay parks the batcher on the insert
        // long enough for both lookups to be submitted while the first is
        // still queued — the deterministic cross-batch duplicate shape.
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit(insert("what is federated learning", "On-device training."))
            .unwrap();
        let first = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        let second = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        // The duplicate attached to the pending ticket — same allocation.
        assert!(
            Arc::ptr_eq(&first.0, &second.0),
            "duplicate lookup must share the in-flight ticket"
        );
        // A *different* lookup gets its own ticket.
        let other = pipeline.submit(lookup("something else entirely")).unwrap();
        assert!(!Arc::ptr_eq(&first.0, &other.0));
        assert!(matches!(first.wait(), ServeReply::Outcome(o) if o.is_hit()));
        assert!(matches!(second.wait(), ServeReply::Outcome(o) if o.is_hit()));
        other.wait();
        // After resolution the key is free again: a fresh lookup re-enters
        // the pipeline with a fresh ticket.
        let after = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        assert!(!Arc::ptr_eq(&first.0, &after.0));
        after.wait();
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.singleflight, 1);
        // The attached duplicate never hit the queue: 5 admitted requests
        // (insert, 2 distinct lookups, re-lookup, stats), not 6.
        assert_eq!(stats.admitted, 5);
        // Latency was recorded once per *executed* request (the snapshot
        // is collected before the stats request's own latency lands).
        assert_eq!(stats.latency_hist.iter().sum::<u64>(), 4);
    }

    #[test]
    fn singleflight_off_gives_every_lookup_its_own_ticket() {
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(30),
            singleflight: false,
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline.submit(insert("q", "r")).unwrap();
        let first = pipeline.submit(lookup("q")).unwrap();
        let second = pipeline.submit(lookup("q")).unwrap();
        assert!(!Arc::ptr_eq(&first.0, &second.0));
        first.wait();
        second.wait();
    }

    #[test]
    fn deadline_expired_lookups_always_land_in_the_flight_recorder() {
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(30),
            request_deadline: Duration::from_millis(5),
            trace_sample: 0, // prove force-recording, not sampling
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        let reply = pipeline
            .submit(lookup("a lookup whose client gave up"))
            .unwrap()
            .wait();
        assert!(matches!(
            reply,
            ServeReply::Failed {
                code: ErrorCode::DeadlineExceeded,
                retryable: true,
                ..
            }
        ));
        let dump = pipeline.metrics().tracer().dump();
        assert_eq!(dump.traces.len(), 1);
        assert!(dump.traces[0].deadline_expired);
        assert!(dump.traces[0].is_monotone());
        pipeline.shutdown();
    }

    #[test]
    fn trace_dump_returns_sampled_monotone_traces() {
        let config = ServeConfig {
            trace_sample: 1,
            // Everything counts as slow, so traces are recorded at resolve
            // time (no event loop runs here to mark `written`).
            trace_slow: Duration::from_micros(1),
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit(insert("what is federated learning", "On-device training."))
            .unwrap()
            .wait();
        pipeline
            .submit(lookup("what is federated learning"))
            .unwrap()
            .wait();
        let json = match pipeline.submit(ServeRequest::TraceDump).unwrap().wait() {
            ServeReply::TraceJson(json) => json,
            other => panic!("expected a trace dump, got {other:?}"),
        };
        let dump: mc_metrics::TraceDump = serde_json::from_str(&json).unwrap();
        assert_eq!(dump.sample_every, 1);
        assert!(dump.traces.len() >= 2);
        assert!(dump.traces.iter().all(|t| t.is_monotone()));
        // The lookup trace walked the full stage ladder and got its memo
        // consultation attributed.
        let lookup_trace = dump
            .traces
            .iter()
            .find(|t| t.kind == "lookup")
            .expect("lookup trace present");
        for stage in ["enqueued", "dequeued", "encoded", "probed", "committed"] {
            assert!(
                lookup_trace.stage_us(stage).is_some(),
                "missing stage {stage}"
            );
        }
        assert!(lookup_trace.memo_hit.is_some());
        assert!(lookup_trace.slow);
        pipeline.shutdown();
    }

    #[test]
    fn metrics_request_renders_the_text_exposition() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
        pipeline
            .submit(insert("what is federated learning", "On-device training."))
            .unwrap()
            .wait();
        let text = match pipeline.submit(ServeRequest::Metrics).unwrap().wait() {
            ServeReply::MetricsText(text) => text,
            other => panic!("expected metrics text, got {other:?}"),
        };
        assert!(text.contains("serve_entries 1"));
        assert!(text.contains("serve_inserts_total 1"));
        assert!(text.contains("serve_latency_us_count"));
        // The default config installs the embedding memo; the insert
        // encoded (and memoized) one embedding.
        assert!(text.contains("serve_memo_entries 1"));
        // Tenancy: the default tenant's per-tenant series render too.
        assert!(text.contains("serve_tenant_entries{tenant=\"default\"} 1"));
    }

    #[test]
    fn tenants_are_isolated_through_the_pipeline() {
        let config = ServeConfig {
            tenants: vec![
                ServeTenant {
                    name: "acme".into(),
                    token: "acme-secret".into(),
                    quota: 0,
                },
                ServeTenant {
                    name: "beta".into(),
                    token: "beta-secret".into(),
                    quota: 0,
                },
            ],
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit_for("acme", insert("what is rust", "acme answer"))
            .unwrap()
            .wait();
        // The same query misses for every other tenant (and the default).
        let acme = pipeline
            .submit_for("acme", lookup("what is rust"))
            .unwrap()
            .wait();
        assert!(matches!(acme, ServeReply::Outcome(o) if o.is_hit()));
        let beta = pipeline
            .submit_for("beta", lookup("what is rust"))
            .unwrap()
            .wait();
        assert!(matches!(
            beta,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        let default = pipeline.submit(lookup("what is rust")).unwrap().wait();
        assert!(matches!(
            default,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        // Flush is tenant-scoped: flushing beta leaves acme's entry alone.
        assert_eq!(
            pipeline
                .submit_for("beta", ServeRequest::Flush)
                .unwrap()
                .wait(),
            ServeReply::Flushed(0)
        );
        let still = pipeline
            .submit_for("acme", lookup("what is rust"))
            .unwrap()
            .wait();
        assert!(matches!(still, ServeReply::Outcome(o) if o.is_hit()));
        // The stats plane reports all three tenants.
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        let names: Vec<&str> = stats.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["acme", "beta", "default"]);
        assert_eq!(stats.tenants[0].entries, 1);
        assert_eq!(stats.tenants[1].entries, 0);
        pipeline.shutdown();
    }

    #[test]
    fn invalidate_bumps_the_epoch_and_screens_old_entries() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
        pipeline
            .submit(insert("pre-upgrade question", "pre-upgrade answer"))
            .unwrap()
            .wait();
        assert!(matches!(
            pipeline
                .submit(lookup("pre-upgrade question"))
                .unwrap()
                .wait(),
            ServeReply::Outcome(o) if o.is_hit()
        ));
        assert_eq!(
            pipeline
                .submit(ServeRequest::Invalidate {
                    tenant: DEFAULT_TENANT.into(),
                    epoch: 0,
                })
                .unwrap()
                .wait(),
            ServeReply::Invalidated(1)
        );
        // The old entry is screened into a miss at probe time.
        assert!(matches!(
            pipeline
                .submit(lookup("pre-upgrade question"))
                .unwrap()
                .wait(),
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        // Fresh inserts under the new epoch serve normally.
        pipeline
            .submit(insert("pre-upgrade question", "post-upgrade answer"))
            .unwrap()
            .wait();
        let reply = pipeline
            .submit(lookup("pre-upgrade question"))
            .unwrap()
            .wait();
        match reply {
            ServeReply::Outcome(outcome) => {
                assert_eq!(outcome.hit().unwrap().response, "post-upgrade answer");
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
        // Unknown tenants fail cleanly.
        assert!(matches!(
            pipeline
                .submit(ServeRequest::Invalidate {
                    tenant: "nobody".into(),
                    epoch: 0,
                })
                .unwrap()
                .wait(),
            ServeReply::Failed {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        pipeline.shutdown();
    }

    #[test]
    fn singleflight_never_shares_tickets_across_tenants() {
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(50),
            tenants: vec![ServeTenant {
                name: "acme".into(),
                token: "s".into(),
                quota: 0,
            }],
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline.submit(insert("shared question", "r")).unwrap();
        let default_ticket = pipeline.submit(lookup("shared question")).unwrap();
        let acme_ticket = pipeline
            .submit_for("acme", lookup("shared question"))
            .unwrap();
        // Same query text, different tenants: never the same ticket.
        assert!(
            !Arc::ptr_eq(&default_ticket.0, &acme_ticket.0),
            "tenants must not share singleflight tickets"
        );
        // And the outcomes differ: default hits its insert, acme misses.
        assert!(matches!(default_ticket.wait(), ServeReply::Outcome(o) if o.is_hit()));
        assert!(matches!(
            acme_ticket.wait(),
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        pipeline.shutdown();
    }
}
