//! The serving pipeline: a bounded admission queue feeding one micro-batcher
//! thread that owns the [`ShardedCache`] outright.
//!
//! Single ownership is the ordering story: every cache-touching request —
//! lookups, inserts, threshold updates, flushes, stats snapshots — flows
//! through the same FIFO queue and executes on the batcher thread, so the
//! observable history is one total order consistent with per-connection
//! submission order. Within that order the batcher is free to *group*: runs
//! of consecutive lookups become one [`SemanticCache::probe_batch`] call
//! followed by per-outcome commits in submission order, which is
//! decision-identical to looking each up sequentially (probes never observe
//! commits — commits only touch eviction recency metadata).
//!
//! Backpressure: the queue refuses pushes at capacity
//! ([`SubmitError::Overloaded`]) instead of buffering unboundedly, and
//! shutdown closes the queue but drains everything already admitted — every
//! ticket ever returned by [`ServePipeline::submit`] resolves.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use meancache::persist::save_sharded_cache_with_config;
use meancache::{reshard, CacheDecisionOutcome, RoutingMode, SemanticCache, ShardedCache};

use crate::queue::{BoundedQueue, SubmitError};
use crate::stats::{ServeMetrics, ServeStatsSnapshot};

/// Configuration of the serving pipeline and the server around it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests the micro-batcher groups into one pass. `1`
    /// disables batching (every request is its own batch) — the reference
    /// configuration `exp_serve` compares against.
    pub max_batch: usize,
    /// How long an open batch lingers for stragglers after its first
    /// request arrives. Bounded added latency: a lone request is delayed by
    /// at most this much.
    pub max_wait: Duration,
    /// Admission-queue capacity; pushes beyond it are shed with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent connections the server admits; one reader and one writer
    /// pool thread are budgeted per connection, and connections beyond the
    /// limit are refused with a `Busy` frame.
    pub max_connections: usize,
    /// Artificial delay applied to every formed batch before it executes.
    /// Zero in production; tests raise it to simulate a slow consumer and
    /// exercise the load-shedding path deterministically.
    pub batch_delay: Duration,
    /// Where the cache persists: the target of the `Save` control command
    /// and of the automatic save on graceful shutdown. `None` (the
    /// default) disables both — the cache lives and dies in memory.
    pub persist_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            max_connections: 32,
            batch_delay: Duration::ZERO,
            persist_path: None,
        }
    }
}

/// A request the pipeline executes on the batcher thread.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Semantic lookup under an optional conversation context.
    Lookup {
        /// The query text.
        query: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Store a fresh (query, response) pair.
    Insert {
        /// The query text.
        query: String,
        /// The response to cache.
        response: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Snapshot the stats plane.
    Stats,
    /// Replace the cosine threshold τ on every shard.
    SetThreshold(f32),
    /// Switch the shard-routing mode by resharding the cache in place
    /// (every entry is replayed through fresh routing; public ids are
    /// reassigned). Totally ordered with the lookups around it, like every
    /// control command.
    SetRouting(RoutingMode),
    /// Persist the cache to [`ServeConfig::persist_path`].
    Save,
    /// Drop all cached entries (the cache is rebuilt empty from its live
    /// config).
    Flush,
}

/// What a [`ServeRequest`] resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// Lookup outcome (hit with payload, or miss).
    Outcome(CacheDecisionOutcome),
    /// Insert succeeded with this public entry id.
    Inserted(u64),
    /// Stats snapshot.
    Stats(Box<ServeStatsSnapshot>),
    /// Control command acknowledged.
    Ack,
    /// Flush completed; this many entries were dropped.
    Flushed(u64),
    /// Save completed; this many entries were persisted.
    Saved(u64),
    /// The request failed (message is operator-facing).
    Failed(String),
}

#[derive(Debug)]
struct TicketInner {
    reply: Mutex<Option<ServeReply>>,
    ready: Condvar,
}

/// A claim on one submitted request's eventual reply. Cloneable; any clone
/// may wait.
#[derive(Debug, Clone)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    fn new() -> Self {
        Ticket(Arc::new(TicketInner {
            reply: Mutex::new(None),
            ready: Condvar::new(),
        }))
    }

    /// A ticket born resolved (protocol-level replies that never enter the
    /// pipeline, e.g. `Busy`).
    pub fn resolved(reply: ServeReply) -> Self {
        let ticket = Ticket::new();
        ticket.resolve(reply);
        ticket
    }

    /// Resolves the ticket. Called exactly once per submitted ticket, by
    /// the batcher.
    pub(crate) fn resolve(&self, reply: ServeReply) {
        let mut slot = self.0.reply.lock().expect("ticket lock poisoned");
        debug_assert!(slot.is_none(), "a ticket resolves exactly once");
        *slot = Some(reply);
        drop(slot);
        self.0.ready.notify_all();
    }

    /// Blocks until the reply is available and clones it out.
    pub fn wait(&self) -> ServeReply {
        let mut slot = self.0.reply.lock().expect("ticket lock poisoned");
        loop {
            if let Some(reply) = slot.as_ref() {
                return reply.clone();
            }
            slot = self.0.ready.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// The reply if already available, without blocking (the response
    /// writer uses this to coalesce only what is ready).
    pub fn try_reply(&self) -> Option<ServeReply> {
        self.0.reply.lock().expect("ticket lock poisoned").clone()
    }
}

#[derive(Debug)]
struct Submitted {
    request: ServeRequest,
    ticket: Ticket,
}

/// The serving pipeline: admission queue + metrics + the batcher thread
/// that owns the cache. See the module docs for semantics.
#[derive(Debug)]
pub struct ServePipeline {
    queue: Arc<BoundedQueue<Submitted>>,
    metrics: Arc<ServeMetrics>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl ServePipeline {
    /// Takes ownership of `cache` and starts the batcher thread.
    pub fn start(cache: ShardedCache, config: &ServeConfig) -> Self {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mc-serve-batcher".into())
                .spawn(move || batcher_loop(cache, &queue, &metrics, &config))
                .expect("batcher thread spawn failed")
        };
        Self {
            queue,
            metrics,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// Submits a request; the returned ticket resolves once the batcher has
    /// executed it. Never blocks.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the admission queue is full (the
    /// request is shed), [`SubmitError::ShutDown`] after
    /// [`ServePipeline::shutdown`].
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let ticket = Ticket::new();
        let result = self.queue.push(Submitted {
            request,
            ticket: ticket.clone(),
        });
        match result {
            Ok(()) => {
                self.metrics.record_admitted();
                Ok(ticket)
            }
            Err(SubmitError::Overloaded) => {
                self.metrics.record_shed();
                Err(SubmitError::Overloaded)
            }
            Err(e) => Err(e),
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The pipeline's live counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Graceful shutdown: closes the queue (new submissions fail with
    /// [`SubmitError::ShutDown`]), lets the batcher drain everything
    /// already admitted — resolving every outstanding ticket — and joins
    /// it. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handle = self.batcher.lock().expect("batcher handle poisoned").take();
        if let Some(handle) = handle {
            handle.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for ServePipeline {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(
    mut cache: ShardedCache,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut batch: Vec<Submitted> = Vec::with_capacity(config.max_batch.max(1));
    loop {
        batch.clear();
        if !queue.pop_batch(config.max_batch, config.max_wait, &mut batch) {
            break; // closed and fully drained
        }
        if !config.batch_delay.is_zero() {
            std::thread::sleep(config.batch_delay);
        }
        metrics.record_batch(batch.len());
        execute_batch(&mut cache, &batch, queue, metrics, config);
    }
    // Graceful-shutdown persistence: the queue is closed and drained, the
    // batcher owns the cache outright, so this is the one place a final
    // save observes every acknowledged write.
    if let Some(path) = &config.persist_path {
        if let Err(e) = save_sharded_cache_with_config(&cache, path) {
            eprintln!(
                "mc-serve: failed to persist cache to {} on shutdown: {e}",
                path.display()
            );
        }
    }
}

/// Executes one formed batch in submission order, grouping maximal runs of
/// consecutive lookups into single `probe_batch` passes with duplicate
/// requests **coalesced**: identical `(query, context)` pairs in one run —
/// the thundering-herd shape a popular cache service sees constantly — are
/// probed once and their outcome fanned out to every requester
/// (singleflight, the request-collapsing CDNs and inference servers do).
/// Probes are pure against the frozen-within-the-batch cache, so coalescing
/// is response-identical to probing each duplicate; commits still run once
/// per *request* in submission order, so eviction recency matches
/// sequential serving exactly. (Cache-internal `lookups` counters tick once
/// per unique probe; the pipeline's served counters remain per-request.)
fn execute_batch(
    cache: &mut ShardedCache,
    batch: &[Submitted],
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut i = 0;
    while i < batch.len() {
        let is_lookup = matches!(batch[i].request, ServeRequest::Lookup { .. });
        if !is_lookup {
            execute_control(cache, &batch[i], queue, metrics, config);
            i += 1;
            continue;
        }
        let mut j = i;
        while j < batch.len() && matches!(batch[j].request, ServeRequest::Lookup { .. }) {
            j += 1;
        }
        if j == i + 1 {
            // Singleton run: the plain probe path, no batch machinery. This
            // is also the entire hot path of a `max_batch = 1` (unbatched)
            // configuration.
            let ServeRequest::Lookup { query, context } = &batch[i].request else {
                unreachable!("checked above");
            };
            let outcome = cache.probe(query, context);
            cache.commit(&outcome);
            metrics.record_served(outcome.is_hit());
            batch[i].ticket.resolve(ServeReply::Outcome(outcome));
            i = j;
            continue;
        }
        let run = &batch[i..j];
        // Coalesce duplicates: probe each distinct (query, context) once.
        let mut unique: Vec<(&str, &[String])> = Vec::with_capacity(run.len());
        let mut index_of: HashMap<(&str, &[String]), usize> = HashMap::with_capacity(run.len());
        let assigned: Vec<usize> = run
            .iter()
            .map(|item| match &item.request {
                ServeRequest::Lookup { query, context } => *index_of
                    .entry((query.as_str(), context.as_slice()))
                    .or_insert_with(|| {
                        unique.push((query.as_str(), context.as_slice()));
                        unique.len() - 1
                    }),
                _ => unreachable!("run contains only lookups"),
            })
            .collect();
        metrics.record_coalesced((run.len() - unique.len()) as u64);
        let outcomes = cache.probe_batch(&unique);
        // Commit in submission order before resolving each ticket: the
        // served history (including LRU/LFU touches) matches sequential
        // `lookup` calls exactly.
        for (item, &unique_index) in run.iter().zip(&assigned) {
            let outcome = outcomes[unique_index].clone();
            cache.commit(&outcome);
            metrics.record_served(outcome.is_hit());
            item.ticket.resolve(ServeReply::Outcome(outcome));
        }
        i = j;
    }
}

fn execute_control(
    cache: &mut ShardedCache,
    item: &Submitted,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let reply = match &item.request {
        ServeRequest::Insert {
            query,
            response,
            context,
        } => match cache.insert(query, response, context) {
            Ok(id) => {
                metrics.record_insert();
                ServeReply::Inserted(id)
            }
            Err(e) => ServeReply::Failed(format!("insert failed: {e}")),
        },
        ServeRequest::Stats => {
            metrics.record_control();
            ServeReply::Stats(Box::new(ServeStatsSnapshot::collect(
                cache,
                metrics,
                queue.len(),
                queue.capacity(),
            )))
        }
        ServeRequest::SetThreshold(threshold) => {
            if (0.0..=1.0).contains(threshold) {
                metrics.record_control();
                cache.set_threshold(*threshold);
                ServeReply::Ack
            } else {
                ServeReply::Failed(format!("threshold {threshold} must be in [0, 1]"))
            }
        }
        ServeRequest::SetRouting(mode) => {
            metrics.record_control();
            if cache.routing() == *mode {
                ServeReply::Ack
            } else {
                match reshard(cache, cache.config().clone().with_routing(*mode)) {
                    Ok(new_cache) => {
                        *cache = new_cache;
                        ServeReply::Ack
                    }
                    Err(e) => ServeReply::Failed(format!("reshard to {} failed: {e}", mode.name())),
                }
            }
        }
        ServeRequest::Save => {
            metrics.record_control();
            match &config.persist_path {
                None => ServeReply::Failed(
                    "no persist path configured (start the server with --persist)".into(),
                ),
                Some(path) => match save_sharded_cache_with_config(cache, path) {
                    Ok(()) => ServeReply::Saved(cache.len() as u64),
                    Err(e) => ServeReply::Failed(format!("save failed: {e}")),
                },
            }
        }
        ServeRequest::Flush => {
            metrics.record_control();
            let evicted = cache.len() as u64;
            // Empty the shards in place: the live config (which tracks
            // threshold updates) and any seeded routing centroids survive
            // the flush — dropping the centroids would silently degrade
            // centroid routing to its hash fallback.
            cache.clear().expect("a live cache's config re-validates");
            ServeReply::Flushed(evicted)
        }
        ServeRequest::Lookup { .. } => unreachable!("lookups are handled in runs"),
    };
    item.ticket.resolve(reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::{ModelProfile, QueryEncoder};
    use meancache::MeanCacheConfig;

    fn cache(shards: usize) -> ShardedCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        ShardedCache::new(
            encoder,
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_shards(shards),
        )
        .unwrap()
    }

    fn lookup(query: &str) -> ServeRequest {
        ServeRequest::Lookup {
            query: query.into(),
            context: Vec::new(),
        }
    }

    #[test]
    fn insert_then_lookup_round_trips_through_the_pipeline() {
        let pipeline = ServePipeline::start(cache(4), &ServeConfig::default());
        let inserted = pipeline
            .submit(ServeRequest::Insert {
                query: "what is federated learning".into(),
                response: "On-device training.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        assert!(matches!(inserted, ServeReply::Inserted(_)));
        let hit = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap()
            .wait();
        match hit {
            ServeReply::Outcome(outcome) => {
                assert!(outcome.is_hit());
                assert_eq!(outcome.hit().unwrap().response, "On-device training.");
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
        let miss = pipeline.submit(lookup("never inserted")).unwrap().wait();
        assert!(matches!(
            miss,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        pipeline.shutdown();
        assert_eq!(
            pipeline.submit(ServeRequest::Stats).map(|_| ()),
            Err(SubmitError::ShutDown)
        );
    }

    #[test]
    fn control_plane_orders_with_lookups() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default());
        pipeline
            .submit(ServeRequest::Insert {
                query: "how do I bake sourdough bread".into(),
                response: "Ferment overnight.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        // Stats sees the insert (total order through the queue).
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.inserts, 1);
        // Threshold update applies to later lookups; invalid ones fail.
        assert_eq!(
            pipeline
                .submit(ServeRequest::SetThreshold(0.99))
                .unwrap()
                .wait(),
            ServeReply::Ack
        );
        assert!(matches!(
            pipeline
                .submit(ServeRequest::SetThreshold(7.0))
                .unwrap()
                .wait(),
            ServeReply::Failed(_)
        ));
        // Flush empties; the lookup ordered after it misses.
        assert_eq!(
            pipeline.submit(ServeRequest::Flush).unwrap().wait(),
            ServeReply::Flushed(1)
        );
        let after = pipeline
            .submit(lookup("how do I bake sourdough bread"))
            .unwrap()
            .wait();
        assert!(matches!(
            after,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        // And the flushed cache kept the updated threshold.
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 0);
        assert!((stats.threshold - 0.99).abs() < 1e-6);
    }
}
