//! The serving pipeline: a bounded admission queue feeding one micro-batcher
//! thread that owns the [`ShardedCache`] outright.
//!
//! Single ownership is the ordering story: every cache-touching request —
//! lookups, inserts, threshold updates, flushes, stats snapshots — flows
//! through the same FIFO queue and executes on the batcher thread, so the
//! observable history is one total order consistent with per-connection
//! submission order. Within that order the batcher is free to *group*: runs
//! of consecutive lookups become one [`SemanticCache::probe_batch`] call
//! followed by per-outcome commits in submission order, which is
//! decision-identical to looking each up sequentially (probes never observe
//! commits — commits only touch eviction recency metadata).
//!
//! Backpressure: the queue refuses pushes at capacity
//! ([`SubmitError::Overloaded`]) instead of buffering unboundedly, and
//! shutdown closes the queue but drains everything already admitted — every
//! ticket ever returned by [`ServePipeline::submit`] resolves.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mc_embedder::EmbeddingMemo;
use mc_metrics::trace::{flag, Stage, Trace};
use mc_store::{FsyncPolicy, RecoveryStats, StoreError};
use meancache::persist::save_sharded_cache_with_config;
use meancache::{reshard, CacheDecisionOutcome, RoutingMode, SemanticCache, ShardedCache};

use crate::protocol::ErrorCode;
use crate::queue::{BoundedQueue, SubmitError};
use crate::stats::{ServeMetrics, ServeStatsSnapshot};
use crate::wal::{wal_path, ServeWal, WalOp};

/// Configuration of the serving pipeline and the server around it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests the micro-batcher groups into one pass. `1`
    /// disables batching (every request is its own batch) — the reference
    /// configuration `exp_serve` compares against.
    pub max_batch: usize,
    /// How long an open batch lingers for stragglers after its first
    /// request arrives. Bounded added latency: a lone request is delayed by
    /// at most this much.
    pub max_wait: Duration,
    /// Admission-queue capacity; pushes beyond it are shed with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent connections the server admits; one reader and one writer
    /// pool thread are budgeted per connection, and connections beyond the
    /// limit are refused with a `Busy` frame.
    pub max_connections: usize,
    /// Artificial delay applied to every formed batch before it executes.
    /// Zero in production; tests raise it to simulate a slow consumer and
    /// exercise the load-shedding path deterministically.
    pub batch_delay: Duration,
    /// Where the cache persists: the target of the `Save` control command
    /// and of the automatic save on graceful shutdown. `None` (the
    /// default) disables both — the cache lives and dies in memory.
    pub persist_path: Option<PathBuf>,
    /// Capacity (entries) of the embedding memo-cache installed in front of
    /// the query encoder. `0` disables the memo. The memo is sound because
    /// the encoder is frozen for the server's lifetime and its tokenizer
    /// lowercases, so `trim().to_lowercase()`-equal texts encode
    /// identically.
    pub memo_capacity: usize,
    /// Byte bound on the embedding memo-cache (`0` = unbounded; the entry
    /// capacity still applies).
    pub memo_max_bytes: usize,
    /// Collapse identical `(query, context)` lookups that are in flight
    /// *across* batches: a duplicate attaches to the pending ticket instead
    /// of re-entering the queue. (Within-batch duplicates are always
    /// coalesced regardless of this switch.)
    pub singleflight: bool,
    /// How often the batcher sweeps dead conversation-root pins from the
    /// routing table. Zero disables the sweep. Sweeps run on the batcher
    /// thread between batches, so they serialise with inserts; an idle
    /// server does not sweep, which is fine — dead pins only accumulate
    /// while traffic evicts entries.
    pub pin_sweep_interval: Duration,
    /// Per-request deadline, measured from admission. A *lookup* whose
    /// deadline has already expired when the batcher reaches it is not
    /// probed: its ticket resolves to a retryable deadline-exceeded
    /// failure, so a client that has given up stops costing probe work.
    /// Inserts and control commands always execute — dropping an
    /// acknowledged-admission write would be the confusing kind of fast.
    /// `Duration::ZERO` (the default) disables deadlines.
    pub request_deadline: Duration,
    /// Close connections with no traffic for this long (enforced by the
    /// event loop, not the pipeline; lives here because [`ServeConfig`] is
    /// the one config that reaches the server). `Duration::ZERO` (the
    /// default) disables reaping — idle connections cost only a file
    /// descriptor, so reaping is an operator policy, not a necessity.
    pub idle_timeout: Duration,
    /// Fsync policy for the serve write-ahead log (only consulted when
    /// [`ServeConfig::persist_path`] is set). `Always` makes every
    /// acknowledged write durable before its response leaves; `EveryN`
    /// bounds loss to the last N acknowledged writes; `Never` (the
    /// default) leaves flushing to the OS — a crash loses the un-flushed
    /// tail, a graceful stop loses nothing.
    pub fsync: FsyncPolicy,
    /// What snapshot-load recovery replayed and truncated before the
    /// server started (reported by
    /// [`meancache::persist::load_sharded_cache_with_report`]); folded
    /// into the stats plane next to the WAL's own recovery numbers.
    pub restored: RecoveryStats,
    /// Per-request trace sampling: every Nth request gets a full
    /// [`mc_metrics::Trace`] through the stage pipeline. `0` disables
    /// sampling entirely (outliers — slow / deadline-expired / panicked
    /// requests — are still force-recorded with a synthesised trace).
    /// The default, 64, keeps the hot path at one relaxed counter bump.
    pub trace_sample: u64,
    /// Requests slower than this end-to-end are flagged slow, forced into
    /// the flight recorder, and appended to the slow-request log when one
    /// is configured. `Duration::ZERO` (the default) disables slow
    /// detection.
    pub trace_slow: Duration,
    /// Path of the slow-request log: one JSON trace per line for every
    /// outlier request. `None` (the default) disables the log.
    pub trace_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            max_connections: 32,
            batch_delay: Duration::ZERO,
            persist_path: None,
            memo_capacity: 4096,
            memo_max_bytes: 0,
            singleflight: true,
            pin_sweep_interval: Duration::from_secs(30),
            request_deadline: Duration::ZERO,
            idle_timeout: Duration::ZERO,
            fsync: FsyncPolicy::Never,
            restored: RecoveryStats::default(),
            trace_sample: 64,
            trace_slow: Duration::ZERO,
            trace_log: None,
        }
    }
}

/// A request the pipeline executes on the batcher thread.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Semantic lookup under an optional conversation context.
    Lookup {
        /// The query text.
        query: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Store a fresh (query, response) pair.
    Insert {
        /// The query text.
        query: String,
        /// The response to cache.
        response: String,
        /// Conversation context, most recent turn last.
        context: Vec<String>,
    },
    /// Snapshot the stats plane.
    Stats,
    /// Replace the cosine threshold τ on every shard.
    SetThreshold(f32),
    /// Switch the shard-routing mode by resharding the cache in place
    /// (every entry is replayed through fresh routing; public ids are
    /// reassigned). Totally ordered with the lookups around it, like every
    /// control command.
    SetRouting(RoutingMode),
    /// Persist the cache to [`ServeConfig::persist_path`].
    Save,
    /// Drop all cached entries (the cache is rebuilt empty from its live
    /// config).
    Flush,
    /// Render the stats plane as a plain-text metrics exposition.
    Metrics,
    /// Dump the flight recorder (recent + outlier request traces) as JSON.
    TraceDump,
}

/// Classifies a request for trace labels (`Trace::kind`).
pub(crate) fn request_kind(request: &ServeRequest) -> &'static str {
    match request {
        ServeRequest::Lookup { .. } => "lookup",
        ServeRequest::Insert { .. } => "insert",
        _ => "control",
    }
}

/// What a [`ServeRequest`] resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// Lookup outcome (hit with payload, or miss).
    Outcome(CacheDecisionOutcome),
    /// Insert succeeded with this public entry id.
    Inserted(u64),
    /// Stats snapshot.
    Stats(Box<ServeStatsSnapshot>),
    /// Control command acknowledged.
    Ack,
    /// Flush completed; this many entries were dropped.
    Flushed(u64),
    /// Save completed; this many entries were persisted.
    Saved(u64),
    /// Plain-text metrics exposition
    /// ([`ServeStatsSnapshot::render_text`]).
    MetricsText(String),
    /// Flight-recorder dump as JSON (an [`mc_metrics::TraceDump`]).
    TraceJson(String),
    /// The request failed. `code` classifies the failure on the wire,
    /// `retryable` tells the client whether the request definitively did
    /// not execute (safe to resend), and `message` is operator-facing.
    Failed {
        /// Machine-readable failure class (crosses the wire as a byte).
        code: ErrorCode,
        /// `true` iff the request is known not to have executed.
        retryable: bool,
        /// Operator-facing detail.
        message: String,
    },
}

impl ServeReply {
    /// Shorthand for a failure reply.
    fn failed(code: ErrorCode, retryable: bool, message: impl Into<String>) -> Self {
        ServeReply::Failed {
            code,
            retryable,
            message: message.into(),
        }
    }
}

struct TicketState {
    reply: Option<ServeReply>,
    /// Callbacks run exactly once, on the resolving thread, after the
    /// reply is set. The event-driven server parks a waker here (a resolved
    /// ticket must nudge the loop to flush the response); the singleflight
    /// table parks its own removal here.
    watchers: Vec<Box<dyn FnOnce() + Send>>,
}

struct TicketInner {
    state: Mutex<TicketState>,
    ready: Condvar,
    /// The sampled trace riding on this request, when the tracer picked it.
    /// Set at creation, never mutated — every stage marks through here.
    trace: Option<Arc<Trace>>,
}

impl std::fmt::Debug for TicketInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("ticket lock poisoned");
        f.debug_struct("TicketInner")
            .field("reply", &state.reply)
            .field("watchers", &state.watchers.len())
            .finish()
    }
}

/// A claim on one submitted request's eventual reply. Cloneable; any clone
/// may wait, poll, or register a resolution callback.
#[derive(Debug, Clone)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    fn new(trace: Option<Arc<Trace>>) -> Self {
        Ticket(Arc::new(TicketInner {
            state: Mutex::new(TicketState {
                reply: None,
                watchers: Vec::new(),
            }),
            ready: Condvar::new(),
            trace,
        }))
    }

    /// A ticket born resolved (protocol-level replies that never enter the
    /// pipeline, e.g. `Busy`).
    pub fn resolved(reply: ServeReply) -> Self {
        let ticket = Ticket::new(None);
        ticket.resolve(reply);
        ticket
    }

    /// The sampled trace riding on this request, if any.
    pub(crate) fn trace(&self) -> Option<&Arc<Trace>> {
        self.0.trace.as_ref()
    }

    /// Resolves the ticket. Called exactly once per submitted ticket, by
    /// the batcher. Watchers run here, on the resolving thread, after the
    /// lock is released — so a watcher may freely take other locks.
    pub(crate) fn resolve(&self, reply: ServeReply) {
        let watchers = {
            let mut state = self.0.state.lock().expect("ticket lock poisoned");
            debug_assert!(state.reply.is_none(), "a ticket resolves exactly once");
            state.reply = Some(reply);
            std::mem::take(&mut state.watchers)
        };
        self.0.ready.notify_all();
        for watcher in watchers {
            watcher();
        }
    }

    /// Resolves the ticket only if it has not resolved yet; returns whether
    /// this call did the resolving. The panic-isolation path uses this to
    /// sweep a batch after `catch_unwind` — some tickets resolved before
    /// the panic, and those must not resolve twice.
    pub(crate) fn resolve_if_pending(&self, reply: ServeReply) -> bool {
        let watchers = {
            let mut state = self.0.state.lock().expect("ticket lock poisoned");
            if state.reply.is_some() {
                return false;
            }
            state.reply = Some(reply);
            std::mem::take(&mut state.watchers)
        };
        self.0.ready.notify_all();
        for watcher in watchers {
            watcher();
        }
        true
    }

    /// Registers a callback to run when the ticket resolves (immediately,
    /// on this thread, when it already has).
    pub(crate) fn on_resolve(&self, f: impl FnOnce() + Send + 'static) {
        let mut state = self.0.state.lock().expect("ticket lock poisoned");
        if state.reply.is_some() {
            drop(state);
            f();
        } else {
            state.watchers.push(Box::new(f));
        }
    }

    /// Blocks until the reply is available and clones it out.
    pub fn wait(&self) -> ServeReply {
        let mut state = self.0.state.lock().expect("ticket lock poisoned");
        loop {
            if let Some(reply) = state.reply.as_ref() {
                return reply.clone();
            }
            state = self.0.ready.wait(state).expect("ticket lock poisoned");
        }
    }

    /// The reply if already available, without blocking (the response
    /// writer uses this to coalesce only what is ready).
    pub fn try_reply(&self) -> Option<ServeReply> {
        self.0
            .state
            .lock()
            .expect("ticket lock poisoned")
            .reply
            .clone()
    }

    fn downgrade(&self) -> Weak<TicketInner> {
        Arc::downgrade(&self.0)
    }
}

#[derive(Debug)]
struct Submitted {
    request: ServeRequest,
    ticket: Ticket,
    /// When the request was admitted; resolution records the difference
    /// into the latency histogram.
    accepted_at: Instant,
}

/// Key of an in-flight lookup in the cross-batch singleflight table.
type InflightKey = (String, Vec<String>);

/// The serving pipeline: admission queue + metrics + the batcher thread
/// that owns the cache. See the module docs for semantics.
#[derive(Debug)]
pub struct ServePipeline {
    queue: Arc<BoundedQueue<Submitted>>,
    metrics: Arc<ServeMetrics>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    /// Cross-batch singleflight: lookups currently in the queue or being
    /// executed, keyed by `(query, context)`. `None` when disabled.
    inflight: Option<Arc<Mutex<HashMap<InflightKey, Ticket>>>>,
}

impl ServePipeline {
    /// Takes ownership of `cache` and starts the batcher thread. Installs
    /// the embedding memo-cache when [`ServeConfig::memo_capacity`] is
    /// non-zero.
    ///
    /// When [`ServeConfig::persist_path`] is set, opens (creating if
    /// absent) the serve write-ahead log at `<persist_path>.wal` and
    /// replays any acknowledged writes a crash stranded there *before*
    /// serving begins — so a restart after `kill -9` observes every write
    /// the WAL made durable.
    ///
    /// # Errors
    /// Propagates WAL open/recovery failures ([`StoreError::Io`] on
    /// filesystem trouble, [`StoreError::Corrupt`] on an undecodable
    /// checksum-valid record). A server that cannot establish its
    /// durability story should fail loudly at startup, not serve without
    /// it.
    pub fn start(mut cache: ShardedCache, config: &ServeConfig) -> Result<Self, StoreError> {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let metrics = Arc::new(ServeMetrics::default());
        metrics
            .configure_tracing(
                config.trace_sample,
                config.trace_slow,
                config.trace_log.as_deref(),
            )
            .map_err(StoreError::Io)?;
        if config.memo_capacity > 0 {
            let mut memo = EmbeddingMemo::new(config.memo_capacity, config.memo_max_bytes);
            // Every memo consultation feeds the `encode` stage histogram.
            memo.set_observer(Arc::new(crate::stats::EncodeStageObserver::new(
                Arc::clone(&metrics),
            )));
            cache.set_embedding_memo(Some(Arc::new(memo)));
        }
        metrics.record_recovery(config.restored);
        let wal = match &config.persist_path {
            None => None,
            Some(path) => {
                let (wal, ops, stats) = ServeWal::open(wal_path(path), config.fsync)?;
                metrics.record_recovery(stats);
                metrics.record_wal_replayed(ops.len() as u64);
                replay_wal_ops(&mut cache, &ops);
                Some(wal)
            }
        };
        let batcher = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mc-serve-batcher".into())
                .spawn(move || batcher_loop(cache, wal, &queue, &metrics, &config))
                .expect("batcher thread spawn failed")
        };
        Ok(Self {
            queue,
            metrics,
            batcher: Mutex::new(Some(batcher)),
            inflight: config
                .singleflight
                .then(|| Arc::new(Mutex::new(HashMap::new()))),
        })
    }

    /// Submits a request; the returned ticket resolves once the batcher has
    /// executed it. Never blocks.
    ///
    /// With singleflight enabled, a lookup identical to one already in
    /// flight attaches to the pending ticket instead of re-entering the
    /// queue: both callers get the same outcome from one probe (and one
    /// commit). Decision-identical — probes are pure and the duplicate
    /// would have been coalesced had it landed in the same batch anyway —
    /// but the duplicate skips the queue entirely, so a thundering herd
    /// costs one queue slot, not many.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when the admission queue is full (the
    /// request is shed), [`SubmitError::ShutDown`] after
    /// [`ServePipeline::shutdown`].
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, SubmitError> {
        let trace = self.metrics.tracer().begin(request_kind(&request));
        if let Some(t) = &trace {
            // Direct pipeline callers skip the wire: accepted = decoded.
            t.mark(Stage::Accepted);
            t.mark(Stage::Decoded);
        }
        self.submit_traced(request, trace)
    }

    /// [`ServePipeline::submit`] for callers that began the trace
    /// themselves (the server starts it at frame-accept time, so the trace
    /// covers decode and queueing, not just execution).
    pub fn submit_traced(
        &self,
        request: ServeRequest,
        trace: Option<Arc<Trace>>,
    ) -> Result<Ticket, SubmitError> {
        let key = match (&self.inflight, &request) {
            (Some(_), ServeRequest::Lookup { query, context }) => {
                Some((query.clone(), context.clone()))
            }
            _ => None,
        };
        if let (Some(inflight), Some(key)) = (&self.inflight, &key) {
            let table = inflight.lock().expect("singleflight lock poisoned");
            if let Some(pending) = table.get(key) {
                self.metrics.record_singleflight();
                return Ok(pending.clone());
            }
        }
        let ticket = Ticket::new(trace);
        let result = self.queue.push(Submitted {
            request,
            ticket: ticket.clone(),
            accepted_at: Instant::now(),
        });
        match result {
            Ok(()) => {
                self.metrics.record_admitted();
                if let Some(t) = ticket.trace() {
                    t.mark(Stage::Enqueued);
                }
                if let (Some(inflight), Some(key)) = (&self.inflight, key) {
                    inflight
                        .lock()
                        .expect("singleflight lock poisoned")
                        .insert(key.clone(), ticket.clone());
                    // Remove the entry exactly when this ticket resolves.
                    // The watcher holds a Weak so an ill-fated ticket can't
                    // keep itself alive through its own callback, and the
                    // pointer check means a newer in-flight entry under the
                    // same key is never removed by an older resolve.
                    let table = Arc::clone(inflight);
                    let me = ticket.downgrade();
                    ticket.on_resolve(move || {
                        let mut table = table.lock().expect("singleflight lock poisoned");
                        let matches = table
                            .get(&key)
                            .zip(me.upgrade())
                            .is_some_and(|(entry, me)| Arc::ptr_eq(&entry.0, &me));
                        if matches {
                            table.remove(&key);
                        }
                    });
                }
                Ok(ticket)
            }
            Err(SubmitError::Overloaded) => {
                self.metrics.record_shed();
                Err(SubmitError::Overloaded)
            }
            Err(e) => Err(e),
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The pipeline's live counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Graceful shutdown: closes the queue (new submissions fail with
    /// [`SubmitError::ShutDown`]), lets the batcher drain everything
    /// already admitted — resolving every outstanding ticket — and joins
    /// it. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handle = self.batcher.lock().expect("batcher handle poisoned").take();
        if let Some(handle) = handle {
            // A panicked batcher is a bug, but the shutdown path is the
            // wrong place to double the damage: propagating here turns one
            // dead thread into a panic inside Drop (and an abort during
            // unwinding). Log it and let the process finish its teardown.
            if handle.join().is_err() {
                eprintln!(
                    "mc-serve: batcher thread panicked outside batch execution; \
                     shutting down without its final drain"
                );
            }
        }
    }
}

impl Drop for ServePipeline {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Re-applies crash-stranded WAL ops to the freshly loaded cache. Replay is
/// tolerant at the entry level: an op the live config refuses (it was
/// accepted by the pre-crash config) is logged and skipped — one odd entry
/// must not block recovery of the rest.
fn replay_wal_ops(cache: &mut ShardedCache, ops: &[WalOp]) {
    for op in ops {
        match op {
            WalOp::Insert {
                query,
                response,
                context,
            } => {
                if let Err(e) = cache.insert(query, response, context) {
                    eprintln!("mc-serve: skipping unre-playable WAL insert {query:?}: {e}");
                }
            }
            WalOp::Flush => {
                if let Err(e) = cache.clear() {
                    eprintln!("mc-serve: WAL flush replay failed: {e}");
                }
            }
        }
    }
}

fn batcher_loop(
    mut cache: ShardedCache,
    mut wal: Option<ServeWal>,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut batch: Vec<Submitted> = Vec::with_capacity(config.max_batch.max(1));
    let mut last_sweep = Instant::now();
    loop {
        batch.clear();
        if !queue.pop_batch(config.max_batch, config.max_wait, &mut batch) {
            break; // closed and fully drained
        }
        // One clock read covers the whole batch's queue-wait accounting.
        let dequeued_at = Instant::now();
        for item in &batch {
            metrics.record_queue_wait_micros(
                dequeued_at
                    .saturating_duration_since(item.accepted_at)
                    .as_micros() as u64,
            );
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Dequeued);
            }
        }
        if !config.batch_delay.is_zero() {
            std::thread::sleep(config.batch_delay);
        }
        metrics.record_batch(batch.len());
        for item in &batch {
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Batched);
            }
        }
        execute_batch(&mut cache, &mut wal, &batch, queue, metrics, config);
        // Root-pin GC: between batches the batcher is the only cache
        // writer, so the sweep serialises with inserts by construction.
        if !config.pin_sweep_interval.is_zero() && last_sweep.elapsed() >= config.pin_sweep_interval
        {
            metrics.record_pins_swept(cache.sweep_root_pins() as u64);
            last_sweep = Instant::now();
        }
    }
    // Graceful-shutdown persistence: the queue is closed and drained, the
    // batcher owns the cache outright, so this is the one place a final
    // save observes every acknowledged write. The save writes each shard's
    // entry log *and* its `MCSNAP01` mmap snapshot (docs/FORMAT.md), so
    // the next boot restores zero-copy instead of replaying. The save
    // supersedes the serve WAL, which resets so the next boot does not
    // replay what the save already holds.
    if let Some(path) = &config.persist_path {
        match save_sharded_cache_with_config(&cache, path) {
            Ok(()) => {
                if let Some(wal) = wal.as_mut() {
                    if let Err(e) = wal.reset() {
                        eprintln!("mc-serve: failed to reset WAL after shutdown save: {e}");
                    }
                }
            }
            Err(e) => eprintln!(
                "mc-serve: failed to persist cache to {} on shutdown: {e}",
                path.display()
            ),
        }
    }
}

/// Executes one formed batch in submission order, grouping maximal runs of
/// consecutive lookups into single `probe_batch` passes with duplicate
/// requests **coalesced**: identical `(query, context)` pairs in one run —
/// the thundering-herd shape a popular cache service sees constantly — are
/// probed once and their outcome fanned out to every requester
/// (singleflight, the request-collapsing CDNs and inference servers do).
/// Probes are pure against the frozen-within-the-batch cache, so coalescing
/// is response-identical to probing each duplicate; commits still run once
/// per *request* in submission order, so eviction recency matches
/// sequential serving exactly. (Cache-internal `lookups` counters tick once
/// per unique probe; the pipeline's served counters remain per-request.)
fn execute_batch(
    cache: &mut ShardedCache,
    wal: &mut Option<ServeWal>,
    batch: &[Submitted],
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    let mut i = 0;
    while i < batch.len() {
        let is_lookup = matches!(batch[i].request, ServeRequest::Lookup { .. });
        if !is_lookup {
            execute_control(cache, wal, &batch[i], queue, metrics, config);
            i += 1;
            continue;
        }
        let mut j = i;
        while j < batch.len() && matches!(batch[j].request, ServeRequest::Lookup { .. }) {
            j += 1;
        }
        execute_lookup_run(cache, &batch[i..j], metrics, config);
        i = j;
    }
}

/// True when `item` has outlived the configured per-request deadline.
fn past_deadline(item: &Submitted, config: &ServeConfig) -> bool {
    !config.request_deadline.is_zero() && item.accepted_at.elapsed() > config.request_deadline
}

/// Executes one maximal run of consecutive lookups: expired deadlines are
/// answered without probing, the rest probe (coalesced when the run has
/// duplicates) behind a panic fence — a panic in cache code resolves the
/// run's outstanding tickets with a retryable error instead of killing the
/// batcher and stranding every future request.
fn execute_lookup_run(
    cache: &mut ShardedCache,
    run: &[Submitted],
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    // Deadline pass: a lookup whose client has already given up is not
    // worth a probe. Lookups are read-only, so skipping one is invisible
    // to the served history; the ticket resolves retryable.
    let mut live: Vec<&Submitted> = Vec::with_capacity(run.len());
    for item in run {
        if past_deadline(item, config) {
            metrics.record_deadline_expired();
            // Deadline-expired requests always land in the flight recorder:
            // `record_done` force-records them, synthesising a trace when
            // the request wasn't sampled.
            metrics.record_done(
                item.accepted_at.elapsed(),
                "lookup",
                item.ticket.trace(),
                flag::DEADLINE_EXPIRED,
            );
            item.ticket.resolve(ServeReply::failed(
                ErrorCode::DeadlineExceeded,
                true,
                format!(
                    "queued past the {:?} request deadline; not executed",
                    config.request_deadline
                ),
            ));
        } else {
            live.push(item);
        }
    }
    if live.is_empty() {
        return;
    }
    let fenced = catch_unwind(AssertUnwindSafe(|| {
        // Fault injection: lets the test suite prove the panic fence holds
        // without contriving a real cache bug. Inert outside test builds.
        // The tag is the run's first query so tests can scope the fuse to
        // their own traffic.
        let fuse_tag = match &live[0].request {
            ServeRequest::Lookup { query, .. } => query.as_str(),
            _ => "lookup",
        };
        if let Some(Err(e)) = mc_store::failpoints::write_hook("serve.batch.work", fuse_tag, 0) {
            panic!("injected batch-work panic: {e}");
        }
        if let [item] = live[..] {
            // Singleton run: the plain probe path, no batch machinery. This
            // is also the entire hot path of a `max_batch = 1` (unbatched)
            // configuration.
            let ServeRequest::Lookup { query, context } = &item.request else {
                unreachable!("run contains only lookups");
            };
            let trace = item.ticket.trace();
            if let Some(t) = trace {
                // Pre-resolve the embedding through the memo so the probe's
                // internal encode is a guaranteed memo hit — this attributes
                // the encode to hit/miss without perturbing the result.
                if let Some(hit) = cache.warm_memo(query) {
                    t.set_flag(if hit { flag::MEMO_HIT } else { flag::MEMO_MISS });
                }
                t.mark(Stage::Encoded);
            }
            let probe_start = Instant::now();
            let outcome = cache.probe(query, context);
            let probe_end = Instant::now();
            metrics.record_probe_micros(
                probe_end.saturating_duration_since(probe_start).as_micros() as u64,
            );
            if let Some(t) = trace {
                t.mark(Stage::Probed);
            }
            cache.commit(&outcome);
            metrics.record_commit_micros(probe_end.elapsed().as_micros() as u64);
            if let Some(t) = trace {
                t.mark(Stage::Committed);
            }
            metrics.record_served(outcome.is_hit());
            metrics.record_done(item.accepted_at.elapsed(), "lookup", trace, 0);
            item.ticket.resolve(ServeReply::Outcome(outcome));
            return;
        }
        // Coalesce duplicates: probe each distinct (query, context) once.
        let mut unique: Vec<(&str, &[String])> = Vec::with_capacity(live.len());
        let mut index_of: HashMap<(&str, &[String]), usize> = HashMap::with_capacity(live.len());
        let assigned: Vec<usize> = live
            .iter()
            .map(|item| match &item.request {
                ServeRequest::Lookup { query, context } => *index_of
                    .entry((query.as_str(), context.as_slice()))
                    .or_insert_with(|| {
                        unique.push((query.as_str(), context.as_slice()));
                        unique.len() - 1
                    }),
                _ => unreachable!("run contains only lookups"),
            })
            .collect();
        metrics.record_coalesced((live.len() - unique.len()) as u64);
        let coalesced = live.len() > unique.len();
        // Sampled items get their memo consultation attributed before the
        // batch probe (cheap: the probe's own encode becomes a memo hit).
        for item in &live {
            if let Some(t) = item.ticket.trace() {
                if let ServeRequest::Lookup { query, .. } = &item.request {
                    if let Some(hit) = cache.warm_memo(query) {
                        t.set_flag(if hit { flag::MEMO_HIT } else { flag::MEMO_MISS });
                    }
                }
                t.mark(Stage::Encoded);
                if coalesced {
                    t.set_flag(flag::COALESCED);
                }
            }
        }
        let probe_start = Instant::now();
        let outcomes = cache.probe_batch(&unique);
        // Amortise the batch probe over its unique probes: one histogram
        // sample per probe actually executed.
        let probe_us = probe_start.elapsed().as_micros() as u64 / unique.len().max(1) as u64;
        for _ in &unique {
            metrics.record_probe_micros(probe_us);
        }
        for item in &live {
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Probed);
            }
        }
        // Commit in submission order before resolving each ticket: the
        // served history (including LRU/LFU touches) matches sequential
        // `lookup` calls exactly.
        for (item, &unique_index) in live.iter().zip(&assigned) {
            let outcome = outcomes[unique_index].clone();
            let commit_start = Instant::now();
            cache.commit(&outcome);
            metrics.record_commit_micros(commit_start.elapsed().as_micros() as u64);
            if let Some(t) = item.ticket.trace() {
                t.mark(Stage::Committed);
            }
            metrics.record_served(outcome.is_hit());
            metrics.record_done(item.accepted_at.elapsed(), "lookup", item.ticket.trace(), 0);
            item.ticket.resolve(ServeReply::Outcome(outcome));
        }
    }));
    if fenced.is_err() {
        // The cache's locks recover from poisoning (probes never leave
        // partial writes), so the next batch proceeds; every ticket the
        // panic stranded resolves retryable — lookups are read-only, so
        // "not executed" is certain.
        metrics.record_panic_caught();
        for item in &live {
            let resolved = item.ticket.resolve_if_pending(ServeReply::failed(
                ErrorCode::Panicked,
                true,
                "cache work panicked mid-batch; lookup not executed",
            ));
            if resolved {
                // Panicked requests always land in the flight recorder,
                // sampled or not.
                metrics.record_done(
                    item.accepted_at.elapsed(),
                    "lookup",
                    item.ticket.trace(),
                    flag::PANICKED,
                );
            }
        }
    }
}

/// Runs a WAL append for an acknowledged write. An append failure degrades
/// durability (the write survives in memory and in the next snapshot) but
/// must not fail the already-executed request — it is logged and counted
/// so operators see the degradation.
fn append_wal(
    wal: &mut Option<ServeWal>,
    metrics: &ServeMetrics,
    append: impl FnOnce(&mut ServeWal) -> Result<(), StoreError>,
) {
    let Some(wal) = wal.as_mut() else { return };
    match append(wal) {
        Ok(()) => metrics.record_wal_append(),
        Err(e) => {
            metrics.record_wal_append_error();
            eprintln!("mc-serve: WAL append failed (durability degraded until next save): {e}");
        }
    }
}

fn execute_control(
    cache: &mut ShardedCache,
    wal: &mut Option<ServeWal>,
    item: &Submitted,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) {
    // Panic fence: a panic inside cache work resolves this ticket with an
    // error frame instead of killing the batcher thread. Writes are
    // append-or-nothing at the cache layer, but a panic leaves "whether it
    // applied" unknown — the reply says so and is marked retryable per the
    // wire taxonomy (a duplicate insert of identical content is benign).
    let fenced = catch_unwind(AssertUnwindSafe(|| {
        control_reply(cache, wal, item, queue, metrics, config)
    }));
    let panicked = fenced.is_err();
    let reply = fenced.unwrap_or_else(|_| {
        metrics.record_panic_caught();
        ServeReply::failed(
            ErrorCode::Panicked,
            true,
            "cache work panicked mid-request; whether it applied is unknown",
        )
    });
    if let Some(t) = item.ticket.trace() {
        t.mark(Stage::Committed);
    }
    metrics.record_done(
        item.accepted_at.elapsed(),
        request_kind(&item.request),
        item.ticket.trace(),
        if panicked { flag::PANICKED } else { 0 },
    );
    item.ticket.resolve(reply);
}

fn control_reply(
    cache: &mut ShardedCache,
    wal: &mut Option<ServeWal>,
    item: &Submitted,
    queue: &BoundedQueue<Submitted>,
    metrics: &ServeMetrics,
    config: &ServeConfig,
) -> ServeReply {
    match &item.request {
        ServeRequest::Insert {
            query,
            response,
            context,
        } => match cache.insert(query, response, context) {
            Ok(id) => {
                metrics.record_insert();
                // Logged (and fsynced per policy) before the ticket
                // resolves: under `--fsync always` an acknowledged insert
                // is already durable when the client reads its response.
                append_wal(wal, metrics, |w| w.append_insert(query, response, context));
                ServeReply::Inserted(id)
            }
            Err(e) => ServeReply::failed(ErrorCode::Internal, false, format!("insert failed: {e}")),
        },
        ServeRequest::Stats => {
            metrics.record_control();
            ServeReply::Stats(Box::new(ServeStatsSnapshot::collect(
                cache,
                metrics,
                queue.len(),
                queue.capacity(),
            )))
        }
        ServeRequest::Metrics => {
            metrics.record_control();
            ServeReply::MetricsText(
                ServeStatsSnapshot::collect(cache, metrics, queue.len(), queue.capacity())
                    .render_text(),
            )
        }
        ServeRequest::TraceDump => {
            metrics.record_control();
            ServeReply::TraceJson(metrics.tracer().dump_json())
        }
        ServeRequest::SetThreshold(threshold) => {
            if (0.0..=1.0).contains(threshold) {
                metrics.record_control();
                cache.set_threshold(*threshold);
                ServeReply::Ack
            } else {
                ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    format!("threshold {threshold} must be in [0, 1]"),
                )
            }
        }
        ServeRequest::SetRouting(mode) => {
            metrics.record_control();
            if cache.routing() == *mode {
                ServeReply::Ack
            } else {
                match reshard(cache, cache.config().clone().with_routing(*mode)) {
                    Ok(new_cache) => {
                        *cache = new_cache;
                        ServeReply::Ack
                    }
                    Err(e) => ServeReply::failed(
                        ErrorCode::Internal,
                        false,
                        format!("reshard to {} failed: {e}", mode.name()),
                    ),
                }
            }
        }
        ServeRequest::Save => {
            metrics.record_control();
            match &config.persist_path {
                None => ServeReply::failed(
                    ErrorCode::BadRequest,
                    false,
                    "no persist path configured (start the server with --persist)",
                ),
                Some(path) => match save_sharded_cache_with_config(cache, path) {
                    Ok(()) => {
                        // The snapshot now covers everything the WAL held;
                        // truncate so the next boot does not double-replay.
                        if let Some(wal) = wal.as_mut() {
                            if let Err(e) = wal.reset() {
                                metrics.record_wal_append_error();
                                eprintln!("mc-serve: WAL reset after save failed: {e}");
                            }
                        }
                        ServeReply::Saved(cache.len() as u64)
                    }
                    Err(e) => {
                        ServeReply::failed(ErrorCode::Internal, false, format!("save failed: {e}"))
                    }
                },
            }
        }
        ServeRequest::Flush => {
            metrics.record_control();
            let evicted = cache.len() as u64;
            // Empty the shards in place: the live config (which tracks
            // threshold updates) and any seeded routing centroids survive
            // the flush — dropping the centroids would silently degrade
            // centroid routing to its hash fallback.
            cache.clear().expect("a live cache's config re-validates");
            append_wal(wal, metrics, ServeWal::append_flush);
            ServeReply::Flushed(evicted)
        }
        ServeRequest::Lookup { .. } => unreachable!("lookups are handled in runs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::{ModelProfile, QueryEncoder};
    use meancache::MeanCacheConfig;

    fn cache(shards: usize) -> ShardedCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        ShardedCache::new(
            encoder,
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_shards(shards),
        )
        .unwrap()
    }

    fn lookup(query: &str) -> ServeRequest {
        ServeRequest::Lookup {
            query: query.into(),
            context: Vec::new(),
        }
    }

    #[test]
    fn insert_then_lookup_round_trips_through_the_pipeline() {
        let pipeline = ServePipeline::start(cache(4), &ServeConfig::default()).unwrap();
        let inserted = pipeline
            .submit(ServeRequest::Insert {
                query: "what is federated learning".into(),
                response: "On-device training.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        assert!(matches!(inserted, ServeReply::Inserted(_)));
        let hit = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap()
            .wait();
        match hit {
            ServeReply::Outcome(outcome) => {
                assert!(outcome.is_hit());
                assert_eq!(outcome.hit().unwrap().response, "On-device training.");
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
        let miss = pipeline.submit(lookup("never inserted")).unwrap().wait();
        assert!(matches!(
            miss,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        pipeline.shutdown();
        assert_eq!(
            pipeline.submit(ServeRequest::Stats).map(|_| ()),
            Err(SubmitError::ShutDown)
        );
    }

    #[test]
    fn control_plane_orders_with_lookups() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
        pipeline
            .submit(ServeRequest::Insert {
                query: "how do I bake sourdough bread".into(),
                response: "Ferment overnight.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        // Stats sees the insert (total order through the queue).
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.inserts, 1);
        // Threshold update applies to later lookups; invalid ones fail.
        assert_eq!(
            pipeline
                .submit(ServeRequest::SetThreshold(0.99))
                .unwrap()
                .wait(),
            ServeReply::Ack
        );
        assert!(matches!(
            pipeline
                .submit(ServeRequest::SetThreshold(7.0))
                .unwrap()
                .wait(),
            ServeReply::Failed { .. }
        ));
        // Flush empties; the lookup ordered after it misses.
        assert_eq!(
            pipeline.submit(ServeRequest::Flush).unwrap().wait(),
            ServeReply::Flushed(1)
        );
        let after = pipeline
            .submit(lookup("how do I bake sourdough bread"))
            .unwrap()
            .wait();
        assert!(matches!(
            after,
            ServeReply::Outcome(CacheDecisionOutcome::Miss)
        ));
        // And the flushed cache kept the updated threshold.
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.entries, 0);
        assert!((stats.threshold - 0.99).abs() < 1e-6);
    }

    #[test]
    fn identical_inflight_lookups_share_one_ticket_across_batches() {
        // max_batch = 1 plus a batch delay parks the batcher on the insert
        // long enough for both lookups to be submitted while the first is
        // still queued — the deterministic cross-batch duplicate shape.
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit(ServeRequest::Insert {
                query: "what is federated learning".into(),
                response: "On-device training.".into(),
                context: Vec::new(),
            })
            .unwrap();
        let first = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        let second = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        // The duplicate attached to the pending ticket — same allocation.
        assert!(
            Arc::ptr_eq(&first.0, &second.0),
            "duplicate lookup must share the in-flight ticket"
        );
        // A *different* lookup gets its own ticket.
        let other = pipeline.submit(lookup("something else entirely")).unwrap();
        assert!(!Arc::ptr_eq(&first.0, &other.0));
        assert!(matches!(first.wait(), ServeReply::Outcome(o) if o.is_hit()));
        assert!(matches!(second.wait(), ServeReply::Outcome(o) if o.is_hit()));
        other.wait();
        // After resolution the key is free again: a fresh lookup re-enters
        // the pipeline with a fresh ticket.
        let after = pipeline
            .submit(lookup("what is federated learning"))
            .unwrap();
        assert!(!Arc::ptr_eq(&first.0, &after.0));
        after.wait();
        let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
            ServeReply::Stats(snapshot) => snapshot,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.singleflight, 1);
        // The attached duplicate never hit the queue: 5 admitted requests
        // (insert, 2 distinct lookups, re-lookup, stats), not 6.
        assert_eq!(stats.admitted, 5);
        // Latency was recorded once per *executed* request (the snapshot
        // is collected before the stats request's own latency lands).
        assert_eq!(stats.latency_hist.iter().sum::<u64>(), 4);
    }

    #[test]
    fn singleflight_off_gives_every_lookup_its_own_ticket() {
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(30),
            singleflight: false,
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit(ServeRequest::Insert {
                query: "q".into(),
                response: "r".into(),
                context: Vec::new(),
            })
            .unwrap();
        let first = pipeline.submit(lookup("q")).unwrap();
        let second = pipeline.submit(lookup("q")).unwrap();
        assert!(!Arc::ptr_eq(&first.0, &second.0));
        first.wait();
        second.wait();
    }

    #[test]
    fn deadline_expired_lookups_always_land_in_the_flight_recorder() {
        let config = ServeConfig {
            max_batch: 1,
            batch_delay: Duration::from_millis(30),
            request_deadline: Duration::from_millis(5),
            trace_sample: 0, // prove force-recording, not sampling
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        let reply = pipeline
            .submit(lookup("a lookup whose client gave up"))
            .unwrap()
            .wait();
        assert!(matches!(
            reply,
            ServeReply::Failed {
                code: ErrorCode::DeadlineExceeded,
                retryable: true,
                ..
            }
        ));
        let dump = pipeline.metrics().tracer().dump();
        assert_eq!(dump.traces.len(), 1);
        assert!(dump.traces[0].deadline_expired);
        assert!(dump.traces[0].is_monotone());
        pipeline.shutdown();
    }

    #[test]
    fn trace_dump_returns_sampled_monotone_traces() {
        let config = ServeConfig {
            trace_sample: 1,
            // Everything counts as slow, so traces are recorded at resolve
            // time (no event loop runs here to mark `written`).
            trace_slow: Duration::from_micros(1),
            ..ServeConfig::default()
        };
        let pipeline = ServePipeline::start(cache(2), &config).unwrap();
        pipeline
            .submit(ServeRequest::Insert {
                query: "what is federated learning".into(),
                response: "On-device training.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        pipeline
            .submit(lookup("what is federated learning"))
            .unwrap()
            .wait();
        let json = match pipeline.submit(ServeRequest::TraceDump).unwrap().wait() {
            ServeReply::TraceJson(json) => json,
            other => panic!("expected a trace dump, got {other:?}"),
        };
        let dump: mc_metrics::TraceDump = serde_json::from_str(&json).unwrap();
        assert_eq!(dump.sample_every, 1);
        assert!(dump.traces.len() >= 2);
        assert!(dump.traces.iter().all(|t| t.is_monotone()));
        // The lookup trace walked the full stage ladder and got its memo
        // consultation attributed.
        let lookup_trace = dump
            .traces
            .iter()
            .find(|t| t.kind == "lookup")
            .expect("lookup trace present");
        for stage in ["enqueued", "dequeued", "encoded", "probed", "committed"] {
            assert!(
                lookup_trace.stage_us(stage).is_some(),
                "missing stage {stage}"
            );
        }
        assert!(lookup_trace.memo_hit.is_some());
        assert!(lookup_trace.slow);
        pipeline.shutdown();
    }

    #[test]
    fn metrics_request_renders_the_text_exposition() {
        let pipeline = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
        pipeline
            .submit(ServeRequest::Insert {
                query: "what is federated learning".into(),
                response: "On-device training.".into(),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        let text = match pipeline.submit(ServeRequest::Metrics).unwrap().wait() {
            ServeReply::MetricsText(text) => text,
            other => panic!("expected metrics text, got {other:?}"),
        };
        assert!(text.contains("serve_entries 1"));
        assert!(text.contains("serve_inserts_total 1"));
        assert!(text.contains("serve_latency_us_count"));
        // The default config installs the embedding memo; the insert
        // encoded (and memoized) one embedding.
        assert!(text.contains("serve_memo_entries 1"));
    }
}
