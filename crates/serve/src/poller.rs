//! Readiness polling for the event-driven server: a minimal epoll shim with
//! a portable `poll(2)` fallback, plus a cross-thread [`Waker`].
//!
//! The server's event loop owns every connection on one thread and needs
//! exactly one primitive: "block until one of these file descriptors is
//! readable/writable (or a deadline passes), and tell me which". This module
//! provides it without any networking dependency — the two syscall families
//! are declared directly (the workspace is offline; std already links libc):
//!
//! * [`PollerKind::Epoll`] — `epoll_create1`/`epoll_ctl`/`epoll_wait`.
//!   O(ready) wakeups: 10k idle connections cost file descriptors, not scan
//!   time. Linux-only.
//! * [`PollerKind::Poll`] — `poll(2)` over the registered set. O(registered)
//!   per wakeup, but portable to any Unix; the CI exercises both so the
//!   fallback stays honest.
//!
//! Tokens are caller-chosen `u64`s carried back verbatim in [`Event`]s; the
//! poller never interprets them. Registration state for the `poll(2)`
//! backend lives in the poller itself; the epoll backend keeps the state in
//! the kernel.
//!
//! [`Waker`] lets other threads (the batcher resolving a ticket, shutdown)
//! interrupt a blocked [`Poller::wait`]: a connected loopback UDP socket
//! pair, with an "armed" flag so arbitrarily many wakes between two drains
//! cost one datagram. A UDP pair rather than a pipe keeps this file free of
//! extra syscall declarations, and the pair is connected in both directions
//! so stray datagrams from other processes are rejected by the kernel.

#![cfg(unix)]

use std::io;
use std::net::{Ipv4Addr, UdpSocket};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- raw syscall surface ---------------------------------------------------

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI there has no
/// padding between `events` and `data`); aligned elsewhere. Fields are only
/// ever read *by value* — never by reference — which is the one safe way to
/// touch packed fields.
#[repr(C)]
#[cfg_attr(all(target_os = "linux", target_arch = "x86_64"), repr(packed))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

// ---- public surface --------------------------------------------------------

/// Which readiness backend a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux `epoll`: O(ready) wakeups.
    Epoll,
    /// Portable `poll(2)`: O(registered) per wakeup.
    Poll,
}

impl PollerKind {
    /// Stable kebab-case name (CLI flags, logs).
    pub fn name(self) -> &'static str {
        match self {
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        }
    }

    /// Inverse of [`PollerKind::name`] (`None` for unknown names).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "epoll" => Some(PollerKind::Epoll),
            "poll" => Some(PollerKind::Poll),
            _ => None,
        }
    }
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the registration's token plus what fired. `hangup`
/// reports peer-closed/error conditions that are delivered even when not
/// asked for — the owner should tear the connection down.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes pending EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the fd errored.
    pub hangup: bool,
}

/// A readiness poller over raw file descriptors. Not `Sync` — exactly one
/// thread (the event loop) drives it; other threads interrupt via [`Waker`].
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Epoll {
        epfd: RawFd,
        /// Scratch buffer reused across waits.
        buf: Vec<EpollEvent>,
    },
    Poll {
        /// Registered fds in registration order (token, fd, interest).
        entries: Vec<(u64, RawFd, Interest)>,
    },
}

impl Poller {
    /// Creates a poller of the requested kind.
    ///
    /// # Errors
    /// The underlying `epoll_create1` failure (e.g. fd exhaustion); the
    /// `poll(2)` backend cannot fail to construct.
    pub fn new(kind: PollerKind) -> io::Result<Self> {
        let backend = match kind {
            PollerKind::Epoll => {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Backend::Epoll {
                    epfd,
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                }
            }
            PollerKind::Poll => Backend::Poll {
                entries: Vec::new(),
            },
        };
        Ok(Self { backend })
    }

    /// The live backend kind.
    pub fn kind(&self) -> PollerKind {
        match self.backend {
            Backend::Epoll { .. } => PollerKind::Epoll,
            Backend::Poll { .. } => PollerKind::Poll,
        }
    }

    /// Registers `fd` under `token`. One registration per fd; re-registering
    /// an fd without deregistering first is a caller bug (epoll reports
    /// `EEXIST`, the fallback debug-asserts).
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => epoll_update(*epfd, EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll { entries } => {
                debug_assert!(
                    entries.iter().all(|&(_, f, _)| f != fd),
                    "fd {fd} registered twice"
                );
                entries.push((token, fd, interest));
                Ok(())
            }
        }
    }

    /// Replaces the interest (and token) of an already registered fd.
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure, or `NotFound` when `fd` was never
    /// registered with the fallback backend.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => epoll_update(*epfd, EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll { entries } => match entries.iter_mut().find(|(_, f, _)| *f == fd) {
                Some(entry) => {
                    *entry = (token, fd, interest);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            },
        }
    }

    /// Removes `fd` from the poller. Must happen *before* the fd is closed
    /// (a closed fd auto-leaves epoll, but the fallback would keep polling a
    /// dead — or worse, recycled — descriptor).
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd, .. } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                let rc = unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { entries } => {
                entries.retain(|&(_, f, _)| f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires (`None` = wait forever), clearing and filling `events`.
    /// `EINTR` is retried with the remaining time. Returns the number of
    /// events delivered (0 = timeout).
    ///
    /// # Errors
    /// The underlying `epoll_wait`/`poll` failure.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let timeout_ms: c_int = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so a 0 < left < 1ms residue does not spin.
                    c_int::try_from(left.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
                        + if left.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
            };
            let result = match &mut self.backend {
                Backend::Epoll { epfd, buf } => {
                    let n = unsafe {
                        epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                    };
                    if n >= 0 {
                        for ev in &buf[..n as usize] {
                            // Packed struct: copy fields out by value.
                            let bits = ev.events;
                            let token = ev.data;
                            events.push(Event {
                                token,
                                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                                writable: bits & EPOLLOUT != 0,
                                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                            });
                        }
                        Ok(n as usize)
                    } else {
                        Err(io::Error::last_os_error())
                    }
                }
                Backend::Poll { entries } => {
                    let mut fds: Vec<PollFd> = entries
                        .iter()
                        .map(|&(_, fd, interest)| PollFd {
                            fd,
                            events: (if interest.readable { POLLIN } else { 0 })
                                | (if interest.writable { POLLOUT } else { 0 }),
                            revents: 0,
                        })
                        .collect();
                    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
                    if n >= 0 {
                        for (pfd, &(token, _, _)) in fds.iter().zip(entries.iter()) {
                            if pfd.revents == 0 {
                                continue;
                            }
                            events.push(Event {
                                token,
                                readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                                writable: pfd.revents & POLLOUT != 0,
                                hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                            });
                        }
                        Ok(events.len())
                    } else {
                        Err(io::Error::last_os_error())
                    }
                }
            };
            match result {
                Ok(n) => {
                    if n > 0 || deadline.map(|d| Instant::now() >= d).unwrap_or(false) {
                        return Ok(events.len());
                    }
                    // Spurious zero before the deadline (epoll can round
                    // down): loop with the remaining time.
                    if deadline.is_none() && n == 0 {
                        continue;
                    }
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd, .. } = self.backend {
            unsafe { close(epfd) };
        }
    }
}

fn epoll_update(
    epfd: RawFd,
    op: c_int,
    fd: RawFd,
    token: u64,
    interest: Interest,
) -> io::Result<()> {
    let mut bits = EPOLLRDHUP;
    if interest.readable {
        bits |= EPOLLIN;
    }
    if interest.writable {
        bits |= EPOLLOUT;
    }
    let mut ev = EpollEvent {
        events: bits,
        data: token,
    };
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ---- waker -----------------------------------------------------------------

/// The sending half of a wake pair: any thread may call
/// [`Waker::wake`] to make the event loop's next (or current)
/// [`Poller::wait`] return. Cheap to clone (shared socket behind an `Arc`).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
    armed: Arc<AtomicBool>,
}

impl Waker {
    /// Wakes the receiver. Coalesced: between two drains, only the first
    /// wake sends a datagram.
    pub fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) && self.tx.send(&[1]).is_err() {
            // A dropped datagram (ENOBUFS under memory pressure) with the
            // flag left armed would suppress every future wake — a
            // permanent stall. Disarm so the next wake retries the send;
            // the loss is transient because resolutions keep coming.
            self.armed.store(false, Ordering::Release);
        }
    }
}

/// The receiving half: registered with the [`Poller`]; readable exactly when
/// a wake is pending.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UdpSocket,
    armed: Arc<AtomicBool>,
}

impl WakeReceiver {
    /// The fd to register with the poller (readable interest).
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes pending wake datagrams and re-arms the pair. The recv loop
    /// runs *before* the disarm: while the flag is still armed no sender
    /// produces a fresh datagram, so the loop can only consume stale ones.
    /// A wake racing the tail of the drain (after the disarm) sends a
    /// datagram this drain never touches — at worst a single spurious
    /// wakeup on the next poll. Disarming first would invert that: the
    /// racing wake's datagram could be consumed by this very drain, leaving
    /// the flag armed with nothing in flight, and every later wake
    /// suppressed — a lost wakeup that strands resolved work until an
    /// unrelated socket event happens by.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
        self.armed.store(false, Ordering::Release);
    }
}

/// Builds a connected loopback wake pair.
///
/// # Errors
/// Socket creation/connect failures (fd exhaustion, no loopback).
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
    let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
    tx.connect(rx.local_addr()?)?;
    // Connect back so the kernel drops datagrams from any other source.
    rx.connect(tx.local_addr()?)?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    let armed = Arc::new(AtomicBool::new(false));
    Ok((
        Waker {
            tx: Arc::new(tx),
            armed: Arc::clone(&armed),
        },
        WakeReceiver { rx, armed },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn kinds() -> [PollerKind; 2] {
        [PollerKind::Epoll, PollerKind::Poll]
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in kinds() {
            assert_eq!(PollerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PollerKind::from_name("kqueue"), None);
    }

    #[test]
    fn readiness_follows_data_on_both_backends() {
        for kind in kinds() {
            let mut poller = Poller::new(kind).unwrap();
            assert_eq!(poller.kind(), kind);
            let (mut client, server) = tcp_pair();
            let fd = server.as_raw_fd();
            poller.register(fd, 7, Interest::READ).unwrap();

            // Nothing to read yet: a bounded wait times out.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: idle socket must not wake the poller");

            client.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{kind:?}: data must wake readable: {events:?}"
            );

            // Write interest on a fresh socket fires immediately.
            poller.modify(fd, 7, Interest::BOTH).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.writable));

            // After deregistration the fd is silent.
            poller.deregister(fd).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: deregistered fd must be silent");
            drop(client);
            drop(server);
        }
    }

    #[test]
    fn peer_close_reports_hangup_or_readable_eof() {
        for kind in kinds() {
            let mut poller = Poller::new(kind).unwrap();
            let (client, mut server) = tcp_pair();
            poller
                .register(client.as_raw_fd(), 3, Interest::READ)
                .unwrap();
            // Drain anything pending, then close the peer.
            server.flush().unwrap();
            drop(server);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events
                .iter()
                .find(|e| e.token == 3)
                .unwrap_or_else(|| panic!("{kind:?}: close must produce an event"));
            assert!(
                ev.hangup || ev.readable,
                "{kind:?}: close must read as hangup/EOF: {ev:?}"
            );
            // And the EOF is real.
            let mut probe = client;
            probe.set_nonblocking(true).unwrap();
            let mut buf = [0u8; 8];
            assert_eq!(probe.read(&mut buf).unwrap(), 0);
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_coalesces() {
        for kind in kinds() {
            let mut poller = Poller::new(kind).unwrap();
            let (waker, receiver) = wake_pair().unwrap();
            poller
                .register(receiver.raw_fd(), 99, Interest::READ)
                .unwrap();

            let remote = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                remote.wake();
                remote.wake(); // coalesced: no second datagram
                remote.wake();
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            handle.join().unwrap();
            assert!(
                events.iter().any(|e| e.token == 99 && e.readable),
                "{kind:?}: wake must interrupt the wait"
            );
            receiver.drain();

            // Drained and disarmed: the poller is quiet again...
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: drained waker must be quiet");
            // ...and the next wake works.
            waker.wake();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 99 && e.readable));
            receiver.drain();
        }
    }

    /// Regression test for a lost-wakeup race: `drain` used to disarm the
    /// coalescing flag *before* its recv loop, so a concurrent `wake`
    /// (flag swap → send) could have its fresh datagram consumed by that
    /// same drain — flag armed, socket empty, every later wake suppressed.
    /// Under the old ordering this test occasionally times out with work
    /// pending; with recv-before-disarm it never can.
    #[test]
    fn wake_drain_race_never_strands_pending_work() {
        use std::sync::atomic::AtomicU64;
        const ITEMS: u64 = 20_000;
        for kind in kinds() {
            let mut poller = Poller::new(kind).unwrap();
            let (waker, receiver) = wake_pair().unwrap();
            poller
                .register(receiver.raw_fd(), 7, Interest::READ)
                .unwrap();

            let pending = Arc::new(AtomicU64::new(0));
            let producer = {
                let pending = Arc::clone(&pending);
                let waker = waker.clone();
                std::thread::spawn(move || {
                    for _ in 0..ITEMS {
                        pending.fetch_add(1, Ordering::Release);
                        waker.wake();
                    }
                })
            };

            let mut events = Vec::new();
            let mut consumed = 0u64;
            while consumed < ITEMS {
                let n = poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .unwrap();
                receiver.drain();
                let grabbed = pending.swap(0, Ordering::AcqRel);
                consumed += grabbed;
                assert!(
                    n > 0 || grabbed > 0 || consumed == ITEMS,
                    "{kind:?}: wait timed out with {} items stranded",
                    ITEMS - consumed
                );
            }
            producer.join().unwrap();
        }
    }
}
