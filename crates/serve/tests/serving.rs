//! Integration tests for the serving subsystem: batcher equivalence,
//! bounded-queue shedding, graceful-shutdown draining, and client/server
//! round-trips over localhost TCP.

use std::sync::Arc;
use std::time::Duration;

use mc_embedder::{ModelProfile, QueryEncoder};
use mc_serve::{
    Client, ClientError, ErrorCode, ServeConfig, ServePipeline, ServeReply, ServeRequest, Server,
    SubmitError,
};
use meancache::{MeanCacheConfig, SemanticCache, ShardedCache};

const SEED: u64 = 7;

fn cache(shards: usize) -> ShardedCache {
    let encoder = QueryEncoder::new(ModelProfile::tiny(), SEED).unwrap();
    ShardedCache::new(
        encoder,
        MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_index(mc_store::IndexKind::flat_sq8())
            .with_shards(shards),
    )
    .unwrap()
}

/// `(query, response, context)` rows to insert before probing.
type InsertRow = (String, String, Vec<String>);
/// `(query, context)` probes, in submission order.
type Probe = (String, Vec<String>);

/// A mixed workload: exact repeats (hits), paraphrase-ish variants, novel
/// queries (misses), and contextual follow-ups in matching and mismatched
/// conversations.
fn workload() -> (Vec<InsertRow>, Vec<Probe>) {
    let inserts: Vec<InsertRow> = (0..40)
        .map(|i| {
            (
                format!("distinct serving subject number {i}"),
                format!("cached response {i}"),
                Vec::new(),
            )
        })
        .chain(std::iter::once((
            "change the color to red".to_string(),
            "Pass color='red'.".to_string(),
            vec!["distinct serving subject number 3".to_string()],
        )))
        .collect();
    let probes: Vec<(String, Vec<String>)> = (0..40)
        .map(|i| (format!("distinct serving subject number {i}"), Vec::new()))
        .chain((0..10).map(|i| (format!("novel uncached probe {i} qzx"), Vec::new())))
        .chain([
            (
                "change the color to red".to_string(),
                vec!["distinct serving subject number 3".to_string()],
            ),
            (
                "change the color to red".to_string(),
                vec!["a wholly different conversation".to_string()],
            ),
        ])
        .collect();
    (inserts, probes)
}

/// The acceptance-criteria equivalence proof: responses produced by the
/// micro-batched pipeline are identical — entry ids, scores, response
/// bytes, contextual flags — to sequential `lookup` calls in submission
/// order on an identical cache.
#[test]
fn batched_responses_equal_sequential_lookups_in_submission_order() {
    let (inserts, probes) = workload();

    // Reference: plain sequential lookups on an identically-built cache.
    let mut reference = cache(4);
    for (q, r, ctx) in &inserts {
        reference.insert(q, r, ctx).unwrap();
    }
    let expected: Vec<_> = probes
        .iter()
        .map(|(q, ctx)| reference.lookup(q, ctx))
        .collect();

    // Pipeline under maximal batching pressure: batch up to the whole
    // workload, generous linger so submissions pile into shared batches.
    let mut under_test = cache(4);
    for (q, r, ctx) in &inserts {
        under_test.insert(q, r, ctx).unwrap();
    }
    let pipeline = ServePipeline::start(
        under_test,
        &ServeConfig {
            max_batch: probes.len(),
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = probes
        .iter()
        .map(|(q, ctx)| {
            pipeline
                .submit(ServeRequest::Lookup {
                    query: q.clone(),
                    context: ctx.clone(),
                })
                .unwrap()
        })
        .collect();
    let got: Vec<_> = tickets
        .iter()
        .map(|t| match t.wait() {
            ServeReply::Outcome(outcome) => outcome,
            other => panic!("expected an outcome, got {other:?}"),
        })
        .collect();
    assert_eq!(expected, got, "batched and sequential decisions diverged");
    // The batcher actually batched (otherwise this test proves nothing).
    let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
        ServeReply::Stats(snapshot) => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(
        stats.avg_batch > 1.5,
        "expected real batches, got avg {:.2}",
        stats.avg_batch
    );
    pipeline.shutdown();
}

/// Bounded admission queue: a slow consumer (artificial batch delay) lets a
/// fast producer hit the cap, and the overflow is shed with `Overloaded` —
/// not buffered, not blocked.
#[test]
fn bounded_queue_sheds_under_a_slow_consumer() {
    let pipeline = ServePipeline::start(
        cache(2),
        &ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 8,
            batch_delay: Duration::from_millis(30),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut accepted = Vec::new();
    let mut shed = 0;
    for i in 0..64 {
        match pipeline.submit(ServeRequest::Lookup {
            query: format!("probe {i}"),
            context: Vec::new(),
        }) {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert!(shed > 0, "a 30ms/op consumer must shed a burst of 64");
    assert!(
        accepted.len() >= 8,
        "the queue capacity itself must be admitted"
    );
    // Everything admitted still resolves (shedding loses only the shed).
    for ticket in &accepted {
        assert!(matches!(ticket.wait(), ServeReply::Outcome(_)));
    }
    assert_eq!(pipeline.metrics().shed_count(), shed as u64);
    pipeline.shutdown();
}

/// Graceful shutdown drains: every ticket admitted before `shutdown` is
/// resolved, and submissions after it fail with `ShutDown`.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let pipeline = Arc::new(
        ServePipeline::start(
            cache(2),
            &ServeConfig {
                max_batch: 4,
                max_wait: Duration::ZERO,
                queue_capacity: 1024,
                batch_delay: Duration::from_millis(2), // keep a backlog alive
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );
    let tickets: Vec<_> = (0..100)
        .map(|i| {
            pipeline
                .submit(ServeRequest::Lookup {
                    query: format!("drain probe {i}"),
                    context: Vec::new(),
                })
                .unwrap()
        })
        .collect();
    // Shut down while the backlog is (almost certainly) non-empty.
    pipeline.shutdown();
    for (i, ticket) in tickets.iter().enumerate() {
        assert!(
            matches!(ticket.wait(), ServeReply::Outcome(_)),
            "ticket {i} must resolve across shutdown"
        );
    }
    assert!(matches!(
        pipeline.submit(ServeRequest::Stats),
        Err(SubmitError::ShutDown)
    ));
}

/// Full client/server round-trip over localhost TCP: inserts, hits, misses,
/// contextual decisions, control plane, pipelining, graceful shutdown.
#[test]
fn client_server_round_trip_over_localhost() {
    let (inserts, probes) = workload();
    let mut reference = cache(4);
    for (q, r, ctx) in &inserts {
        reference.insert(q, r, ctx).unwrap();
    }
    let expected: Vec<_> = probes
        .iter()
        .map(|(q, ctx)| reference.lookup(q, ctx))
        .collect();

    let handle = Server::start(cache(4), &ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    for (q, r, ctx) in &inserts {
        client.insert(q, r, ctx).unwrap();
    }
    // Sequential lookups match the local reference decision-for-decision.
    for ((q, ctx), want) in probes.iter().zip(&expected) {
        let got = client.lookup(q, ctx).unwrap();
        assert_eq!(&got, want, "probe {q:?} diverged over TCP");
    }
    // Pipelined lookups return the same outcomes in submission order.
    let got = client.lookup_pipelined(&probes).unwrap();
    assert_eq!(got, expected, "pipelined outcomes diverged");

    // Control plane: stats reflect the traffic; threshold + flush apply.
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, inserts.len());
    assert_eq!(stats.inserts, inserts.len() as u64);
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.queue_capacity, ServeConfig::default().queue_capacity);
    assert_eq!(
        stats.served_hits + stats.served_misses,
        2 * probes.len() as u64
    );
    client.set_threshold(0.95).unwrap();
    // A bad request comes back as a classified, non-retryable failure
    // frame — and the connection survives it (the flush below reuses it).
    assert!(matches!(
        client.set_threshold(2.0),
        Err(ClientError::Rejected {
            code: ErrorCode::BadRequest,
            retryable: false,
            ..
        })
    ));
    let flushed = client.flush().unwrap();
    assert_eq!(flushed, inserts.len() as u64);
    let outcome = client.lookup(&inserts[0].0, &[]).unwrap();
    assert!(outcome.is_miss(), "flushed cache must miss");
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, 0);
    assert!((stats.threshold - 0.95).abs() < 1e-6);

    // Graceful shutdown via the wire; the server handle drains and joins.
    client.shutdown_server().unwrap();
    handle.wait();
}

/// A second connection beyond `max_connections` is refused with `Busy`
/// instead of degrading the admitted one.
#[test]
fn connection_budget_refuses_with_busy() {
    let handle = Server::start(
        cache(2),
        &ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();
    let mut first = Client::connect(addr).unwrap();
    first.ping().unwrap();
    // The second connection is told Busy on its first call.
    let mut second = Client::connect(addr).unwrap();
    match second.ping() {
        Err(ClientError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The first connection is unaffected.
    first.ping().unwrap();
    drop(second);
    handle.shutdown();
}

/// Server-side shutdown resolves all in-flight wire requests before the
/// process lets go (drain guarantee end to end).
#[test]
fn server_shutdown_answers_in_flight_wire_requests() {
    let handle = Server::start(
        cache(2),
        &ServeConfig {
            max_batch: 2,
            batch_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .insert("warm entry for shutdown", "resp", &[])
        .unwrap();
    let probes: Vec<(String, Vec<String>)> = (0..50)
        .map(|i| (format!("in flight probe {i}"), Vec::new()))
        .collect();
    // Issue a pipelined window, then shut the server down from the handle
    // while responses are still streaming back.
    let issuer = std::thread::spawn(move || client.lookup_pipelined(&probes).map(|o| o.len()));
    std::thread::sleep(Duration::from_millis(5));
    handle.shutdown();
    // Either every response arrived (fully drained before teardown) — the
    // common case — or the connection died *after* the drain, in which case
    // the client sees a transport error, never a wrong answer.
    match issuer.join().unwrap() {
        Ok(n) => assert_eq!(n, 50),
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected client error: {other}"),
    }
}

/// The `SetRouting` control command reshards the served cache in place,
/// totally ordered with the lookups around it: everything cached before the
/// switch is still served after it, and the stats plane reports the new
/// mode.
#[test]
fn set_routing_reshards_in_place_without_losing_entries() {
    use meancache::RoutingMode;
    let pipeline = ServePipeline::start(cache(4), &ServeConfig::default()).unwrap();
    for i in 0..20 {
        let reply = pipeline
            .submit(ServeRequest::Insert {
                query: format!("routing switch subject {i}"),
                response: format!("resp {i}"),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        assert!(matches!(reply, ServeReply::Inserted(_)));
    }
    assert_eq!(
        pipeline
            .submit(ServeRequest::SetRouting(RoutingMode::ScatterGather))
            .unwrap()
            .wait(),
        ServeReply::Ack
    );
    for i in 0..20 {
        let reply = pipeline
            .submit(ServeRequest::Lookup {
                query: format!("routing switch subject {i}"),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
        match reply {
            ServeReply::Outcome(outcome) => {
                assert!(outcome.is_hit(), "subject {i} must survive the reshard");
                assert_eq!(outcome.hit().unwrap().response, format!("resp {i}"));
            }
            other => panic!("expected an outcome, got {other:?}"),
        }
    }
    let stats = match pipeline.submit(ServeRequest::Stats).unwrap().wait() {
        ServeReply::Stats(snapshot) => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    assert_eq!(stats.routing, "scatter-gather");
    assert_eq!(stats.entries, 20);
    // Switching to the mode already in effect is an Ack without a reshard.
    assert_eq!(
        pipeline
            .submit(ServeRequest::SetRouting(RoutingMode::ScatterGather))
            .unwrap()
            .wait(),
        ServeReply::Ack
    );
    pipeline.shutdown();
}

/// The `Save` control command persists to the configured path (and fails
/// loudly without one); a pipeline built from the restored cache serves the
/// same contents.
#[test]
fn save_command_persists_and_restores_through_the_pipeline() {
    let dir = std::env::temp_dir().join(format!(
        "mc_serve_save_test_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.log");

    // Without a persist path, Save fails loudly.
    let unpersisted = ServePipeline::start(cache(2), &ServeConfig::default()).unwrap();
    assert!(matches!(
        unpersisted.submit(ServeRequest::Save).unwrap().wait(),
        ServeReply::Failed { .. }
    ));
    unpersisted.shutdown();

    let config = ServeConfig {
        persist_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let pipeline = ServePipeline::start(cache(3), &config).unwrap();
    for i in 0..12 {
        pipeline
            .submit(ServeRequest::Insert {
                query: format!("persisted serving subject {i}"),
                response: format!("resp {i}"),
                context: Vec::new(),
            })
            .unwrap()
            .wait();
    }
    assert_eq!(
        pipeline.submit(ServeRequest::Save).unwrap().wait(),
        ServeReply::Saved(12)
    );
    pipeline.shutdown();

    // A fresh pipeline on the restored cache answers from the save.
    let encoder = QueryEncoder::new(ModelProfile::tiny(), SEED).unwrap();
    let restored = meancache::persist::load_sharded_cache_with_config(encoder, &path).unwrap();
    assert_eq!(restored.len(), 12);
    let pipeline = ServePipeline::start(restored, &ServeConfig::default()).unwrap();
    let reply = pipeline
        .submit(ServeRequest::Lookup {
            query: "persisted serving subject 7".into(),
            context: Vec::new(),
        })
        .unwrap()
        .wait();
    match reply {
        ServeReply::Outcome(outcome) => {
            assert_eq!(outcome.hit().unwrap().response, "resp 7");
        }
        other => panic!("expected an outcome, got {other:?}"),
    }
    pipeline.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful shutdown with a persist path saves automatically: the whole
/// serve lifecycle (insert over TCP → shutdown → restart) keeps contents.
#[test]
fn shutdown_saves_automatically_when_persistence_is_configured() {
    let dir = std::env::temp_dir().join(format!(
        "mc_serve_autosave_test_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.log");
    let config = ServeConfig {
        persist_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert("autosaved entry", "resp", &[]).unwrap();
    drop(client);
    handle.shutdown();

    let encoder = QueryEncoder::new(ModelProfile::tiny(), SEED).unwrap();
    let restored = meancache::persist::load_sharded_cache_with_config(encoder, &path).unwrap();
    assert_eq!(restored.len(), 1);
    assert!(restored.probe("autosaved entry", &[]).is_hit());
    std::fs::remove_dir_all(&dir).ok();
}

/// Both readiness backends serve an identical round trip: what CI smokes
/// with `--poller epoll` and `--poller poll` is also pinned here.
#[test]
fn poll_fallback_backend_serves_round_trips() {
    for kind in [mc_serve::PollerKind::Epoll, mc_serve::PollerKind::Poll] {
        let handle =
            Server::start_with_poller(cache(2), &ServeConfig::default(), "127.0.0.1:0", kind)
                .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        client
            .insert("poller backend subject", "resp", &[])
            .unwrap();
        let outcome = client.lookup("poller backend subject", &[]).unwrap();
        assert!(outcome.is_hit(), "{kind:?}: lookup must hit");
        assert!(client.lookup("never inserted qzx", &[]).unwrap().is_miss());
        drop(client);
        handle.shutdown();
    }
}

/// The `/metrics`-style text dump travels the wire and reflects traffic.
#[test]
fn metrics_text_round_trips_over_the_wire() {
    let handle = Server::start(cache(2), &ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert("metrics subject", "resp", &[]).unwrap();
    assert!(client.lookup("metrics subject", &[]).unwrap().is_hit());
    let text = client.metrics_text().unwrap();
    assert!(text.contains("serve_entries 1"), "metrics text:\n{text}");
    assert!(text.contains("serve_served_hits_total 1"));
    assert!(text.contains("serve_latency_us_count"));
    assert!(text.contains("serve_latency_us{quantile=\"0.99\"}"));
    // The default config enables the embedding memo; the insert + lookup
    // encoded the same text twice, so the second encode was a memo hit.
    assert!(text.contains("serve_memo_hits_total 1"));
    drop(client);
    handle.shutdown();
}

/// The flight-recorder dump travels the wire as JSON: with sampling at 1
/// every request is traced, each trace deserializes, and its stage
/// timestamps are monotone.
#[test]
fn trace_dump_round_trips_over_the_wire() {
    let config = ServeConfig {
        trace_sample: 1,
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.insert("traced wire subject", "resp", &[]).unwrap();
    assert!(client.lookup("traced wire subject", &[]).unwrap().is_hit());
    assert!(client.lookup("never inserted qzx", &[]).unwrap().is_miss());

    let json = client.trace_dump().unwrap();
    let dump: mc_metrics::trace::TraceDump = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("dump must be valid JSON ({e}):\n{json}"));
    assert_eq!(dump.sample_every, 1);
    assert!(
        dump.traces.len() >= 3,
        "all three requests must be recorded, got {}",
        dump.traces.len()
    );
    for t in &dump.traces {
        assert!(t.is_monotone(), "stages must be monotone: {t:?}");
        assert!(t.total_us > 0, "a served request takes nonzero time");
    }
    // Lookups carry the memo verdict; the repeat encode of the inserted
    // text must have been a memo hit.
    assert!(
        dump.traces.iter().any(|t| t.memo_hit == Some(true)),
        "repeat lookup must be a memo hit: {json}"
    );
    drop(client);
    handle.shutdown();
}

/// A frame split across many small writes (length prefix included) is
/// reassembled by the event loop exactly as if it arrived whole.
#[test]
fn server_reassembles_requests_split_across_tcp_writes() {
    use std::io::Write as _;
    let handle = Server::start(cache(2), &ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .insert("fragmented frame subject", "resp", &[])
        .unwrap();
    drop(client);

    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let payload = mc_serve::Request::Lookup {
        query: "fragmented frame subject".into(),
        context: Vec::new(),
    }
    .encode();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    // Dribble the frame one byte at a time, with pauses, so the server's
    // reads genuinely observe partial prefixes and partial payloads.
    for chunk in wire.chunks(1) {
        raw.write_all(chunk).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    let mut reader = std::io::BufReader::new(raw);
    let response = mc_serve::protocol::read_frame(&mut reader)
        .unwrap()
        .expect("server must answer the reassembled frame");
    let response = mc_serve::Response::decode(&response).unwrap();
    assert!(
        response.into_outcome().expect("lookup outcome").is_hit(),
        "reassembled lookup must hit"
    );
    handle.shutdown();
}

/// The event loop's work scales with *active* sockets, not open ones: with
/// 1k idle connections parked, a burst of round trips on one connection
/// costs O(burst) readiness events — idle connections contribute nothing.
#[test]
fn idle_connections_cost_no_events_while_one_connection_works() {
    let config = ServeConfig {
        max_connections: 1100,
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut active = Client::connect(handle.addr()).unwrap();
    active.ping().unwrap();

    // Park 1000 idle connections. Each costs a handful of events to accept
    // and then must cost nothing while idle.
    let idle: Vec<Client> = (0..1000)
        .map(|_| Client::connect(handle.addr()).unwrap())
        .collect();
    // Let the accept backlog fully drain, then settle.
    let mut pinger = Client::connect(handle.addr()).unwrap();
    pinger.ping().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let before = handle.io_event_count();
    for _ in 0..100 {
        active.ping().unwrap();
    }
    let events = handle.io_event_count() - before;
    // 100 blocking round trips ≈ 100 readable events on the active socket
    // plus a bounded number of waker/writable events. With 1000 idle
    // connections in the table, an O(open-connections) loop would instead
    // show tens of thousands of events here.
    assert!(
        events <= 1000,
        "100 round trips cost {events} events with 1k idle connections parked \
         — the loop is doing work proportional to open sockets, not active ones"
    );
    // And the idle sockets are all still live connections, not casualties.
    drop(idle);
    drop(active);
    drop(pinger);
    handle.shutdown();
}
