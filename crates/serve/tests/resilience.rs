//! Fault-tolerance integration tests: request deadlines, panic isolation,
//! Busy-storm client retries, idle-connection reaping, short-write
//! tolerance on the socket, and serve-WAL replay after a simulated crash.
//!
//! These run against real servers on localhost TCP; the fault-injection
//! points come from `mc_store::failpoints` (active here via this crate's
//! dev-dependency feature, inert in release builds).

use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mc_embedder::{ModelProfile, QueryEncoder};
use mc_serve::wal::wal_path;
use mc_serve::{Client, ClientConfig, ClientError, ErrorCode, ServeConfig, ServeWal, Server};
use mc_store::failpoints::{self, FailAction};
use mc_store::FsyncPolicy;
use meancache::{MeanCacheConfig, ShardedCache};

const SEED: u64 = 7;

fn cache(shards: usize) -> ShardedCache {
    let encoder = QueryEncoder::new(ModelProfile::tiny(), SEED).unwrap();
    ShardedCache::new(
        encoder,
        MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_shards(shards),
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "mc_serve_resilience_{tag}_{}_{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A lookup that out-waits its deadline in the batch queue must come back
/// as a retryable `DeadlineExceeded` failure frame — promptly (within 2×
/// the deadline), and without killing the connection.
#[test]
fn expired_deadline_fails_retryably_within_twice_the_deadline() {
    let deadline = Duration::from_millis(150);
    let config = ServeConfig {
        request_deadline: deadline,
        // The linger keeps a lone lookup queued past its deadline but
        // still well inside the 2× reply budget.
        max_wait: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let started = Instant::now();
    let result = client.lookup("a lookup doomed to out-wait its deadline", &[]);
    let elapsed = started.elapsed();
    match result {
        Err(ClientError::Rejected {
            code: ErrorCode::DeadlineExceeded,
            retryable: true,
            ..
        }) => {}
        other => panic!("expected retryable DeadlineExceeded, got {other:?}"),
    }
    assert!(
        elapsed < deadline * 2,
        "failure frame took {elapsed:?}, over the 2x deadline budget"
    );
    // The failure frame is per-request: the same connection keeps working.
    client
        .ping()
        .expect("connection must survive the failure frame");
    let stats = client.stats().unwrap();
    assert!(stats.deadline_expired >= 1, "metric must count the expiry");
    client.shutdown_server().unwrap();
    handle.wait();
}

/// A panic inside per-batch cache work resolves the victim's ticket with a
/// retryable `Panicked` frame, is counted, and leaves the batcher thread
/// alive for subsequent traffic.
#[test]
fn batch_work_panic_is_fenced_to_an_error_frame() {
    let handle = Server::start(cache(2), &ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let fuse = "panic fuse probe zzqx";
    failpoints::set_scoped(
        "serve.batch.work",
        fuse,
        FailAction::ErrorOnNth {
            n: 1,
            kind: std::io::ErrorKind::Other,
        },
    );
    let result = client.lookup(fuse, &[]);
    failpoints::clear("serve.batch.work");
    match result {
        Err(ClientError::Rejected {
            code: ErrorCode::Panicked,
            retryable: true,
            ..
        }) => {}
        other => panic!("expected retryable Panicked frame, got {other:?}"),
    }
    // The batcher survived: the very same connection serves the retry.
    let outcome = client.lookup(fuse, &[]).expect("retry after the panic");
    assert!(outcome.is_miss(), "nothing was ever inserted");
    let stats = client.stats().unwrap();
    assert_eq!(stats.panics_caught, 1, "metric must count the caught panic");
    client.shutdown_server().unwrap();
    handle.wait();
}

/// Busy storm: a one-slot queue hammered by a pipelining flooder sheds
/// constantly, yet a retrying client lands 100% of its calls.
#[test]
fn retrying_client_survives_a_busy_storm() {
    let config = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        max_wait: Duration::from_micros(100),
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let flood_stop = stop.clone();
    let flooder = std::thread::spawn(move || {
        let probes: Vec<(String, Vec<String>)> = (0..32)
            .map(|i| (format!("storm flood probe {i}"), Vec::new()))
            .collect();
        let mut busy_seen = 0u64;
        let mut client = Client::connect(addr).expect("flooder connect");
        while !flood_stop.load(Ordering::Relaxed) {
            match client.lookup_pipelined(&probes) {
                Ok(_) => {}
                Err(ClientError::Overloaded) => {
                    busy_seen += 1;
                    // The aborted window leaves unread frames behind;
                    // resync on a fresh connection.
                    if client.reconnect().is_err() {
                        break;
                    }
                }
                Err(_) => {
                    if client.reconnect().is_err() {
                        break;
                    }
                }
            }
        }
        busy_seen
    });

    let mut client = Client::connect_with_config(addr, ClientConfig::resilient()).unwrap();
    for i in 0..10 {
        client
            .insert(
                &format!("storm durable entry {i}"),
                &format!("kept {i}"),
                &[],
            )
            .unwrap_or_else(|e| panic!("insert {i} must eventually land: {e}"));
    }
    for i in 0..10 {
        let outcome = client
            .lookup(&format!("storm durable entry {i}"), &[])
            .unwrap_or_else(|e| panic!("lookup {i} must eventually land: {e}"));
        assert!(outcome.is_hit(), "lookup {i} must hit");
    }
    stop.store(true, Ordering::Relaxed);
    let busy_seen = flooder.join().expect("flooder panicked");
    assert!(busy_seen > 0, "the storm must actually have shed windows");
    client.shutdown_server().unwrap();
    handle.wait();
}

/// Connections silent for longer than the idle timeout are reaped by the
/// event loop (observed as EOF on the socket) and counted.
#[test]
fn idle_connections_are_reaped_after_the_timeout() {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(1), &config, "127.0.0.1:0").unwrap();

    let mut idle = TcpStream::connect(handle.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    let read = idle.read(&mut buf).expect("reaper must close, not hang");
    assert_eq!(read, 0, "expected EOF from the idle reaper");

    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.idle_reaped >= 1, "metric must count the reaped conn");
    client.shutdown_server().unwrap();
    handle.wait();
}

/// Injected short writes on the server's socket path: the flush loop must
/// keep writing until every frame is fully delivered.
#[test]
fn short_socket_writes_still_deliver_complete_frames() {
    let handle = Server::start(cache(2), &ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    // Scope the failpoint to this server's address so concurrent tests in
    // this binary are unaffected.
    failpoints::set_scoped(
        "serve.conn.write",
        &addr.to_string(),
        FailAction::ShortWrite { max: 7 },
    );
    let mut client = Client::connect(addr).unwrap();
    for i in 0..8 {
        client
            .insert(
                &format!("short write entry {i}"),
                &format!("a response long enough to span several dribbled writes {i}"),
                &[],
            )
            .unwrap();
    }
    let probes: Vec<(String, Vec<String>)> = (0..8)
        .map(|i| (format!("short write entry {i}"), Vec::new()))
        .collect();
    let outcomes = client.lookup_pipelined(&probes).unwrap();
    assert!(outcomes.iter().all(|o| o.is_hit()), "all frames intact");
    failpoints::clear("serve.conn.write");
    client.shutdown_server().unwrap();
    handle.wait();
}

/// A WAL left behind by a crash (no graceful save, no snapshot) is
/// replayed on the next start: acknowledged inserts come back, and the
/// replay is visible in the stats plane.
#[test]
fn crashed_wal_is_replayed_on_restart() {
    let dir = temp_dir("wal_replay");
    let persist = dir.join("cache.log");

    // Simulate the aftermath of a crash: WAL records exist, but no
    // snapshot was ever written (the process died before any Save).
    {
        let (mut wal, ops, _) = ServeWal::open(wal_path(&persist), FsyncPolicy::Always).unwrap();
        assert!(ops.is_empty());
        wal.append_insert("crashed insert one", "survivor one", &[])
            .unwrap();
        wal.append_insert("crashed insert two", "survivor two", &[])
            .unwrap();
    }

    let config = ServeConfig {
        persist_path: Some(persist),
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for (query, response) in [
        ("crashed insert one", "survivor one"),
        ("crashed insert two", "survivor two"),
    ] {
        let outcome = client.lookup(query, &[]).unwrap();
        let hit = outcome.hit().expect("replayed insert must hit");
        assert_eq!(hit.response, response);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.wal_replayed, 2, "both WAL ops counted as replayed");
    client.shutdown_server().unwrap();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}
