//! Kill-9 crash-recovery integration test: SIGKILL the real `serve`
//! binary mid-write-load, restart it against the same `--persist` path,
//! and assert that every *acknowledged* insert survived.
//!
//! The durability contract under test: with `--fsync always`, an insert
//! is acknowledged only after its WAL record is written **and** fsynced,
//! so a SIGKILL at any moment may lose un-acked tail writes but never an
//! acked one — and recovery must never load a corrupted entry.
//!
//! Iteration count comes from `CRASH_ITERS` (default 3 locally; CI runs
//! 20). Each iteration prints a recovery report line that CI captures as
//! an artifact.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, SystemTime};

use mc_serve::Client;

/// Scratch directory unique to this process + call site (no tempfile
/// crate in the workspace).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "mc_serve_crash_{tag}_{}_{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("crash-test scratch dir");
    dir
}

/// Spawns the `serve` binary on an ephemeral port and parses the bound
/// address off its startup banner. `extra_args` appends to the base
/// durability flags (the tenancy test adds `--tenants`/`--default-tenant`).
fn spawn_serve(persist: &Path, extra_args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--persist",
            persist.to_str().expect("utf-8 persist path"),
            "--fsync",
            "always",
            "--batch-wait-us",
            "100",
        ])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve binary");
    let stdout = child.stdout.take().expect("serve stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before printing its banner")
            .expect("read serve stdout");
        // "mc-serve listening on 127.0.0.1:NNNNN (...)"
        if let Some(rest) = line.strip_prefix("mc-serve listening on ") {
            let addr = rest.split_whitespace().next().expect("addr token");
            break addr.parse().expect("parse bound address");
        }
    };
    // Keep draining stdout in the background so the child never blocks on
    // a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn query_for(i: usize) -> String {
    format!("crash recovery topic number {i} with some distinct words")
}

fn response_for(i: usize) -> String {
    format!("durable response {i}")
}

/// One crash cycle: load inserts, SIGKILL mid-stream, restart, verify.
/// Returns (acked, replayed, truncated) for the recovery report.
fn crash_cycle(iter: u32, kill_after_ms: u64) -> (usize, u64, u64) {
    let dir = temp_dir(&format!("iter{iter}"));
    let persist = dir.join("cache.log");

    let (mut child, addr) = spawn_serve(&persist, &[]);
    let mut client = Client::connect(addr).expect("connect to serve");

    // Killer fires mid-load; varying the delay per iteration moves the
    // kill point across the insert stream.
    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(kill_after_ms));
            // SIGKILL via the child handle is racy to share; signal by pid.
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        })
    };

    // Insert until the connection dies under us. Every Ok(_) is an
    // acknowledged write the restart must preserve.
    let mut acked = 0usize;
    for i in 0..5_000 {
        match client.insert(&query_for(i), &response_for(i), &[]) {
            Ok(_) => acked = i + 1,
            Err(_) => break,
        }
    }
    killer.join().expect("killer thread");
    let status = child.wait().expect("reap killed serve");
    assert!(
        !status.success(),
        "serve must have died from SIGKILL, not exited cleanly"
    );

    // Restart against the same persist path: WAL replay must restore
    // every acknowledged insert, with the original response text.
    let (mut child, addr) = spawn_serve(&persist, &[]);
    let mut client = Client::connect(addr).expect("connect after restart");
    let stats = client.stats().expect("stats after restart");
    assert!(
        stats.wal_replayed >= acked as u64,
        "restart replayed {} WAL ops but {} inserts were acknowledged",
        stats.wal_replayed,
        acked
    );
    let probes: Vec<(String, Vec<String>)> =
        (0..acked).map(|i| (query_for(i), Vec::new())).collect();
    if !probes.is_empty() {
        let outcomes = client
            .lookup_pipelined(&probes)
            .expect("post-recovery lookups");
        for (i, outcome) in outcomes.iter().enumerate() {
            let hit = outcome
                .hit()
                .unwrap_or_else(|| panic!("acked insert {i} lost after crash recovery"));
            assert_eq!(
                hit.response,
                response_for(i),
                "acked insert {i} came back corrupted"
            );
        }
    }
    let (replayed, truncated) = (stats.wal_replayed, stats.recovered_bytes_truncated);
    client.shutdown_server().expect("graceful shutdown");
    let status = child.wait().expect("reap restarted serve");
    assert!(status.success(), "restarted serve must shut down cleanly");
    std::fs::remove_dir_all(&dir).ok();
    (acked, replayed, truncated)
}

#[test]
fn sigkill_mid_load_loses_no_acknowledged_insert() {
    let iters: u32 = std::env::var("CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    for iter in 0..iters {
        // Sweep the kill point from "almost immediately" to "well into
        // the load" across iterations.
        let kill_after_ms = 30 + 40 * u64::from(iter % 5);
        let (acked, replayed, truncated) = crash_cycle(iter, kill_after_ms);
        println!(
            "recovery-report iter={iter} kill_after_ms={kill_after_ms} \
             acked={acked} wal_replayed={replayed} bytes_truncated={truncated}"
        );
    }
}

// ---- two concurrent tenants -------------------------------------------------

const TENANT_FLAGS: &[&str] = &[
    "--tenants",
    "acme:sekret:0,beta:hunter2:0",
    "--default-tenant",
    "none",
];

fn tenant_response_for(tenant: &str, i: usize) -> String {
    format!("durable response {tenant} {i}")
}

/// One two-tenant crash cycle: both tenants insert concurrently over their
/// own authenticated connections — deliberately using the *same* query
/// texts, so after recovery the only thing separating them is the WAL's
/// tenant tag. SIGKILL mid-load, restart, then verify per tenant:
///
/// 1. every acknowledged insert is present verbatim under its own tenant
///    (exact response bytes), and
/// 2. no lookup ever resolves with the *other* tenant's frame — including
///    queries the other tenant acked but this one never inserted.
///
/// Returns per-tenant acked counts for the recovery report.
fn tenant_crash_cycle(iter: u32, kill_after_ms: u64) -> [usize; 2] {
    const TENANTS: [(&str, &str); 2] = [("acme", "sekret"), ("beta", "hunter2")];
    let dir = temp_dir(&format!("tenants_iter{iter}"));
    let persist = dir.join("cache.log");

    let (mut child, addr) = spawn_serve(&persist, TENANT_FLAGS);
    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(kill_after_ms));
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        })
    };

    // Two insert loops race the killer on separate connections.
    let writers: Vec<_> = TENANTS
        .iter()
        .map(|&(name, token)| {
            std::thread::spawn(move || {
                let mut acked = 0usize;
                let Ok(mut client) = Client::connect(addr) else {
                    return acked; // killed before the connect completed
                };
                if client.hello(name, token).is_err() {
                    return acked;
                }
                for i in 0..5_000 {
                    match client.insert(&query_for(i), &tenant_response_for(name, i), &[]) {
                        Ok(_) => acked = i + 1,
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();
    let acked: Vec<usize> = writers
        .into_iter()
        .map(|w| w.join().expect("writer thread"))
        .collect();
    killer.join().expect("killer thread");
    let status = child.wait().expect("reap killed serve");
    assert!(
        !status.success(),
        "serve must have died from SIGKILL, not exited cleanly"
    );

    // Restart and verify each tenant's slice through its own handshake.
    let (mut child, addr) = spawn_serve(&persist, TENANT_FLAGS);
    let max_acked = acked.iter().copied().max().unwrap_or(0);
    for (t, &(name, token)) in TENANTS.iter().enumerate() {
        let mut client = Client::connect(addr).expect("connect after restart");
        client.hello(name, token).expect("re-authenticate");
        let probes: Vec<(String, Vec<String>)> =
            (0..max_acked).map(|i| (query_for(i), Vec::new())).collect();
        if probes.is_empty() {
            continue;
        }
        let outcomes = client
            .lookup_pipelined(&probes)
            .expect("post-recovery lookups");
        let own = format!("durable response {name} ");
        for (i, outcome) in outcomes.iter().enumerate() {
            if i < acked[t] {
                let hit = outcome.hit().unwrap_or_else(|| {
                    panic!("{name}: acked insert {i} lost after crash recovery")
                });
                assert_eq!(
                    hit.response,
                    tenant_response_for(name, i),
                    "{name}: acked insert {i} came back corrupted"
                );
            } else if let Some(hit) = outcome.hit() {
                // This tenant never inserted query i; the other may have.
                // A semantic near-hit on the tenant's *own* entries is
                // legal — serving the neighbour's frame is not.
                assert!(
                    hit.response.starts_with(&own),
                    "{name}: probe {i} resolved with a foreign frame {:?}",
                    hit.response
                );
            }
        }
    }

    let mut client = Client::connect(addr).expect("control connect");
    let stats = client.stats().expect("stats after restart");
    for (t, &(name, _)) in TENANTS.iter().enumerate() {
        let entries = stats
            .tenants
            .iter()
            .find(|row| row.name == name)
            .map_or(0, |row| row.entries);
        assert!(
            entries >= acked[t],
            "{name}: {entries} resident entries but {} acked inserts",
            acked[t]
        );
    }
    client.shutdown_server().expect("graceful shutdown");
    let status = child.wait().expect("reap restarted serve");
    assert!(status.success(), "restarted serve must shut down cleanly");
    std::fs::remove_dir_all(&dir).ok();
    [acked[0], acked[1]]
}

#[test]
fn sigkill_with_two_tenants_keeps_acked_inserts_isolated_per_tenant() {
    // Fewer iterations than the single-tenant sweep: each cycle runs two
    // full write streams, and the tenant-tagging property does not depend
    // on where the kill lands as finely as the fsync contract does.
    let iters: u32 = std::env::var("CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(2, |n: u32| n.div_ceil(4).max(2));
    for iter in 0..iters {
        let kill_after_ms = 40 + 60 * u64::from(iter % 3);
        let [acme, beta] = tenant_crash_cycle(iter, kill_after_ms);
        println!(
            "recovery-report tenants iter={iter} kill_after_ms={kill_after_ms} \
             acked_acme={acme} acked_beta={beta}"
        );
    }
}
