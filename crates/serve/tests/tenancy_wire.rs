//! Wire-protocol hostility and tenancy tests: the `Hello` handshake and
//! per-tenant data plane under malformed, unauthorized, and boundary-length
//! input. Every hostile frame must map to the documented `ErrorCode` and
//! the documented connection state — request-level failures keep the
//! connection serving, framing-level failures answer once and hang up, and
//! nothing panics the event loop (every test ends with the server still
//! answering on a fresh connection).

use std::io::Write as _;
use std::time::Duration;

use mc_embedder::{ModelProfile, QueryEncoder};
use mc_serve::{
    protocol::read_frame, Client, ClientConfig, ClientError, ErrorCode, Request, Response,
    ServeConfig, ServeTenant, Server, MAX_TENANT_LEN,
};
use meancache::{MeanCacheConfig, ShardedCache};

const SEED: u64 = 7;

fn cache(shards: usize) -> ShardedCache {
    let encoder = QueryEncoder::new(ModelProfile::tiny(), SEED).unwrap();
    ShardedCache::new(
        encoder,
        MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_index(mc_store::IndexKind::flat_sq8())
            .with_shards(shards),
    )
    .unwrap()
}

fn tenant(name: &str, token: &str) -> ServeTenant {
    ServeTenant {
        name: name.to_string(),
        token: token.to_string(),
        quota: 0,
    }
}

/// A two-tenant server config with no legacy default tenant: every data
/// opcode requires a successful `Hello` first.
fn strict_config() -> ServeConfig {
    ServeConfig {
        tenants: vec![tenant("acme", "sekret"), tenant("beta", "hunter2")],
        default_tenant: None,
        ..ServeConfig::default()
    }
}

/// Sends one raw `len ∥ payload` frame.
fn send_frame(stream: &mut std::net::TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

/// A wrong token is a non-retryable `Unauthenticated` failure, the
/// connection survives it, and the same connection authenticates with the
/// right credentials afterwards.
#[test]
fn wrong_token_is_refused_but_the_connection_survives() {
    let handle = Server::start(cache(2), &strict_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.hello("acme", "wrong-token") {
        Err(ClientError::Rejected {
            code: ErrorCode::Unauthenticated,
            retryable: false,
            ..
        }) => {}
        other => panic!("expected non-retryable Unauthenticated, got {other:?}"),
    }
    // Unknown tenants answer identically to bad tokens (constant-time
    // compare against a dummy secret) — same code, same connection state.
    match client.hello("nobody", "sekret") {
        Err(ClientError::Rejected {
            code: ErrorCode::Unauthenticated,
            retryable: false,
            ..
        }) => {}
        other => panic!("expected non-retryable Unauthenticated, got {other:?}"),
    }
    client.hello("acme", "sekret").unwrap();
    client.insert("post-auth entry", "resp", &[]).unwrap();
    assert!(client.lookup("post-auth entry", &[]).unwrap().is_hit());
    drop(client);
    handle.shutdown();
}

/// On a server without a default tenant, every data opcode before `Hello`
/// is a *retryable* `Unauthenticated` failure (the fix — authenticating —
/// makes a retry succeed), while tenant-less control opcodes still pass.
#[test]
fn data_before_auth_is_refused_retryably_without_a_default_tenant() {
    let handle = Server::start(cache(2), &strict_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    let refused = |err: ClientError| match err {
        ClientError::Rejected {
            code: ErrorCode::Unauthenticated,
            retryable: true,
            ..
        } => {}
        other => panic!("expected retryable Unauthenticated, got {other:?}"),
    };
    refused(client.lookup("pre-auth probe", &[]).unwrap_err());
    refused(client.insert("pre-auth entry", "resp", &[]).unwrap_err());
    refused(client.flush().unwrap_err());
    refused(client.invalidate("acme", 0).unwrap_err());

    // Cross-tenant control needs no namespace and is served pre-auth.
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, 0);

    // The promised fix works: authenticate, then the same data ops pass.
    client.hello("acme", "sekret").unwrap();
    client.insert("pre-auth entry", "resp", &[]).unwrap();
    assert!(client.lookup("pre-auth entry", &[]).unwrap().is_hit());
    drop(client);
    handle.shutdown();
}

/// Tenant names exactly at [`MAX_TENANT_LEN`] authenticate; one byte over
/// (or empty) is a `BadRequest` on a connection that stays open.
#[test]
fn tenant_name_length_cap_is_exact() {
    let cap_name = "t".repeat(MAX_TENANT_LEN);
    let config = ServeConfig {
        tenants: vec![tenant(&cap_name, "cap-token")],
        default_tenant: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let bad_request = |err: ClientError| match err {
        ClientError::Rejected {
            code: ErrorCode::BadRequest,
            retryable: false,
            ..
        } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    };
    bad_request(
        client
            .hello(&"t".repeat(MAX_TENANT_LEN + 1), "cap-token")
            .unwrap_err(),
    );
    bad_request(client.hello("", "cap-token").unwrap_err());

    // The boundary itself is legal, on the very same connection.
    client.hello(&cap_name, "cap-token").unwrap();
    // An over-long `Invalidate` target is length-checked before the
    // ownership check (auth resolution runs first, so this needs the
    // handshake above).
    bad_request(
        client
            .invalidate(&"t".repeat(MAX_TENANT_LEN + 1), 0)
            .unwrap_err(),
    );
    client.insert("cap tenant entry", "resp", &[]).unwrap();
    assert!(client.lookup("cap tenant entry", &[]).unwrap().is_hit());
    drop(client);
    handle.shutdown();
}

/// A truncated `Hello` payload (well-formed frame, short payload) fails
/// only that request with `BadRequest`: the stream stays in sync and the
/// next frame on the same socket is served normally.
#[test]
fn truncated_hello_fails_the_request_not_the_connection() {
    let handle = Server::start(cache(2), &strict_config(), "127.0.0.1:0").unwrap();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();

    let full = Request::Hello {
        tenant: "acme".into(),
        token: "sekret".into(),
    }
    .encode();
    // Cut the payload mid-string: the frame is valid, the payload is not.
    send_frame(&mut raw, &full[..full.len() - 3]);

    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("an answer");
    match Response::decode(&payload).unwrap() {
        Response::Fail {
            code: ErrorCode::BadRequest,
            retryable: false,
            ..
        } => {}
        other => panic!("expected BadRequest Fail, got {other:?}"),
    }

    // Same socket, next frame: still served.
    send_frame(&mut raw, &Request::Ping.encode());
    let payload = read_frame(&mut reader).unwrap().expect("a pong");
    assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
    drop(raw);
    handle.shutdown();
}

/// A hostile length prefix beyond `MAX_FRAME_LEN` is answered with one
/// legacy `Error` frame and then the server hangs up — before allocating
/// or reading any payload.
#[test]
fn oversized_frame_is_answered_then_the_server_hangs_up() {
    let handle = Server::start(cache(2), &strict_config(), "127.0.0.1:0").unwrap();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // 17 MiB length prefix, no payload behind it.
    raw.write_all(&((17u32 << 20).to_le_bytes())).unwrap();
    raw.flush().unwrap();

    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("an error frame");
    match Response::decode(&payload).unwrap() {
        Response::Error(message) => {
            assert!(
                message.contains("exceeds"),
                "error must name the cap: {message:?}"
            );
        }
        other => panic!("expected a framing Error, got {other:?}"),
    }
    // Then EOF: the connection is gone, not limping.
    assert!(read_frame(&mut reader).unwrap().is_none());

    // And the event loop survived to serve a fresh connection.
    let mut probe = Client::connect(handle.addr()).unwrap();
    probe.ping().unwrap();
    drop(probe);
    handle.shutdown();
}

/// Identical query text under two tenants stays isolated end to end: the
/// shared embedding memo and cross-batch singleflight key by tenant, so one
/// tenant's frame never resolves the other's lookup.
#[test]
fn identical_text_under_two_tenants_never_crosses() {
    let config = ServeConfig {
        // Force the shared-machinery paths the test is about.
        memo_capacity: 4096,
        singleflight: true,
        ..strict_config()
    };
    let handle = Server::start(cache(2), &config, "127.0.0.1:0").unwrap();

    let mut acme = Client::connect_with_config(
        handle.addr(),
        ClientConfig {
            tenant: Some("acme".into()),
            token: Some("sekret".into()),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mut beta = Client::connect_with_config(
        handle.addr(),
        ClientConfig {
            tenant: Some("beta".into()),
            token: Some("hunter2".into()),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    acme.insert("the exact same question text", "acme's answer", &[])
        .unwrap();
    // beta probes the identical text — memoized embedding, same
    // singleflight key text — and must still miss.
    for _ in 0..8 {
        assert!(
            beta.lookup("the exact same question text", &[])
                .unwrap()
                .is_miss(),
            "beta must never be served acme's entry"
        );
    }
    let acme_hit = acme.lookup("the exact same question text", &[]).unwrap();
    assert_eq!(acme_hit.hit().unwrap().response, "acme's answer");

    // beta's own insert under the same text serves beta's frame, not
    // acme's — and vice versa, even probed back-to-back.
    beta.insert("the exact same question text", "beta's answer", &[])
        .unwrap();
    let beta_hit = beta.lookup("the exact same question text", &[]).unwrap();
    assert_eq!(beta_hit.hit().unwrap().response, "beta's answer");
    let acme_hit = acme.lookup("the exact same question text", &[]).unwrap();
    assert_eq!(acme_hit.hit().unwrap().response, "acme's answer");

    drop(acme);
    drop(beta);
    handle.shutdown();
}

/// An authenticated connection may only invalidate its own namespace; a
/// neighbour's epoch (and entries) are untouchable.
#[test]
fn authenticated_connection_cannot_invalidate_a_neighbour() {
    let handle = Server::start(cache(2), &strict_config(), "127.0.0.1:0").unwrap();
    let mut acme = Client::connect(handle.addr()).unwrap();
    acme.hello("acme", "sekret").unwrap();
    let mut beta = Client::connect(handle.addr()).unwrap();
    beta.hello("beta", "hunter2").unwrap();

    beta.insert("beta standing entry", "resp", &[]).unwrap();
    match acme.invalidate("beta", 0) {
        Err(ClientError::Rejected {
            code: ErrorCode::Unauthenticated,
            retryable: false,
            ..
        }) => {}
        other => panic!("expected non-retryable Unauthenticated, got {other:?}"),
    }
    // beta's entry still serves; acme's own invalidation still works.
    assert!(beta.lookup("beta standing entry", &[]).unwrap().is_hit());
    assert_eq!(acme.invalidate("acme", 0).unwrap(), 1);
    drop(acme);
    drop(beta);
    handle.shutdown();
}
