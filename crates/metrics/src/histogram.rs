//! A log2-bucketed latency histogram with lock-free recording.
//!
//! Serving layers need per-request latency percentiles without keeping a
//! sample vector per request (that is [`crate::TimingStats`]' job, for
//! bounded offline runs). [`LatencyHistogram`] spends a fixed
//! [`LATENCY_HIST_BUCKETS`] × 8 bytes instead: bucket `i` counts values in
//! `(2^(i-1), 2^i]` microseconds (bucket 0 absorbs 0–1 µs, the last bucket
//! is open-ended), so any percentile is derivable client-side from the
//! bucket counts with at most 2× quantisation error — plenty for p50/p90/p99
//! dashboards.
//!
//! The same power-of-two bucket scheme is used by the serve layer's
//! batch-size histogram, so one decoding rule covers both.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` covers `(2^(i-1), 2^i]` µs;
/// bucket 27 tops out at ~134 s, far beyond any request this side of a
/// network partition, and the last bucket absorbs everything larger anyway.
pub const LATENCY_HIST_BUCKETS: usize = 28;

/// The bucket a value in microseconds falls into.
fn bucket_of(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let bucket = (u64::BITS - (micros - 1).leading_zeros()) as usize;
    bucket.min(LATENCY_HIST_BUCKETS - 1)
}

/// Upper bound (inclusive, in µs) of bucket `i` — the value percentile
/// estimation reports for samples landing in that bucket.
pub fn bucket_upper_bound_us(bucket: usize) -> u64 {
    1u64 << bucket.min(LATENCY_HIST_BUCKETS - 1)
}

/// A fixed-size, atomically updated log2 histogram of microsecond values.
/// Recording is a single relaxed `fetch_add`; snapshots are racy only to
/// the extent of in-flight increments (monotonic tallies, never used to
/// synchronise other memory).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one value in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Snapshot of the bucket counts (length [`LATENCY_HIST_BUCKETS`]).
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Element-wise sum of two bucket vectors (merging shard or node
/// histograms). Mismatched lengths merge over the shorter prefix plus the
/// longer remainder — snapshots from a build with fewer buckets still
/// merge losslessly.
#[must_use]
pub fn merge_log2_buckets(a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| a.get(i).copied().unwrap_or(0) + b.get(i).copied().unwrap_or(0))
        .collect()
}

/// The `p`-th percentile (`0.0..=1.0`) of a log2 bucket-count vector, as
/// the upper bound (µs) of the bucket holding the `ceil(p × count)`-th
/// smallest sample. This is the exact rule clients apply to the serialized
/// `latency_hist` snapshot.
///
/// Boundary behaviour is deterministic: an empty histogram returns 0 for
/// every `p` (including NaN), `p <= 0.0` reports the first non-empty
/// bucket, and `p >= 1.0` reports the last non-empty bucket's bound — never
/// the bound of trailing zero buckets, and never a value that depends on
/// float rounding of `p × total` at large totals.
pub fn percentile_from_log2_buckets(buckets: &[u64], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let max_bound = buckets
        .iter()
        .rposition(|&count| count > 0)
        .map(bucket_upper_bound_us)
        .unwrap_or(0);
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    if p >= 1.0 {
        return max_bound;
    }
    let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_upper_bound_us(i);
        }
    }
    max_bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1 << 10), 10);
        assert_eq!(bucket_of((1 << 10) + 1), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_HIST_BUCKETS - 1);
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let hist = LatencyHistogram::default();
        for micros in [1, 2, 3, 4, 5, 900, 1_000_000, u64::MAX] {
            hist.record_micros(micros);
        }
        hist.record(std::time::Duration::from_micros(900));
        let snap = hist.snapshot();
        assert_eq!(snap.len(), LATENCY_HIST_BUCKETS);
        assert_eq!(hist.count(), 9);
        assert_eq!(snap[0], 1); // 1
        assert_eq!(snap[1], 1); // 2
        assert_eq!(snap[2], 2); // 3, 4
        assert_eq!(snap[3], 1); // 5
        assert_eq!(snap[10], 2); // 900 twice (513..=1024)
        assert_eq!(snap[20], 1); // 1_000_000 (2^19+1..=2^20)
        assert_eq!(snap[LATENCY_HIST_BUCKETS - 1], 1); // u64::MAX clamped
    }

    #[test]
    fn merge_is_element_wise_and_length_tolerant() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30, 40];
        assert_eq!(merge_log2_buckets(&a, &b), vec![11, 22, 33, 40]);
        assert_eq!(merge_log2_buckets(&[], &b), b);
        let hist_a = LatencyHistogram::default();
        let hist_b = LatencyHistogram::default();
        hist_a.record_micros(3);
        hist_b.record_micros(4);
        hist_b.record_micros(100);
        let merged = merge_log2_buckets(&hist_a.snapshot(), &hist_b.snapshot());
        assert_eq!(merged[2], 2);
        assert_eq!(merged.iter().sum::<u64>(), 3);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        assert_eq!(percentile_from_log2_buckets(&[], 0.5), 0);
        let hist = LatencyHistogram::default();
        // 90 samples at ~100µs (bucket 7: 65..=128), 10 at ~10_000µs
        // (bucket 14: 8193..=16384).
        for _ in 0..90 {
            hist.record_micros(100);
        }
        for _ in 0..10 {
            hist.record_micros(10_000);
        }
        let snap = hist.snapshot();
        assert_eq!(percentile_from_log2_buckets(&snap, 0.50), 128);
        assert_eq!(percentile_from_log2_buckets(&snap, 0.90), 128);
        assert_eq!(percentile_from_log2_buckets(&snap, 0.99), 16_384);
        assert_eq!(percentile_from_log2_buckets(&snap, 1.0), 16_384);
        assert_eq!(percentile_from_log2_buckets(&snap, 0.0), 128);
    }

    #[test]
    fn percentile_boundaries_are_deterministic() {
        // Empty histograms report 0 at every percentile, including the
        // degenerate inputs.
        for p in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN] {
            assert_eq!(percentile_from_log2_buckets(&[], p), 0);
            assert_eq!(percentile_from_log2_buckets(&[0; 8], p), 0);
        }

        // p=1.0 reports the last *non-empty* bucket, not the bound of
        // trailing zeros (the old fallback returned the whole-vector end).
        let trailing_zeros = [0, 3, 0, 0, 0, 0];
        assert_eq!(percentile_from_log2_buckets(&trailing_zeros, 1.0), 2);
        assert_eq!(percentile_from_log2_buckets(&trailing_zeros, 0.0), 2);

        // Out-of-range p clamps; NaN falls back to p=0.
        let spread = [1, 0, 0, 0, 1];
        assert_eq!(percentile_from_log2_buckets(&spread, -1.0), 1);
        assert_eq!(percentile_from_log2_buckets(&spread, 2.0), 16);
        assert_eq!(percentile_from_log2_buckets(&spread, f64::NAN), 1);

        // p just below 1.0 must not jump past the final sample even when
        // `p * total` rounds up to `total` exactly.
        assert_eq!(percentile_from_log2_buckets(&spread, 0.999_999), 16);

        // Huge totals: `ceil(p * total)` saturates safely instead of
        // overflowing the rank past the population.
        let huge = [u64::MAX / 2, u64::MAX / 2];
        assert_eq!(percentile_from_log2_buckets(&huge, 1.0), 2);
        assert_eq!(percentile_from_log2_buckets(&huge, 0.25), 1);
    }
}
