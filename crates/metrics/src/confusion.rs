//! Confusion-matrix accounting for semantic-cache decisions.

use serde::{Deserialize, Serialize};

/// The outcome of a single cache lookup, relative to the ground truth.
///
/// * `hit` — the cache returned a cached response.
/// * `should_hit` — a semantically equivalent query (with the same context)
///   really was in the cache, so the correct behaviour was to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheDecision {
    /// The cache returned a response and the ground truth agrees (true positive).
    TrueHit,
    /// The cache returned a response for a query that had no equivalent in the
    /// cache (false positive) — the user receives a wrong answer and must
    /// manually resubmit.
    FalseHit,
    /// The cache forwarded the query to the LLM and no equivalent was cached
    /// (true negative).
    TrueMiss,
    /// The cache forwarded a query that *did* have a cached equivalent
    /// (false negative) — correctness is preserved but the saving is lost.
    FalseMiss,
}

impl CacheDecision {
    /// Classifies a predicted hit/miss against the ground-truth label.
    pub fn classify(predicted_hit: bool, should_hit: bool) -> Self {
        match (predicted_hit, should_hit) {
            (true, true) => CacheDecision::TrueHit,
            (true, false) => CacheDecision::FalseHit,
            (false, false) => CacheDecision::TrueMiss,
            (false, true) => CacheDecision::FalseMiss,
        }
    }

    /// `true` when the decision matches the ground truth.
    pub fn is_correct(self) -> bool {
        matches!(self, CacheDecision::TrueHit | CacheDecision::TrueMiss)
    }

    /// `true` when the cache predicted a hit.
    pub fn predicted_hit(self) -> bool {
        matches!(self, CacheDecision::TrueHit | CacheDecision::FalseHit)
    }
}

/// Counts of the four semantic-cache outcomes plus derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives: correct cache hits.
    pub true_hits: u64,
    /// False positives: incorrect cache hits (wrong answer returned).
    pub false_hits: u64,
    /// True negatives: correct cache misses.
    pub true_misses: u64,
    /// False negatives: missed opportunities (equivalent entry existed).
    pub false_misses: u64,
}

impl ConfusionMatrix {
    /// An empty confusion matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision.
    pub fn record(&mut self, decision: CacheDecision) {
        match decision {
            CacheDecision::TrueHit => self.true_hits += 1,
            CacheDecision::FalseHit => self.false_hits += 1,
            CacheDecision::TrueMiss => self.true_misses += 1,
            CacheDecision::FalseMiss => self.false_misses += 1,
        }
    }

    /// Records a predicted hit/miss against the ground truth.
    pub fn record_outcome(&mut self, predicted_hit: bool, should_hit: bool) {
        self.record(CacheDecision::classify(predicted_hit, should_hit));
    }

    /// Adds raw counts (used by tests and by aggregation across clients).
    pub fn record_counts(&mut self, tp: u64, fp: u64, tn: u64, fn_: u64) {
        self.true_hits += tp;
        self.false_hits += fp;
        self.true_misses += tn;
        self.false_misses += fn_;
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_hits += other.true_hits;
        self.false_hits += other.false_hits;
        self.true_misses += other.true_misses;
        self.false_misses += other.false_misses;
    }

    /// Total number of recorded decisions.
    pub fn total(&self) -> u64 {
        self.true_hits + self.false_hits + self.true_misses + self.false_misses
    }

    /// Precision = TP / (TP + FP); 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        let denom = self.true_hits + self.false_hits;
        if denom == 0 {
            0.0
        } else {
            self.true_hits as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        let denom = self.true_hits + self.false_misses;
        if denom == 0 {
            0.0
        } else {
            self.true_hits as f64 / denom as f64
        }
    }

    /// Accuracy = (TP + TN) / total; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_hits + self.true_misses) as f64 / total as f64
        }
    }

    /// Fβ score (weighted harmonic mean of precision and recall). β < 1
    /// emphasises precision, β > 1 emphasises recall.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        let denom = b2 * p + r;
        if denom <= 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / denom
        }
    }

    /// F1 score (β = 1).
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// Hit rate as a traditional cache would report it: fraction of lookups
    /// answered from the cache regardless of correctness.
    pub fn raw_hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_hits + self.false_hits) as f64 / total as f64
        }
    }

    /// Bundles every derived metric using the given β.
    pub fn summary(&self, beta: f64) -> MetricSummary {
        MetricSummary {
            precision: self.precision(),
            recall: self.recall(),
            f_score: self.f_beta(beta),
            f1: self.f1(),
            accuracy: self.accuracy(),
            beta,
            total: self.total(),
        }
    }
}

/// Derived metric bundle reported by the experiment binaries (one row of
/// Table I, one point of Figures 11-14/16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Precision (TP / predicted positives).
    pub precision: f64,
    /// Recall (TP / actual positives).
    pub recall: f64,
    /// Fβ score at the β recorded alongside.
    pub f_score: f64,
    /// F1 score.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// β used for `f_score`.
    pub beta: f64,
    /// Number of decisions summarised.
    pub total: u64,
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "F{:.1}={:.3} P={:.3} R={:.3} Acc={:.3} (n={})",
            self.beta, self.f_score, self.precision, self.recall, self.accuracy, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_quadrants() {
        assert_eq!(CacheDecision::classify(true, true), CacheDecision::TrueHit);
        assert_eq!(
            CacheDecision::classify(true, false),
            CacheDecision::FalseHit
        );
        assert_eq!(
            CacheDecision::classify(false, false),
            CacheDecision::TrueMiss
        );
        assert_eq!(
            CacheDecision::classify(false, true),
            CacheDecision::FalseMiss
        );
        assert!(CacheDecision::TrueHit.is_correct());
        assert!(!CacheDecision::FalseMiss.is_correct());
        assert!(CacheDecision::FalseHit.predicted_hit());
        assert!(!CacheDecision::TrueMiss.predicted_hit());
    }

    #[test]
    fn metrics_match_hand_computed_values() {
        // The paper's Figure 7a matrix for MeanCache (MPNet):
        // TN=611 FP=89 / FN=66 TP=234.
        let mut cm = ConfusionMatrix::new();
        cm.record_counts(234, 89, 611, 66);
        assert!((cm.precision() - 234.0 / 323.0).abs() < 1e-9);
        assert!((cm.recall() - 234.0 / 300.0).abs() < 1e-9);
        assert!((cm.accuracy() - 845.0 / 1000.0).abs() < 1e-9);
        // The derived precision ≈ 0.724 and accuracy 0.845 match Table I.
        assert!((cm.precision() - 0.72).abs() < 0.01);
        assert!((cm.accuracy() - 0.85).abs() < 0.01);
    }

    #[test]
    fn gptcache_reference_matrix_matches_table() {
        // Figure 7b: TN=467 FP=233 / FN=46 TP=254.
        let mut cm = ConfusionMatrix::new();
        cm.record_counts(254, 233, 467, 46);
        assert!((cm.precision() - 0.52).abs() < 0.01);
        assert!((cm.recall() - 0.85).abs() < 0.01);
        assert!((cm.accuracy() - 0.72).abs() < 0.01);
        // F0.5 ≈ 0.56 as reported in Table I.
        assert!((cm.f_beta(0.5) - 0.56).abs() < 0.01);
    }

    #[test]
    fn empty_matrix_yields_zero_metrics() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.raw_hit_rate(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = ConfusionMatrix::new();
        a.record_outcome(true, true);
        a.record_outcome(true, false);
        let mut b = ConfusionMatrix::new();
        b.record_outcome(false, true);
        b.record_outcome(false, false);
        a.merge(&b);
        assert_eq!(a.true_hits, 1);
        assert_eq!(a.false_hits, 1);
        assert_eq!(a.false_misses, 1);
        assert_eq!(a.true_misses, 1);
        assert_eq!(a.total(), 4);
        assert!((a.accuracy() - 0.5).abs() < 1e-9);
        assert!((a.raw_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn f_beta_extremes() {
        let mut cm = ConfusionMatrix::new();
        cm.record_counts(50, 50, 0, 0); // precision 0.5, recall 1.0
                                        // As beta -> 0 the score approaches precision; beta large approaches recall.
        assert!((cm.f_beta(0.01) - 0.5).abs() < 0.01);
        assert!((cm.f_beta(100.0) - 1.0).abs() < 0.01);
        assert!(cm.f_beta(1.0) > cm.f_beta(0.5));
    }

    #[test]
    fn perfect_classifier_has_all_ones() {
        let mut cm = ConfusionMatrix::new();
        cm.record_counts(10, 0, 10, 0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let mut cm = ConfusionMatrix::new();
        cm.record_counts(3, 1, 5, 2);
        let s = cm.summary(0.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert!(s.to_string().contains("P=0.750"));
    }
}
