//! Latency and size summaries for the response-time and storage experiments.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Accumulates a series of scalar observations (latencies in seconds, sizes
/// in bytes, ...) and reports summary statistics.
///
/// The experiment binaries feed per-query wall-clock times into one
/// `TimingStats` per configuration (no cache / GPTCache / MeanCache) to
/// reproduce Figure 5, and per-cache-size byte counts to reproduce Figure 10.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimingStats {
    samples: Vec<f64>,
}

impl TimingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Records a [`Duration`] in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all observations.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total() / self.samples.len() as f64
        }
    }

    /// Minimum observation, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Sample standard deviation, or 0 with fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// `p`-th percentile (0..=100) using linear interpolation; 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        }
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Borrow the raw observations (in insertion order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Speed-up of this series' mean relative to another series' mean
    /// (`other.mean() / self.mean()`); 0 when either mean is 0.
    pub fn speedup_vs(&self, other: &TimingStats) -> f64 {
        let mine = self.mean();
        let theirs = other.mean();
        if mine <= 0.0 || theirs <= 0.0 {
            0.0
        } else {
            theirs / mine
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let t = TimingStats::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
        assert_eq!(t.median(), 0.0);
        assert_eq!(t.std_dev(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn summary_statistics_are_correct() {
        let mut t = TimingStats::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 5);
        assert_eq!(t.total(), 15.0);
        assert_eq!(t.mean(), 3.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.median(), 3.0);
        assert!((t.std_dev() - (2.5f64).sqrt()).abs() < 1e-9);
        assert!((t.percentile(25.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn record_duration_converts_to_seconds() {
        let mut t = TimingStats::new();
        t.record_duration(Duration::from_millis(250));
        assert!((t.mean() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn speedup_compares_means() {
        let mut fast = TimingStats::new();
        let mut slow = TimingStats::new();
        for _ in 0..10 {
            fast.record(0.01);
            slow.record(0.05);
        }
        assert!((fast.speedup_vs(&slow) - 5.0).abs() < 1e-9);
        assert_eq!(TimingStats::new().speedup_vs(&slow), 0.0);
        assert_eq!(fast.speedup_vs(&TimingStats::new()), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = TimingStats::new();
        t.record(1.5);
        t.record(2.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: TimingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.samples(), t.samples());
    }
}
