//! # mc-metrics
//!
//! Evaluation metrics for semantic-cache decisions, matching Section IV-A3 of
//! the MeanCache paper.
//!
//! Traditional hit/miss rates are misleading for a *semantic* cache: a hit
//! can be wrong (a *false hit* returns an unrelated cached response) and a
//! miss can be wrong (a *false miss* forwards a query that had a perfectly
//! good cached answer). The paper therefore evaluates cache decisions as a
//! binary classification problem and reports precision, recall, Fβ and
//! accuracy. This crate provides:
//!
//! * [`ConfusionMatrix`] — the four counters (true hit, false hit, true miss,
//!   false miss) plus the derived metrics, including the Fβ score with the
//!   paper's β = 0.5 weighting that favours precision.
//! * [`timing`] — latency/size summaries (mean, percentiles, totals) used by
//!   the response-time and storage experiments (Figures 5, 10, 15).
//! * [`histogram`] — a fixed-size log2-bucketed latency histogram for online
//!   serving, where keeping every sample is not an option.
//! * [`report`] — plain-text table rendering so the benchmark binaries print
//!   rows directly comparable to the paper's tables.
//! * [`trace`] — per-request stage traces, a sampling gate, and a
//!   fixed-capacity flight recorder for online attribution of where a
//!   request's latency went.

pub mod confusion;
pub mod histogram;
pub mod report;
pub mod timing;
pub mod trace;

pub use confusion::{CacheDecision, ConfusionMatrix, MetricSummary};
pub use histogram::{
    merge_log2_buckets, percentile_from_log2_buckets, LatencyHistogram, LATENCY_HIST_BUCKETS,
};
pub use report::Table;
pub use timing::TimingStats;
pub use trace::{FlightRecorder, Stage, Trace, TraceDump, TraceSnapshot, Tracer, STAGE_COUNT};

/// The β used throughout the paper's end-to-end evaluation: 0.5 weighs
/// precision twice as heavily as recall, because a false hit forces the user
/// to manually resend the query while a false miss is handled transparently.
pub const PAPER_F_BETA: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_beta_prefers_precision() {
        let mut high_precision = ConfusionMatrix::new();
        high_precision.record_counts(80, 5, 100, 40);
        let mut high_recall = ConfusionMatrix::new();
        high_recall.record_counts(115, 60, 45, 5);
        // Comparable overall quality, but the precision-heavy system must win under beta=0.5.
        assert!(
            high_precision.f_beta(PAPER_F_BETA) > high_recall.f_beta(PAPER_F_BETA),
            "precision-heavy system must score higher under beta=0.5"
        );
    }
}
