//! Plain-text table rendering for the experiment binaries.
//!
//! Every benchmark binary prints its results as aligned text tables so the
//! output can be diffed against the paper's tables and figure series without
//! any plotting dependencies.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells. Rows shorter than the header are
    /// padded with empty cells; longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Convenience for rows of string slices.
    pub fn add_row_strs(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as an aligned multi-line string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total_width: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total_width.max(4)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with three decimal places (the precision the paper uses).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with one decimal place.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count as KB with one decimal place (the paper reports
/// storage in KBs).
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.1} KB", bytes as f64 / 1024.0)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Metric", "GPTCache", "MeanCache"]);
        t.add_row_strs(&["F score", "0.56", "0.73"]);
        t.add_row_strs(&["Precision", "0.52", "0.72"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("F score"));
        assert!(s.contains("MeanCache"));
        assert_eq!(t.row_count(), 2);
        // Every data line must be at least as wide as the widest label.
        for line in s.lines().skip(2) {
            assert!(line.len() >= "Precision".len());
        }
    }

    #[test]
    fn short_and_long_rows_are_normalised() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row(&["only-one".to_string()]);
        t.add_row(&["x".to_string(), "y".to_string(), "ignored".to_string()]);
        let s = t.render();
        assert!(!s.contains("ignored"));
        assert!(s.contains("only-one"));
        assert!(!s.contains("=="), "empty title must not render a banner");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt_pct(0.831), "83.1%");
        assert_eq!(fmt_kb(3072), "3.0 KB");
        assert_eq!(fmt_secs(0.04), "0.0400s");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("T", &["x"]);
        t.add_row_strs(&["1"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
