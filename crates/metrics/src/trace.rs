//! Per-request stage tracing and a fixed-capacity flight recorder.
//!
//! A serving pipeline is only debuggable if a slow request can say *where*
//! the time went. This module provides the three pieces the serve layer
//! threads through its stages:
//!
//! * [`Trace`] — one per sampled request, carried alongside the request as
//!   it crosses threads. Each pipeline stage calls [`Trace::mark`], which
//!   stores a microsecond offset from the trace's start. Offsets are
//!   clamped monotone: a mark can never read earlier than the previous
//!   mark, so a dumped trace is always a non-decreasing timeline even if
//!   two stages land within the same clock tick.
//! * [`FlightRecorder`] — a fixed-capacity ring of [`TraceSnapshot`]s.
//!   Recording never blocks: the writer claims a slot with one atomic
//!   `fetch_add` and a `try_lock`; if a reader holds that slot the snapshot
//!   is counted as dropped instead of stalling the pipeline.
//! * [`Tracer`] — the sampling gate in front of both. With sampling
//!   disabled the per-request cost is a single relaxed atomic load;
//!   slow/deadline-expired/panicked requests can still be force-recorded
//!   through [`Tracer::force_begin`] so the recorder always holds the
//!   interesting outliers.
//!
//! The snapshot types serialize to JSON for the serve layer's `TraceDump`
//! opcode and the `--trace-log` slow-request log.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pipeline stages a request passes through, in order. The numeric value
/// is the stage's index into [`Trace`]'s offset table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Frame fully assembled on the event loop.
    Accepted = 0,
    /// Wire frame decoded into a request.
    Decoded = 1,
    /// Request admitted to the bounded queue.
    Enqueued = 2,
    /// Batcher popped the request off the queue.
    Dequeued = 3,
    /// Batch formed (post artificial delay, pre execution).
    Batched = 4,
    /// Query embedding resolved (memo hit or encoder run).
    Encoded = 5,
    /// Shard probe finished.
    Probed = 6,
    /// Feedback committed / reply resolved on the ticket.
    Committed = 7,
    /// Reply bytes flushed to the socket by the event loop.
    Written = 8,
}

/// Number of stages in [`Stage`].
pub const STAGE_COUNT: usize = 9;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accepted,
        Stage::Decoded,
        Stage::Enqueued,
        Stage::Dequeued,
        Stage::Batched,
        Stage::Encoded,
        Stage::Probed,
        Stage::Committed,
        Stage::Written,
    ];

    /// Stable lowercase name used in JSON dumps and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::Decoded => "decoded",
            Stage::Enqueued => "enqueued",
            Stage::Dequeued => "dequeued",
            Stage::Batched => "batched",
            Stage::Encoded => "encoded",
            Stage::Probed => "probed",
            Stage::Committed => "committed",
            Stage::Written => "written",
        }
    }
}

/// Flag bits recorded on a [`Trace`].
pub mod flag {
    /// The query embedding came from the memo cache.
    pub const MEMO_HIT: u64 = 1 << 0;
    /// The query embedding required an encoder run.
    pub const MEMO_MISS: u64 = 1 << 1;
    /// The request's deadline expired before execution.
    pub const DEADLINE_EXPIRED: u64 = 1 << 2;
    /// The batch executing this request panicked.
    pub const PANICKED: u64 = 1 << 3;
    /// End-to-end latency exceeded the slow threshold.
    pub const SLOW: u64 = 1 << 4;
    /// The request was coalesced with duplicates in its batch.
    pub const COALESCED: u64 = 1 << 5;
}

/// Sentinel for a stage that was never marked.
const UNSET: u64 = u64::MAX;

/// A single request's trace: monotone stage offsets (µs from `start`) plus
/// outcome flags. Shared across the event-loop and batcher threads behind
/// an `Arc`; every operation is lock-free.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    kind: &'static str,
    start: Instant,
    stages: [AtomicU64; STAGE_COUNT],
    /// Highest offset stored so far — marks clamp against this so the
    /// per-stage timeline is non-decreasing by construction.
    high_water: AtomicU64,
    flags: AtomicU64,
    recorded: AtomicBool,
}

impl Trace {
    /// A new trace starting now. `kind` labels the request type
    /// (`"lookup"`, `"insert"`, `"control"`).
    pub fn new(id: u64, kind: &'static str) -> Self {
        Trace {
            id,
            kind,
            start: Instant::now(),
            stages: std::array::from_fn(|_| AtomicU64::new(UNSET)),
            high_water: AtomicU64::new(0),
            flags: AtomicU64::new(0),
            recorded: AtomicBool::new(false),
        }
    }

    /// The trace's id (assigned by the issuing [`Tracer`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Microseconds elapsed since the trace started.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(UNSET - 1)) as u64
    }

    /// Marks `stage` as reached now.
    pub fn mark(&self, stage: Stage) {
        self.mark_at(stage, self.elapsed_us());
    }

    /// Marks `stage` with an explicit offset. The stored value is clamped
    /// to be no earlier than any previously stored mark, so a dump is
    /// monotone for any call sequence. Public so tests can drive the clamp
    /// deterministically.
    pub fn mark_at(&self, stage: Stage, offset_us: u64) {
        let offset_us = offset_us.min(UNSET - 1);
        let prev_high = self.high_water.fetch_max(offset_us, Ordering::Relaxed);
        let clamped = offset_us.max(prev_high);
        self.stages[stage as usize].store(clamped, Ordering::Relaxed);
    }

    /// The offset recorded for `stage`, if marked.
    pub fn stage_us(&self, stage: Stage) -> Option<u64> {
        match self.stages[stage as usize].load(Ordering::Relaxed) {
            UNSET => None,
            us => Some(us),
        }
    }

    /// Sets one or more [`flag`] bits.
    pub fn set_flag(&self, bits: u64) {
        self.flags.fetch_or(bits, Ordering::Relaxed);
    }

    /// True if all `bits` are set.
    pub fn has_flag(&self, bits: u64) -> bool {
        self.flags.load(Ordering::Relaxed) & bits == bits
    }

    /// True once the trace has been pushed to a recorder (the push is
    /// first-caller-wins; see [`Tracer::record`]).
    pub fn is_recorded(&self) -> bool {
        self.recorded.load(Ordering::Relaxed)
    }

    /// An owned snapshot of the marked stages, in pipeline order.
    pub fn snapshot(&self) -> TraceSnapshot {
        let flags = self.flags.load(Ordering::Relaxed);
        let stages = Stage::ALL
            .iter()
            .filter_map(|&s| {
                self.stage_us(s).map(|us| StageMark {
                    stage: s.name().to_string(),
                    us,
                })
            })
            .collect();
        TraceSnapshot {
            id: self.id,
            kind: self.kind.to_string(),
            total_us: self.high_water.load(Ordering::Relaxed),
            stages,
            memo_hit: if flags & flag::MEMO_HIT != 0 {
                Some(true)
            } else if flags & flag::MEMO_MISS != 0 {
                Some(false)
            } else {
                None
            },
            deadline_expired: flags & flag::DEADLINE_EXPIRED != 0,
            panicked: flags & flag::PANICKED != 0,
            slow: flags & flag::SLOW != 0,
            coalesced: flags & flag::COALESCED != 0,
        }
    }
}

/// One marked stage in a [`TraceSnapshot`]: stage name plus microsecond
/// offset from the trace start.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
pub struct StageMark {
    pub stage: String,
    pub us: u64,
}

/// Serializable view of one request's trace, as dumped by `TraceDump` and
/// the slow-request log.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Default)]
pub struct TraceSnapshot {
    pub id: u64,
    pub kind: String,
    /// Offset of the latest mark — the request's end-to-end time as far as
    /// the trace observed it.
    pub total_us: u64,
    /// Marked stages in pipeline order; skipped stages are omitted.
    pub stages: Vec<StageMark>,
    /// `Some(true)` = embedding memo hit, `Some(false)` = encoder ran,
    /// `None` = attribution unavailable (memo disabled or batch-amortised).
    pub memo_hit: Option<bool>,
    pub deadline_expired: bool,
    pub panicked: bool,
    pub slow: bool,
    pub coalesced: bool,
}

impl TraceSnapshot {
    /// The offset of stage `name`, if present.
    pub fn stage_us(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|m| m.stage == name).map(|m| m.us)
    }

    /// True when stage offsets are non-decreasing in pipeline order — the
    /// invariant [`Trace::mark_at`] maintains.
    pub fn is_monotone(&self) -> bool {
        self.stages.windows(2).all(|w| w[0].us <= w[1].us)
    }
}

/// A fixed-capacity ring of trace snapshots. Writers never block: each
/// `record` claims the next slot round-robin and skips (counting a drop)
/// if a concurrent `dump` holds that slot's lock.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<TraceSnapshot>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with room for `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Snapshots dropped because their slot was contended at record time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores `snapshot`, overwriting the oldest entry once full.
    pub fn record(&self, snapshot: TraceSnapshot) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut guard) => *guard = Some(snapshot),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// All stored snapshots, oldest id first.
    pub fn dump(&self) -> Vec<TraceSnapshot> {
        let mut out: Vec<TraceSnapshot> = self
            .slots
            .iter()
            .filter_map(|slot| match slot.lock() {
                Ok(guard) => guard.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }
}

/// The JSON document `TraceDump` returns: recorder contents plus the
/// sampling configuration they were captured under.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Default)]
pub struct TraceDump {
    /// 1-in-N sampling rate in effect (0 = sampling disabled).
    pub sample_every: u64,
    /// Slow-request threshold in µs (0 = disabled).
    pub slow_threshold_us: u64,
    /// Snapshots lost to slot contention since start.
    pub dropped: u64,
    pub traces: Vec<TraceSnapshot>,
}

/// Sampling gate plus flight recorder: the single object the serve layer
/// shares between its event loop, batcher, and stats endpoints.
#[derive(Debug)]
pub struct Tracer {
    /// Trace 1 request in N; 0 disables sampling entirely.
    sample_every: AtomicU64,
    /// Requests slower than this (µs, end-to-end) are flagged slow and
    /// force-recorded; 0 disables.
    slow_threshold_us: AtomicU64,
    counter: AtomicU64,
    next_id: AtomicU64,
    recorder: FlightRecorder,
}

impl Tracer {
    /// A tracer with sampling disabled and a recorder of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            sample_every: AtomicU64::new(0),
            slow_threshold_us: AtomicU64::new(0),
            counter: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            recorder: FlightRecorder::new(capacity),
        }
    }

    /// Sets the 1-in-N sampling rate (0 disables).
    pub fn set_sample_every(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Current 1-in-N sampling rate.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Sets the slow-request threshold in µs (0 disables).
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current slow threshold in µs.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// True if `total_us` crosses the slow threshold.
    pub fn is_slow(&self, total_us: u64) -> bool {
        let threshold = self.slow_threshold_us();
        threshold != 0 && total_us >= threshold
    }

    /// Begins a trace if this request is sampled. With sampling disabled
    /// the cost is one relaxed load.
    pub fn begin(&self, kind: &'static str) -> Option<Arc<Trace>> {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        if !self
            .counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            return None;
        }
        Some(self.force_begin(kind))
    }

    /// Begins a trace unconditionally — used to synthesize a record for an
    /// unsampled request that turned out slow, deadline-expired, or
    /// panicked.
    pub fn force_begin(&self, kind: &'static str) -> Arc<Trace> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Arc::new(Trace::new(id, kind))
    }

    /// Pushes `trace` into the flight recorder, once: returns false if it
    /// was already recorded (e.g. force-recorded at deadline expiry and
    /// again at write time).
    pub fn record(&self, trace: &Trace) -> bool {
        if trace.recorded.swap(true, Ordering::Relaxed) {
            return false;
        }
        self.recorder.record(trace.snapshot());
        true
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The recorder contents plus sampling config, as a [`TraceDump`].
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            sample_every: self.sample_every(),
            slow_threshold_us: self.slow_threshold_us(),
            dropped: self.recorder.dropped(),
            traces: self.recorder.dump(),
        }
    }

    /// [`Tracer::dump`] serialized to JSON.
    pub fn dump_json(&self) -> String {
        serde_json::to_string(&self.dump()).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_monotone_and_flags_stick() {
        let trace = Trace::new(7, "lookup");
        trace.mark_at(Stage::Accepted, 10);
        trace.mark_at(Stage::Decoded, 12);
        // An out-of-order (earlier) offset clamps to the high-water mark.
        trace.mark_at(Stage::Enqueued, 5);
        trace.mark_at(Stage::Written, 40);
        trace.set_flag(flag::MEMO_HIT | flag::SLOW);

        assert_eq!(trace.stage_us(Stage::Accepted), Some(10));
        assert_eq!(trace.stage_us(Stage::Enqueued), Some(12));
        assert_eq!(trace.stage_us(Stage::Dequeued), None);
        assert!(trace.has_flag(flag::MEMO_HIT));
        assert!(!trace.has_flag(flag::PANICKED));

        let snap = trace.snapshot();
        assert_eq!(snap.id, 7);
        assert_eq!(snap.kind, "lookup");
        assert_eq!(snap.total_us, 40);
        assert_eq!(snap.stages.len(), 4);
        assert!(snap.is_monotone());
        assert_eq!(snap.stage_us("enqueued"), Some(12));
        assert_eq!(snap.memo_hit, Some(true));
        assert!(snap.slow && !snap.deadline_expired);
    }

    #[test]
    fn recorder_wraps_and_dumps_in_id_order() {
        let rec = FlightRecorder::new(4);
        for id in 0..10u64 {
            let trace = Trace::new(id, "lookup");
            trace.mark_at(Stage::Accepted, id);
            rec.record(trace.snapshot());
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4);
        let ids: Vec<u64> = dump.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn sampling_gate_passes_one_in_n() {
        let tracer = Tracer::new(8);
        assert!(tracer.begin("lookup").is_none(), "sampling starts disabled");
        tracer.set_sample_every(4);
        let sampled = (0..40).filter(|_| tracer.begin("lookup").is_some()).count();
        assert_eq!(sampled, 10);
        tracer.set_sample_every(1);
        assert!(tracer.begin("lookup").is_some());
    }

    #[test]
    fn record_is_first_caller_wins() {
        let tracer = Tracer::new(8);
        let trace = tracer.force_begin("lookup");
        trace.mark_at(Stage::Accepted, 1);
        assert!(tracer.record(&trace));
        assert!(!tracer.record(&trace), "second record is a no-op");
        assert_eq!(tracer.recorder().dump().len(), 1);
        assert!(trace.is_recorded());
    }

    #[test]
    fn slow_threshold_gates_is_slow() {
        let tracer = Tracer::new(1);
        assert!(!tracer.is_slow(u64::MAX), "threshold 0 disables");
        tracer.set_slow_threshold_us(500);
        assert!(!tracer.is_slow(499));
        assert!(tracer.is_slow(500));
    }

    #[test]
    fn dump_round_trips_through_json() {
        let tracer = Tracer::new(4);
        tracer.set_sample_every(1);
        tracer.set_slow_threshold_us(2_000);
        for i in 0..3 {
            let trace = tracer.begin("lookup").expect("1-in-1 sampling");
            trace.mark_at(Stage::Accepted, i);
            trace.mark_at(Stage::Probed, i + 5);
            trace.mark_at(Stage::Written, i + 9);
            if i == 1 {
                trace.set_flag(flag::DEADLINE_EXPIRED | flag::MEMO_MISS);
            }
            tracer.record(&trace);
        }
        let json = tracer.dump_json();
        let parsed: TraceDump = serde_json::from_str(&json).expect("valid JSON dump");
        assert_eq!(parsed, tracer.dump());
        assert_eq!(parsed.sample_every, 1);
        assert_eq!(parsed.slow_threshold_us, 2_000);
        assert_eq!(parsed.traces.len(), 3);
        assert!(parsed.traces.iter().all(TraceSnapshot::is_monotone));
        assert_eq!(
            parsed.traces.iter().filter(|t| t.deadline_expired).count(),
            1
        );
        assert_eq!(parsed.traces[1].memo_hit, Some(false));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// For any in-order walk over a random subset of stages with
            /// arbitrary (even decreasing) raw offsets, the snapshot's
            /// stage timeline is non-decreasing.
            #[test]
            fn snapshots_are_monotone(
                raw in prop::collection::vec(0u64..1_000_000, 1..32),
                stride in 1usize..4,
            ) {
                let trace = Trace::new(1, "lookup");
                let mut stage_idx = 0usize;
                for (i, &us) in raw.iter().enumerate() {
                    // Walk stages in pipeline order, revisiting some and
                    // skipping others depending on the generated stride.
                    stage_idx = (stage_idx + (i % stride)).min(STAGE_COUNT - 1);
                    trace.mark_at(Stage::ALL[stage_idx], us);
                }
                let snap = trace.snapshot();
                prop_assert!(!snap.stages.is_empty());
                prop_assert!(
                    snap.is_monotone(),
                    "non-monotone snapshot: {:?}",
                    snap.stages
                );
                prop_assert!(snap.stages.iter().all(|m| m.us <= snap.total_us));
            }

            /// Recorder dump round-trips through JSON for arbitrary
            /// populations.
            #[test]
            fn recorder_json_round_trip(
                offsets in prop::collection::vec(0u64..10_000, 0..24),
                capacity in 1usize..8,
            ) {
                let tracer = Tracer::new(capacity);
                tracer.set_sample_every(1);
                for &us in &offsets {
                    let trace = tracer.begin("lookup").unwrap();
                    trace.mark_at(Stage::Accepted, us);
                    trace.mark_at(Stage::Written, us + 3);
                    tracer.record(&trace);
                }
                let parsed: TraceDump =
                    serde_json::from_str(&tracer.dump_json()).expect("dump parses");
                prop_assert_eq!(parsed, tracer.dump());
            }
        }
    }
}
