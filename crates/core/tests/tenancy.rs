//! Cross-tenant isolation and quota-fairness tests for [`TenantedCache`].
//!
//! The isolation property under test is strong: a tenant's *decision
//! stream* — the exact sequence of hit/miss outcomes, matched entry ids,
//! responses, and scores — must be bit-identical whether its traffic runs
//! alone on a fresh cache or interleaved with arbitrary other-tenant
//! traffic on a shared [`TenantedCache`]. Anything weaker (say, "hit rates
//! roughly match") would let one tenant's inserts perturb another's
//! eviction order or similarity scores without failing the test.
//!
//! The fairness property is the quota floor: a background tenant resident
//! at its quota never loses an entry to a foreground tenant flooding the
//! cache at an 8:1 rate — the flood evicts the flooder's own LRU tail.

use mc_embedder::{ModelProfile, QueryEncoder};
use meancache::{CacheDecisionOutcome, MeanCacheConfig, ShardedCache, TenantedCache};
use proptest::prelude::*;

const ENCODER_SEED: u64 = 0xC0FFEE;

/// A fresh sharded cache with a deterministic encoder, so two caches built
/// by this helper embed every query identically.
fn fresh_cache(shards: usize, capacity: usize) -> ShardedCache {
    let encoder = QueryEncoder::new(ModelProfile::tiny(), ENCODER_SEED).expect("tiny profile");
    let mut config = MeanCacheConfig::default()
        .with_threshold(0.6)
        .with_shards(shards);
    config.capacity = capacity;
    ShardedCache::new(encoder, config).expect("valid config")
}

/// A tenanted cache whose default tenant is an unused template.
fn fresh_tenanted(shards: usize, capacity: usize) -> TenantedCache {
    TenantedCache::new("default", fresh_cache(shards, capacity), None)
}

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Tenant `t`'s `k`-th query. Tenant-prefixed so pools are textually
/// disjoint; a cross-tenant hit would have to come from shared *storage*,
/// not from coincidentally shared text.
fn query(t: usize, k: usize) -> String {
    format!("[{}] how does subsystem {k} behave under load", TENANTS[t])
}

/// Tenant `t`'s response for query `k`, carrying the tenant marker so a
/// leaked frame is attributable.
fn response(t: usize, k: usize) -> String {
    format!("resp:{}:{k}", TENANTS[t])
}

/// One interleaved operation: `(tenant, is_insert, query index)`.
type Op = (usize, bool, usize);

/// Replays `ops` through `cache`, addressing every op at tenant
/// `TENANTS[t]`, and returns the per-tenant decision stream: lookup
/// outcomes and insert-assigned entry ids, in issue order.
fn replay(cache: &mut TenantedCache, ops: &[Op]) -> [Vec<CacheDecisionOutcome>; 3] {
    let mut streams: [Vec<CacheDecisionOutcome>; 3] = Default::default();
    for &(t, is_insert, k) in ops {
        let name = TENANTS[t];
        if is_insert {
            cache
                .insert(name, &query(t, k), &response(t, k), &[])
                .expect("tenant exists");
        } else {
            let outcome = cache.probe(name, &query(t, k), &[]);
            cache.commit(name, &outcome);
            streams[t].push(outcome);
        }
    }
    streams
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved A/B/C traffic on one shared `TenantedCache` produces,
    /// for every tenant, a decision stream bit-identical to replaying that
    /// tenant's subsequence alone on a fresh cache.
    #[test]
    fn interleaved_decision_streams_match_solo_runs(
        ops in prop::collection::vec((0..3usize, prop::bool::ANY, 0..8usize), 1..100)
    ) {
        let mut shared = fresh_tenanted(3, 64);
        for name in TENANTS {
            shared.add_tenant(name, 0).expect("add tenant");
        }
        let shared_streams = replay(&mut shared, &ops);

        for (t, name) in TENANTS.iter().enumerate() {
            let mut solo = fresh_tenanted(3, 64);
            solo.add_tenant(name, 0).expect("add tenant");
            let solo_ops: Vec<Op> = ops.iter().copied().filter(|&(ot, _, _)| ot == t).collect();
            let solo_streams = replay(&mut solo, &solo_ops);
            prop_assert_eq!(
                &shared_streams[t],
                &solo_streams[t],
                "tenant {} decision stream diverged between shared and solo runs",
                name
            );
        }
    }

    /// Every hit resolves with a frame the probing tenant itself inserted:
    /// responses are tenant-marked at insert time, so a cross-tenant
    /// resolution would surface another tenant's marker.
    #[test]
    fn hits_never_resolve_with_another_tenants_frame(
        ops in prop::collection::vec((0..3usize, prop::bool::ANY, 0..8usize), 1..100)
    ) {
        let mut shared = fresh_tenanted(3, 64);
        for name in TENANTS {
            shared.add_tenant(name, 0).expect("add tenant");
        }
        let streams = replay(&mut shared, &ops);
        for (t, stream) in streams.iter().enumerate() {
            let marker = format!("resp:{}:", TENANTS[t]);
            for outcome in stream {
                if let Some(hit) = outcome.hit() {
                    prop_assert!(
                        hit.response.starts_with(&marker),
                        "tenant {} served foreign frame {:?}",
                        TENANTS[t],
                        hit.response
                    );
                }
            }
        }
    }
}

/// Under a deterministic 8:1 foreground:background skew, the background
/// tenant's resident entries never drop below its quota floor, while the
/// foreground tenant's own LRU tail absorbs every eviction (hard quota
/// cap, per-tenant `ShardStat` occupancy).
#[test]
fn eviction_fairness_holds_the_background_quota_floor() {
    const QUOTA: usize = 32;
    let mut cache = fresh_tenanted(4, 256);
    cache.add_tenant("hot", QUOTA).expect("add hot");
    cache.add_tenant("bg", QUOTA).expect("add bg");

    // Background tenant fills exactly to quota.
    for k in 0..QUOTA {
        cache
            .insert(
                "bg",
                &format!("background standing query {k}"),
                "bg frame",
                &[],
            )
            .expect("bg insert");
    }
    let floor = cache.tenant("bg").expect("bg").len();
    assert!(floor > 0 && floor <= QUOTA, "bg populate must be resident");
    // `ShardStat::evictions` is derived (inserts − occupancy), so semantic
    // replacement during populate already shows up here; the fairness claim
    // is that the *flood* adds nothing on top of this baseline.
    let bg_evictions_baseline: u64 = cache
        .tenant("bg")
        .expect("bg")
        .cache()
        .shard_stats()
        .iter()
        .map(|s| s.evictions)
        .sum();

    // 8:1 skew, deterministic: eight hot inserts (all distinct, far past
    // quota) then one background lookup, repeated. The floor must hold
    // after every single step, not just at the end.
    let mut hot_seq = 0usize;
    for round in 0..32 {
        for _ in 0..8 {
            cache
                .insert(
                    "hot",
                    &format!("foreground flood query {hot_seq}"),
                    "hot frame",
                    &[],
                )
                .expect("hot insert");
            hot_seq += 1;
            let bg = cache.tenant("bg").expect("bg");
            assert!(
                bg.len() >= floor,
                "round {round}: background dropped to {} below floor {floor}",
                bg.len()
            );
            let hot = cache.tenant("hot").expect("hot");
            assert!(
                hot.len() <= QUOTA,
                "round {round}: hot occupancy {} broke quota cap {QUOTA}",
                hot.len()
            );
        }
        let outcome = cache.probe(
            "bg",
            &format!("background standing query {}", round % QUOTA),
            &[],
        );
        cache.commit("bg", &outcome);
    }

    // Per-tenant shard accounting: evictions landed on the flooder only,
    // and each tenant's shard occupancy sums to its resident count.
    let hot = cache.tenant("hot").expect("hot");
    let hot_stats = hot.cache().shard_stats();
    let hot_occupancy: usize = hot_stats.iter().map(|s| s.occupancy).sum();
    let hot_evictions: u64 = hot_stats.iter().map(|s| s.evictions).sum();
    assert_eq!(hot_occupancy, hot.len());
    assert!(
        hot_evictions >= (hot_seq - QUOTA) as u64,
        "flooder must evict its own tail: {hot_evictions} evictions for {hot_seq} inserts"
    );

    let bg = cache.tenant("bg").expect("bg");
    let bg_stats = bg.cache().shard_stats();
    let bg_occupancy: usize = bg_stats.iter().map(|s| s.occupancy).sum();
    let bg_evictions: u64 = bg_stats.iter().map(|s| s.evictions).sum();
    assert_eq!(bg_occupancy, bg.len());
    assert_eq!(
        bg_evictions, bg_evictions_baseline,
        "background tenant under quota must never be evicted by the flood"
    );
}

/// Invalidation epochs are tenant-scoped: bumping one tenant's epoch
/// screens its pre-bump entries into misses without touching a neighbour's
/// hits, and the sweep reclaims only the invalidated tenant's entries.
#[test]
fn invalidation_is_tenant_scoped() {
    let mut cache = fresh_tenanted(2, 64);
    cache.add_tenant("alpha", 0).expect("add alpha");
    cache.add_tenant("beta", 0).expect("add beta");
    cache
        .insert("alpha", "alpha question one", "alpha frame", &[])
        .expect("insert");
    cache
        .insert("beta", "beta question one", "beta frame", &[])
        .expect("insert");

    assert!(cache.probe("alpha", "alpha question one", &[]).is_hit());
    assert!(cache.probe("beta", "beta question one", &[]).is_hit());

    let epoch = cache.invalidate("alpha", 0).expect("known tenant");
    assert_eq!(epoch, 1);

    assert!(
        cache.probe("alpha", "alpha question one", &[]).is_miss(),
        "pre-bump alpha entry must screen to a miss"
    );
    assert!(
        cache.probe("beta", "beta question one", &[]).is_hit(),
        "beta must be untouched by alpha's invalidation"
    );

    let swept = cache.sweep();
    assert!(swept >= 1, "sweep must reclaim alpha's stale entry");
    assert!(cache.tenant("alpha").expect("alpha").is_empty());
    assert_eq!(cache.tenant("beta").expect("beta").len(), 1);

    // Post-bump inserts live under the new epoch and hit again.
    cache
        .insert("alpha", "alpha question two", "alpha frame 2", &[])
        .expect("insert");
    assert!(cache.probe("alpha", "alpha question two", &[]).is_hit());
}
