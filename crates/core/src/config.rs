//! Deployment configuration of the local semantic cache.

use mc_store::{EvictionPolicy, FsyncPolicy, IndexKind};
use serde::{Deserialize, Serialize};

use crate::shard::RoutingMode;
use crate::{CacheError, Result};

/// Configuration of a [`crate::MeanCache`] instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanCacheConfig {
    /// Cosine-similarity threshold τ for a query to be considered a semantic
    /// match. In deployment this is the federated global threshold, refined
    /// locally (Section III-A2).
    pub threshold: f32,
    /// How many candidate cached queries to retrieve per lookup before
    /// context verification (Algorithm 1 retrieves the top-k similar
    /// queries).
    pub top_k: usize,
    /// Whether to verify context chains for candidate hits (Section III,
    /// "context chain"). Disabling this reduces MeanCache to a GPTCache-style
    /// context-oblivious cache — the ablation the contextual experiments
    /// quantify.
    pub context_checking: bool,
    /// Cosine threshold used when matching the probe's conversational
    /// context against a candidate's cached parent query.
    pub context_threshold: f32,
    /// Maximum number of cached entries before eviction.
    pub capacity: usize,
    /// Eviction policy (Figure 1 shows LRU).
    pub eviction: EvictionPolicy,
    /// Step size for adaptive threshold updates driven by user feedback
    /// (a reported false hit raises τ, a reported false miss lowers it).
    pub feedback_step: f32,
    /// Which vector-index backend the cache searches with: exact
    /// [`IndexKind::Flat`] scanning (the default, right up to a few tens of
    /// thousands of entries) or [`IndexKind::Ivf`] approximate search for
    /// large caches. Either backend can additionally store SQ8-quantised
    /// rows ([`IndexKind::flat_sq8`] / [`IndexKind::ivf_sq8`]) to cut the
    /// index's embedding bytes ~4×. See `mc_store::index` and
    /// `mc_store::rows` for the trade-offs.
    pub index: IndexKind,
    /// Number of independent shards the serving layer
    /// ([`crate::ShardedCache`]) splits the cache into. `1` (the default)
    /// means an unsharded cache; `0` is accepted and normalised to `1` so
    /// config sidecars written before this field existed still load (the
    /// vendored serde shim deserialises a missing `#[serde(default)]` field
    /// to `usize::default()`). A plain [`crate::MeanCache`] ignores this
    /// knob — it configures the layer above.
    #[serde(default)]
    pub shards: usize,
    /// How the serving layer maps a conversation root to a shard:
    /// [`RoutingMode::Hash`] (the default — cheapest, but a paraphrase only
    /// finds its original's shard with probability `1/N`),
    /// [`RoutingMode::Centroid`] (route on the root embedding to the
    /// nearest per-shard centroid) or [`RoutingMode::ScatterGather`] (fan
    /// probes to every shard and merge). Serde-defaulted so config sidecars
    /// written before this field existed still load as hash-routed. A plain
    /// [`crate::MeanCache`] ignores this knob — it configures the layer
    /// above.
    #[serde(default)]
    pub routing: RoutingMode,
    /// When entry-log appends are forced to stable storage
    /// ([`FsyncPolicy`]): `Always` (fdatasync per record — survives power
    /// loss), `EveryN(n)` (bounded loss), or `Never` (the default — page
    /// cache only, matching the historical behaviour and costing nothing
    /// on the hot path). Serde-defaulted so sidecars written before this
    /// field existed still load. Consumed by the persistence layer and the
    /// serve-side operation WAL.
    #[serde(default)]
    pub fsync: FsyncPolicy,
    /// Whether the persistence layer writes an `MCSNAP01` snapshot sidecar
    /// (`<path>.snap`) next to the entry log on every save
    /// ([`SnapshotPolicy::Enabled`], the default). Loading prefers the
    /// snapshot — `mmap` + checksum + WAL-tail replay — and falls back to
    /// full log replay when the snapshot is missing, stale, or corrupt, so
    /// disabling this only costs restart time, never correctness.
    /// Serde-defaulted so sidecars written before this field existed still
    /// load. See `docs/FORMAT.md` for the container layout.
    #[serde(default)]
    pub snapshot: SnapshotPolicy,
}

/// Whether saves also emit the zero-copy `MCSNAP01` snapshot tier
/// (see [`MeanCacheConfig::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SnapshotPolicy {
    /// Write a snapshot on every save and prefer it on load (default).
    #[default]
    Enabled,
    /// Never write snapshots; loads always replay the entry log.
    Disabled,
}

impl Default for MeanCacheConfig {
    fn default() -> Self {
        Self {
            threshold: 0.7,
            top_k: 5,
            context_checking: true,
            context_threshold: 0.7,
            capacity: 100_000,
            eviction: EvictionPolicy::Lru,
            feedback_step: 0.02,
            index: IndexKind::default(),
            shards: 1,
            routing: RoutingMode::Hash,
            fsync: FsyncPolicy::Never,
            snapshot: SnapshotPolicy::Enabled,
        }
    }
}

/// Hard ceiling on [`MeanCacheConfig::shards`]: past this the per-shard
/// entry counts stop amortising the routing and lock overhead.
pub const MAX_SHARDS: usize = 1024;

impl MeanCacheConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`CacheError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(CacheError::InvalidConfig(format!(
                "threshold {} must be in [0, 1]",
                self.threshold
            )));
        }
        if !(0.0..=1.0).contains(&self.context_threshold) {
            return Err(CacheError::InvalidConfig(format!(
                "context_threshold {} must be in [0, 1]",
                self.context_threshold
            )));
        }
        if self.top_k == 0 {
            return Err(CacheError::InvalidConfig("top_k must be >= 1".into()));
        }
        if self.capacity == 0 {
            return Err(CacheError::InvalidConfig("capacity must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.feedback_step) {
            return Err(CacheError::InvalidConfig(format!(
                "feedback_step {} must be in [0, 1)",
                self.feedback_step
            )));
        }
        if self.shards > MAX_SHARDS {
            return Err(CacheError::InvalidConfig(format!(
                "shards {} exceeds the supported maximum {MAX_SHARDS}",
                self.shards
            )));
        }
        self.index.validate()?;
        self.fsync.validate().map_err(CacheError::InvalidConfig)?;
        Ok(())
    }

    /// The shard count the serving layer should build: `shards`, with the
    /// legacy-sidecar `0` normalised to `1`.
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// Returns a copy with the threshold replaced (e.g. with the federated
    /// global threshold τ_global). The context-verification threshold is the
    /// same kind of semantic-similarity decision, so it is updated to the
    /// same value; set `context_threshold` afterwards to diverge.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self.context_threshold = threshold;
        self
    }

    /// Returns a copy with context checking toggled.
    pub fn with_context_checking(mut self, enabled: bool) -> Self {
        self.context_checking = enabled;
        self
    }

    /// Returns a copy with the vector-index backend replaced.
    pub fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// Returns a copy with the serving-layer shard count replaced.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with the serving-layer routing mode replaced.
    pub fn with_routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// Returns a copy with the entry-log fsync policy replaced.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Returns a copy with the snapshot policy replaced.
    pub fn with_snapshot(mut self, snapshot: SnapshotPolicy) -> Self {
        self.snapshot = snapshot;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        let cfg = MeanCacheConfig::default();
        assert!(cfg.validate().is_ok());
        assert!(cfg.context_checking);
        assert_eq!(cfg.eviction, EvictionPolicy::Lru);
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(MeanCacheConfig {
            threshold: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MeanCacheConfig {
            context_threshold: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MeanCacheConfig {
            top_k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MeanCacheConfig {
            capacity: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MeanCacheConfig {
            feedback_step: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        let bad_index = IndexKind::Ivf(mc_store::IvfConfig {
            nprobe: 0,
            ..mc_store::IvfConfig::default()
        });
        assert!(MeanCacheConfig {
            index: bad_index,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn index_backend_is_selectable() {
        let cfg = MeanCacheConfig::default();
        assert_eq!(cfg.index.name(), "flat");
        let cfg = cfg.with_index(IndexKind::ivf());
        assert_eq!(cfg.index.name(), "ivf");
        assert!(cfg.validate().is_ok());
        // The SQ8 row codec is part of the same knob.
        let cfg = cfg.with_index(IndexKind::flat_sq8());
        assert_eq!(cfg.index.name(), "flat-sq8");
        assert!(cfg.validate().is_ok());
        let cfg = cfg.with_index(IndexKind::ivf_sq8());
        assert_eq!(cfg.index.name(), "ivf-sq8");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_helpers_modify_copies() {
        let cfg = MeanCacheConfig::default()
            .with_threshold(0.83)
            .with_context_checking(false);
        assert_eq!(cfg.threshold, 0.83);
        assert_eq!(cfg.context_threshold, 0.83);
        assert!(!cfg.context_checking);
        assert_eq!(MeanCacheConfig::default().threshold, 0.7);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = MeanCacheConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MeanCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        let sharded = cfg.with_shards(8);
        let json = serde_json::to_string(&sharded).unwrap();
        let back: MeanCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, 8);
    }

    #[test]
    fn shard_count_validates_and_normalises() {
        assert_eq!(MeanCacheConfig::default().shards, 1);
        let cfg = MeanCacheConfig::default().with_shards(4);
        assert_eq!(cfg.effective_shards(), 4);
        assert!(cfg.validate().is_ok());
        // 0 is the legacy-sidecar value: valid, normalised to 1.
        let legacy = MeanCacheConfig::default().with_shards(0);
        assert!(legacy.validate().is_ok());
        assert_eq!(legacy.effective_shards(), 1);
        assert!(MeanCacheConfig::default()
            .with_shards(MAX_SHARDS + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn routing_mode_round_trips_and_defaults_to_hash() {
        let cfg = MeanCacheConfig::default();
        assert_eq!(cfg.routing, RoutingMode::Hash);
        let cfg = cfg.with_routing(RoutingMode::ScatterGather);
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MeanCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.routing, RoutingMode::ScatterGather);
        // A sidecar written before the `routing` field existed must load
        // as hash-routed.
        let json = serde_json::to_string(&MeanCacheConfig::default()).unwrap();
        let old = json
            .replace(",\"routing\":\"Hash\"", "")
            .replace("\"routing\":\"Hash\",", "");
        assert!(!old.contains("routing"), "field must be stripped: {old}");
        let cfg: MeanCacheConfig = serde_json::from_str(&old).unwrap();
        assert_eq!(cfg.routing, RoutingMode::Hash);
    }

    #[test]
    fn fsync_policy_round_trips_and_validates() {
        let cfg = MeanCacheConfig::default();
        assert_eq!(cfg.fsync, FsyncPolicy::Never);
        let cfg = cfg.with_fsync(FsyncPolicy::EveryN(16));
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MeanCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fsync, FsyncPolicy::EveryN(16));
        assert!(MeanCacheConfig::default()
            .with_fsync(FsyncPolicy::EveryN(0))
            .validate()
            .is_err());
        // A sidecar written before the `fsync` field existed must load with
        // the historical flush-only behaviour.
        let json = serde_json::to_string(&MeanCacheConfig::default()).unwrap();
        let old = json
            .replace(",\"fsync\":\"Never\"", "")
            .replace("\"fsync\":\"Never\",", "");
        assert!(!old.contains("fsync"), "field must be stripped: {old}");
        let cfg: MeanCacheConfig = serde_json::from_str(&old).unwrap();
        assert_eq!(cfg.fsync, FsyncPolicy::Never);
    }

    #[test]
    fn snapshot_policy_round_trips_and_defaults_to_enabled() {
        let cfg = MeanCacheConfig::default();
        assert_eq!(cfg.snapshot, SnapshotPolicy::Enabled);
        let cfg = cfg.with_snapshot(SnapshotPolicy::Disabled);
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MeanCacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.snapshot, SnapshotPolicy::Disabled);
        // A sidecar written before the `snapshot` field existed must load
        // with snapshots enabled.
        let json = serde_json::to_string(&MeanCacheConfig::default()).unwrap();
        let old = json
            .replace(",\"snapshot\":\"Enabled\"", "")
            .replace("\"snapshot\":\"Enabled\",", "");
        assert!(!old.contains("snapshot"), "field must be stripped: {old}");
        let cfg: MeanCacheConfig = serde_json::from_str(&old).unwrap();
        assert_eq!(cfg.snapshot, SnapshotPolicy::Enabled);
    }

    #[test]
    fn pre_shard_configs_still_deserialize() {
        // A sidecar written before the `shards` field existed must load,
        // with the missing field defaulting to 0 (⇒ one effective shard).
        let json = serde_json::to_string(&MeanCacheConfig::default().with_shards(7)).unwrap();
        let old = json
            .replace(",\"shards\":7", "")
            .replace("\"shards\":7,", "");
        assert!(!old.contains("shards"), "field must be stripped: {old}");
        let cfg: MeanCacheConfig = serde_json::from_str(&old).unwrap();
        assert_eq!(cfg.shards, 0);
        assert_eq!(cfg.effective_shards(), 1);
        assert!(cfg.validate().is_ok());
    }
}
