//! GPTCache-style baseline: a server-side semantic cache with a fixed
//! threshold and no context verification.
//!
//! The paper compares against GPTCache in its "optimal configuration":
//! Albert embeddings with a fixed cosine threshold of 0.7 (Section IV-A).
//! Architecturally GPTCache differs from MeanCache in three ways this
//! baseline reproduces:
//!
//! 1. It runs on the **server side**, so even a cache hit costs the user a
//!    network round-trip (and, in practice, still gets billed).
//! 2. It does **not verify conversational context**, so lexically similar
//!    follow-ups from different conversations produce false hits.
//! 3. Its threshold is **fixed** (no per-user adaptation / federated
//!    optimum).

use mc_embedder::QueryEncoder;
use mc_store::IndexKind;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheDecisionOutcome, SemanticCache};
use crate::shard::ShardedCache;
use crate::{MeanCacheConfig, Result};

/// Configuration of the GPTCache-style baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GptCacheConfig {
    /// Fixed cosine-similarity threshold (GPTCache's suggested 0.7).
    pub threshold: f32,
    /// Candidate pool size per lookup.
    pub top_k: usize,
    /// Maximum number of cached entries.
    pub capacity: usize,
    /// Network round-trip to reach the server-side cache, in seconds. Every
    /// lookup pays this even when the result is a hit.
    pub network_rtt_s: f64,
    /// Vector-index backend for the server-side store. A server cache pools
    /// *all* users' queries, so it crosses into ANN territory much earlier
    /// than a per-user cache; deployments at the configured million-entry
    /// capacity should pick [`IndexKind::Ivf`] — or [`IndexKind::ivf_sq8`]
    /// to also quarter the resident embedding bytes.
    pub index: IndexKind,
    /// Shard count for the server-side store. The baseline stands on a
    /// [`ShardedCache`] built from [`GptCacheConfig::to_cache_config`], so
    /// `shards > 1` gives the server the same concurrent-probe story as the
    /// MeanCache serving layer — at the same recall trade (a paraphrase only
    /// finds its original's shard with probability `1/N`; exact repeats
    /// always route correctly, and this baseline has no context chains to
    /// keep affine). `1` (the default) is decision-identical to the
    /// pre-sharding single-`MeanCache` baseline; `0` is normalised to `1`
    /// for configs written before this field existed.
    #[serde(default)]
    pub shards: usize,
    /// How the sharded server-side store routes queries to shards (see
    /// [`crate::RoutingMode`]). [`crate::RoutingMode::Centroid`] or
    /// [`crate::RoutingMode::ScatterGather`] recover the paraphrase recall
    /// that hash sharding trades away — particularly relevant for this
    /// baseline, whose pooled multi-user cache is exactly the
    /// paraphrase-heavy shape semantic routing targets. Serde-defaulted to
    /// hash for configs written before this field existed.
    #[serde(default)]
    pub routing: crate::RoutingMode,
}

impl Default for GptCacheConfig {
    fn default() -> Self {
        Self {
            threshold: 0.7,
            top_k: 5,
            capacity: 1_000_000,
            network_rtt_s: 0.08,
            index: IndexKind::default(),
            shards: 1,
            routing: crate::RoutingMode::Hash,
        }
    }
}

impl GptCacheConfig {
    /// The [`MeanCacheConfig`] this baseline translates to: same threshold,
    /// candidate pool, capacity, index backend, shard count and routing
    /// mode, with context verification disabled (the defining difference).
    pub fn to_cache_config(&self) -> MeanCacheConfig {
        MeanCacheConfig {
            threshold: self.threshold,
            top_k: self.top_k,
            capacity: self.capacity,
            index: self.index.clone(),
            shards: self.shards,
            routing: self.routing,
            context_checking: false,
            ..MeanCacheConfig::default()
        }
    }
}

/// The server-side baseline cache: a (possibly sharded) context-oblivious
/// store behind a simulated network round-trip. With `shards = 1` the
/// sharded wrapper routes everything to its single shard, so decisions,
/// ids and statistics are identical to the historical single-`MeanCache`
/// baseline.
#[derive(Debug, Clone)]
pub struct GptCacheBaseline {
    inner: ShardedCache,
    network_rtt_s: f64,
}

impl GptCacheBaseline {
    /// Creates the baseline around an encoder (the paper's configuration uses
    /// the Albert model).
    ///
    /// # Errors
    /// Returns [`crate::CacheError::InvalidConfig`] for invalid settings.
    pub fn new(encoder: QueryEncoder, config: GptCacheConfig) -> Result<Self> {
        let inner = ShardedCache::new(encoder, config.to_cache_config())?;
        Ok(Self {
            inner,
            network_rtt_s: config.network_rtt_s.max(0.0),
        })
    }

    /// The fixed threshold in use.
    pub fn threshold(&self) -> f32 {
        self.inner.threshold()
    }

    /// Borrow the underlying encoder.
    pub fn encoder(&self) -> &QueryEncoder {
        self.inner.encoder()
    }

    /// Number of server-side shards ([`GptCacheConfig::shards`]).
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Aggregated cache statistics across the server's shards.
    pub fn stats(&self) -> crate::cache::CacheStats {
        self.inner.stats()
    }

    /// Borrow the sharded server store (concurrent harnesses probe it
    /// directly through [`ShardedCache`]'s shared read/write paths).
    pub fn store(&self) -> &ShardedCache {
        &self.inner
    }
}

impl SemanticCache for GptCacheBaseline {
    fn probe(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        // Context is ignored by design.
        let _ = context;
        self.inner.probe(query, &[])
    }

    fn commit(&mut self, outcome: &CacheDecisionOutcome) {
        self.inner.commit(outcome);
    }

    fn probe_batch(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        // Context is ignored by design — and must be *stripped*, not merely
        // unchecked: the sharded store routes by the conversation root, and
        // inserts store standalone queries, so a context-bearing probe would
        // route to its conversation's shard while the entry lives on the
        // query's shard.
        let stripped: Vec<(&str, &[String])> =
            probes.iter().map(|(query, _)| (*query, &[][..])).collect();
        self.inner.probe_batch(&stripped)
    }

    fn insert(&mut self, query: &str, response: &str, _context: &[String]) -> Result<u64> {
        // The server-side cache stores the query without context linkage.
        self.inner.insert(query, response, &[])
    }

    fn lookup_network_overhead_s(&self) -> f64 {
        self.network_rtt_s
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    fn embedding_bytes(&self) -> usize {
        self.inner.embedding_bytes()
    }

    fn name(&self) -> String {
        // The single-shard name stays exactly what pre-sharding reports
        // printed; a sharded server annotates its shard count.
        match self.inner.shard_count() {
            1 => format!("GPTCache({})", self.inner.encoder().profile().kind),
            n => format!(
                "GPTCache[{n} shards]({})",
                self.inner.encoder().profile().kind
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::ModelProfile;

    fn baseline() -> GptCacheBaseline {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        GptCacheBaseline::new(
            encoder,
            GptCacheConfig {
                threshold: 0.6,
                ..GptCacheConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn default_configuration_matches_the_paper() {
        let cfg = GptCacheConfig::default();
        assert!((cfg.threshold - 0.7).abs() < 1e-6);
        assert!(cfg.network_rtt_s > 0.0);
    }

    #[test]
    fn behaves_as_a_semantic_cache_on_standalone_queries() {
        let mut cache = baseline();
        cache
            .insert("how do I bake sourdough bread", "Long fermentation.", &[])
            .unwrap();
        assert!(cache
            .lookup("how do I bake sourdough bread at home", &[])
            .is_hit());
        assert!(cache.lookup("tips for visiting iceland", &[]).is_miss());
        assert_eq!(cache.len(), 1);
        assert!(cache.storage_bytes() > 0);
        assert!(cache.name().contains("GPTCache"));
    }

    #[test]
    fn ignores_context_and_therefore_false_hits_on_contextual_probes() {
        let mut cache = baseline();
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red' to plt.plot.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        // Different conversation, same follow-up wording: GPTCache wrongly
        // serves the cached response (the paper's Figure 8a failure mode).
        let outcome = cache.lookup("change the color to red", &["draw a circle".to_string()]);
        assert!(outcome.is_hit());
    }

    #[test]
    fn sharded_baseline_serves_like_the_single_shard_one() {
        let single = baseline();
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        let sharded = GptCacheBaseline::new(
            encoder,
            GptCacheConfig {
                threshold: 0.6,
                shards: 4,
                ..GptCacheConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 4);
        assert!(single.name().starts_with("GPTCache("));
        assert!(sharded.name().contains("[4 shards]"));

        let mut caches = [single, sharded];
        for cache in &mut caches {
            for (q, r) in [
                ("how do I bake sourdough bread", "Ferment overnight."),
                ("what is federated learning", "On-device training."),
                ("draw a line plot in python", "Use plt.plot."),
            ] {
                cache.insert(q, r, &[]).unwrap();
            }
        }
        // Exact repeats route correctly on any shard count, and the context
        // is ignored *and stripped*: a context-bearing probe must still find
        // the entry its query text routes to (the false-hit failure mode the
        // baseline exists to demonstrate) — on both the single-probe and the
        // batched path.
        let ctx = vec!["draw a circle".to_string()];
        for cache in &mut caches {
            assert!(cache.lookup("what is federated learning", &[]).is_hit());
            assert!(cache.lookup("what is federated learning", &ctx).is_hit());
            assert!(cache.lookup("entirely uncached topic", &[]).is_miss());
            let batched = cache.probe_batch(&[
                ("how do I bake sourdough bread", &ctx[..]),
                ("entirely uncached topic", &[][..]),
            ]);
            assert!(batched[0].is_hit(), "{}", cache.name());
            assert!(batched[1].is_miss());
        }
        assert_eq!(caches[0].stats(), caches[1].stats());
        assert_eq!(caches[0].len(), caches[1].len());
    }

    #[test]
    fn every_lookup_pays_the_network_round_trip() {
        let cache = baseline();
        assert!(cache.lookup_network_overhead_s() > 0.0);
        // Negative RTTs are clamped at construction.
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 9).unwrap();
        let clamped = GptCacheBaseline::new(
            encoder,
            GptCacheConfig {
                network_rtt_s: -1.0,
                ..GptCacheConfig::default()
            },
        )
        .unwrap();
        assert_eq!(clamped.lookup_network_overhead_s(), 0.0);
    }

    #[test]
    fn invalid_threshold_is_rejected() {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        assert!(GptCacheBaseline::new(
            encoder,
            GptCacheConfig {
                threshold: 1.5,
                ..GptCacheConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn exposes_threshold_and_encoder() {
        let cache = baseline();
        assert!((cache.threshold() - 0.6).abs() < 1e-6);
        assert_eq!(
            cache.encoder().profile().kind,
            mc_embedder::ProfileKind::Custom
        );
    }
}
