//! Multi-tenant cache composition: one private [`ShardedCache`] per tenant.
//!
//! Serving millions of users means one global namespace is not acceptable:
//! tenants must not read each other's cached answers, a hot tenant must not
//! evict a quiet one past its quota, and a tenant upgrade (new model, new
//! prompt template) must be able to flush that tenant's stale answers
//! without a restart. [`TenantedCache`] delivers all three by construction:
//!
//! * **Isolation** — every tenant owns a full `ShardedCache` (cloned from a
//!   shared template so config, routing centroids, and the embedding
//!   memo-cache are common, then cleared). Probe, commit and eviction
//!   decisions inside one tenant's cache are *bit-independent* of any other
//!   tenant's traffic — there is no shared index to interleave on. The
//!   embedding memo **is** shared deliberately: memoized embeddings are
//!   pure functions of the query text and bit-identical to a cold encode,
//!   so sharing it leaks no decisions, only speed.
//! * **Quota fairness** — each tenant's cache has its own capacity bound
//!   (the tenant's quota). A tenant at quota evicts its *own* LRU tail,
//!   never a neighbour's entries.
//! * **Lifecycle** — entries carry an insertion timestamp and the tenant
//!   *epoch* current at insert time. A probe hit whose entry is older than
//!   the TTL, or whose epoch predates the tenant's current epoch (bumped by
//!   `Invalidate`), is screened into a miss at decision time; the entries
//!   themselves are reclaimed lazily by [`TenantedCache::sweep`], which the
//!   serve batcher runs alongside its root-pin GC.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::{CacheDecisionOutcome, CacheError, Result, SemanticCache, ShardedCache};

/// Default tenant name used when a deployment does not configure tenants
/// explicitly (and the namespace legacy wire clients and legacy on-disk
/// files map onto).
pub const DEFAULT_TENANT: &str = "default";

/// Per-entry lifecycle metadata (tenant-side; the cache itself stays
/// tenancy-unaware).
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    inserted: Instant,
    epoch: u64,
}

/// One tenant's private cache plus its lifecycle state.
#[derive(Debug)]
pub struct TenantStore {
    cache: ShardedCache,
    /// Capacity quota this tenant was built with (entries).
    quota: usize,
    /// Current invalidation epoch: entries inserted under an older epoch
    /// are stale and screened into misses.
    epoch: u64,
    /// Lifecycle metadata per public entry id.
    meta: HashMap<u64, EntryMeta>,
    /// Hits screened into misses because the entry outlived the TTL.
    expired: AtomicU64,
    /// Hits screened into misses because the entry's epoch was stale.
    invalidated: AtomicU64,
    /// Entries physically reclaimed by sweeps.
    reclaimed: u64,
}

impl TenantStore {
    /// Borrow this tenant's private cache.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// This tenant's capacity quota (entries).
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hits screened into misses because the entry outlived the TTL.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Hits screened into misses because the entry's epoch was stale.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Entries physically reclaimed by sweeps.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }

    /// Whether a hit on `id` should be screened into a miss, and why.
    fn screen_hit(&self, id: u64, ttl: Option<Duration>, now: Instant) -> Option<ScreenReason> {
        // Entries without metadata (inserted behind our back, e.g. directly
        // through the cache in tests) are treated as fresh and current —
        // the conservative choice for legacy compatibility.
        let meta = self.meta.get(&id)?;
        if meta.epoch < self.epoch {
            return Some(ScreenReason::Stale);
        }
        if let Some(ttl) = ttl {
            if now.duration_since(meta.inserted) >= ttl {
                return Some(ScreenReason::Expired);
            }
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScreenReason {
    Expired,
    Stale,
}

/// A set of named tenant caches sharing one template configuration, with
/// TTL/epoch screening at decision time. See the module docs.
#[derive(Debug)]
pub struct TenantedCache {
    /// `BTreeMap` so iteration order (stats, sweeps, persistence) is
    /// deterministic and independent of insertion order.
    tenants: BTreeMap<String, TenantStore>,
    default_tenant: String,
    ttl: Option<Duration>,
}

impl TenantedCache {
    /// Wraps `cache` as the default tenant's store. `ttl` of zero or `None`
    /// disables time-based expiry.
    pub fn new(default_tenant: &str, cache: ShardedCache, ttl: Option<Duration>) -> Self {
        let quota = cache.config().capacity;
        let mut tenants = BTreeMap::new();
        tenants.insert(
            default_tenant.to_string(),
            TenantStore {
                cache,
                quota,
                epoch: 0,
                meta: HashMap::new(),
                expired: AtomicU64::new(0),
                invalidated: AtomicU64::new(0),
                reclaimed: 0,
            },
        );
        Self {
            tenants,
            default_tenant: default_tenant.to_string(),
            ttl: ttl.filter(|t| !t.is_zero()),
        }
    }

    /// The default tenant's name.
    pub fn default_tenant(&self) -> &str {
        &self.default_tenant
    }

    /// The configured TTL, if any.
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Adds a tenant with a private cache cloned from the default tenant's
    /// template (then cleared, so no entries leak across) and capped at
    /// `quota` entries (`0` = inherit the template's capacity). A no-op if
    /// the tenant already exists, beyond applying `quota`.
    ///
    /// # Errors
    /// Propagates [`CacheError`] from rebuilding the cloned cache.
    pub fn add_tenant(&mut self, name: &str, quota: usize) -> Result<()> {
        if name.is_empty() {
            return Err(CacheError::InvalidConfig("empty tenant name".into()));
        }
        if let Some(existing) = self.tenants.get_mut(name) {
            if quota > 0 {
                existing.quota = quota;
                existing.cache.set_total_capacity(quota);
            }
            return Ok(());
        }
        let template = &self.tenants[&self.default_tenant];
        let mut cache = template.cache.clone();
        cache.clear()?;
        let quota = if quota > 0 {
            quota
        } else {
            cache.config().capacity
        };
        cache.set_total_capacity(quota);
        self.tenants.insert(
            name.to_string(),
            TenantStore {
                cache,
                quota,
                epoch: 0,
                meta: HashMap::new(),
                expired: AtomicU64::new(0),
                invalidated: AtomicU64::new(0),
                reclaimed: 0,
            },
        );
        Ok(())
    }

    /// Borrow one tenant's store.
    pub fn tenant(&self, name: &str) -> Option<&TenantStore> {
        self.tenants.get(name)
    }

    /// Tenant names in deterministic (sorted) order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Iterate `(name, store)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantStore)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Borrow one tenant's cache mutably (persistence restore path).
    pub fn cache_mut(&mut self, name: &str) -> Option<&mut ShardedCache> {
        self.tenants.get_mut(name).map(|t| &mut t.cache)
    }

    /// Iterate every tenant's cache mutably, in deterministic order
    /// (cross-tenant admin operations: threshold updates, resharding).
    pub fn caches_mut(&mut self) -> impl Iterator<Item = (&str, &mut ShardedCache)> {
        self.tenants
            .iter_mut()
            .map(|(k, v)| (k.as_str(), &mut v.cache))
    }

    /// Screens a raw probe outcome through the tenant's TTL/epoch rules:
    /// a hit on an expired or stale entry becomes a miss (and is counted).
    /// Misses pass through untouched, so screening never *creates* hits —
    /// decision streams stay bit-identical to a solo run until entries age.
    pub fn screen(&self, name: &str, outcome: CacheDecisionOutcome) -> CacheDecisionOutcome {
        let Some(store) = self.tenants.get(name) else {
            return outcome;
        };
        if let Some(hit) = outcome.hit() {
            match store.screen_hit(hit.entry_id, self.ttl, Instant::now()) {
                Some(ScreenReason::Expired) => {
                    store.expired.fetch_add(1, Ordering::Relaxed);
                    return CacheDecisionOutcome::Miss;
                }
                Some(ScreenReason::Stale) => {
                    store.invalidated.fetch_add(1, Ordering::Relaxed);
                    return CacheDecisionOutcome::Miss;
                }
                None => {}
            }
        }
        outcome
    }

    /// Probe one tenant's cache (screened). Unknown tenants miss.
    pub fn probe(&self, name: &str, query: &str, context: &[String]) -> CacheDecisionOutcome {
        match self.tenants.get(name) {
            Some(store) => self.screen(name, store.cache.probe(query, context)),
            None => CacheDecisionOutcome::Miss,
        }
    }

    /// Record the eviction-policy touch for a (screened) hit.
    pub fn commit(&self, name: &str, outcome: &CacheDecisionOutcome) {
        if let Some(store) = self.tenants.get(name) {
            store.cache.commit_shared(outcome);
        }
    }

    /// Insert into one tenant's cache and record lifecycle metadata.
    ///
    /// # Errors
    /// [`CacheError::InvalidConfig`] for unknown tenants, storage errors
    /// otherwise.
    pub fn insert(
        &mut self,
        name: &str,
        query: &str,
        response: &str,
        context: &[String],
    ) -> Result<u64> {
        let store = self
            .tenants
            .get_mut(name)
            .ok_or_else(|| CacheError::InvalidConfig(format!("unknown tenant {name:?}")))?;
        let id = store.cache.insert(query, response, context)?;
        // Entries this insert evicted leave dead metadata ids behind; the
        // periodic `sweep` prunes them.
        store.meta.insert(
            id,
            EntryMeta {
                inserted: Instant::now(),
                epoch: store.epoch,
            },
        );
        Ok(id)
    }

    /// Registers a restored (persisted) entry under `epoch`, with its TTL
    /// clock restarted now — TTLs are wall-clock leases and do not survive
    /// a restart (documented in ARCHITECTURE.md).
    pub fn register_restored(&mut self, name: &str, id: u64, epoch: u64) {
        if let Some(store) = self.tenants.get_mut(name) {
            store.meta.insert(
                id,
                EntryMeta {
                    inserted: Instant::now(),
                    epoch,
                },
            );
        }
    }

    /// Restores a tenant's epoch counter (persistence manifest).
    pub fn restore_epoch(&mut self, name: &str, epoch: u64) {
        if let Some(store) = self.tenants.get_mut(name) {
            store.epoch = store.epoch.max(epoch);
        }
    }

    /// Bumps a tenant's invalidation epoch: `epoch == 0` advances by one,
    /// otherwise the epoch becomes `max(current, epoch)` (idempotent for
    /// retries). Returns the new epoch, or `None` for unknown tenants.
    /// Entries inserted before the bump become stale immediately (at probe
    /// time); their storage is reclaimed by the next [`TenantedCache::sweep`].
    pub fn invalidate(&mut self, name: &str, epoch: u64) -> Option<u64> {
        let store = self.tenants.get_mut(name)?;
        store.epoch = if epoch == 0 {
            store.epoch + 1
        } else {
            store.epoch.max(epoch)
        };
        Some(store.epoch)
    }

    /// Flushes one tenant's entries (keeping its epoch and quota).
    ///
    /// # Errors
    /// Propagates [`CacheError`] from the underlying clear.
    pub fn flush(&mut self, name: &str) -> Result<()> {
        if let Some(store) = self.tenants.get_mut(name) {
            store.cache.clear()?;
            store.meta.clear();
        }
        Ok(())
    }

    /// Flushes every tenant (legacy WAL flush records predate tenancy and
    /// meant "the whole process").
    ///
    /// # Errors
    /// Propagates [`CacheError`] from the underlying clears.
    pub fn flush_all(&mut self) -> Result<()> {
        let names: Vec<String> = self.tenants.keys().cloned().collect();
        for name in names {
            self.flush(&name)?;
        }
        Ok(())
    }

    /// Lazily reclaims expired/stale entries across every tenant and prunes
    /// metadata for entries the caches already evicted. Returns the number
    /// of entries physically removed. The serve batcher runs this on the
    /// same cadence as its root-pin GC sweep (dangling pins left by removal
    /// are that sweep's job).
    pub fn sweep(&mut self) -> usize {
        let now = Instant::now();
        let ttl = self.ttl;
        let mut removed = 0;
        for store in self.tenants.values_mut() {
            let mut dead: Vec<u64> = Vec::new();
            let mut evicted: Vec<u64> = Vec::new();
            for (&id, meta) in &store.meta {
                if store.cache.entry(id).is_none() {
                    evicted.push(id);
                } else if meta.epoch < store.epoch
                    || ttl.is_some_and(|t| now.duration_since(meta.inserted) >= t)
                {
                    dead.push(id);
                }
            }
            for id in evicted {
                store.meta.remove(&id);
            }
            for id in dead {
                if store.cache.remove_public(id) {
                    removed += 1;
                    store.reclaimed += 1;
                }
                store.meta.remove(&id);
            }
            if removed > 0 {
                store.cache.sweep_root_pins();
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeanCacheConfig;
    use mc_embedder::{ModelProfile, QueryEncoder};

    fn tenanted(ttl: Option<Duration>) -> TenantedCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
        let mut config = MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_shards(2);
        config.capacity = 64;
        let cache = ShardedCache::new(encoder, config).unwrap();
        TenantedCache::new(DEFAULT_TENANT, cache, ttl)
    }

    #[test]
    fn tenants_are_isolated() {
        let mut tc = tenanted(None);
        tc.add_tenant("acme", 16).unwrap();
        tc.insert(DEFAULT_TENANT, "what is rust", "a language", &[])
            .unwrap();
        assert!(tc.probe(DEFAULT_TENANT, "what is rust", &[]).is_hit());
        assert!(tc.probe("acme", "what is rust", &[]).is_miss());
        tc.insert("acme", "what is rust", "acme answer", &[])
            .unwrap();
        let hit = tc.probe("acme", "what is rust", &[]);
        assert_eq!(hit.hit().unwrap().response, "acme answer");
    }

    #[test]
    fn invalidate_screens_old_entries_and_sweep_reclaims() {
        let mut tc = tenanted(None);
        tc.insert(DEFAULT_TENANT, "q one", "r one", &[]).unwrap();
        assert!(tc.probe(DEFAULT_TENANT, "q one", &[]).is_hit());
        let epoch = tc.invalidate(DEFAULT_TENANT, 0).unwrap();
        assert_eq!(epoch, 1);
        assert!(tc.probe(DEFAULT_TENANT, "q one", &[]).is_miss());
        assert_eq!(tc.tenant(DEFAULT_TENANT).unwrap().invalidated(), 1);
        let removed = tc.sweep();
        assert_eq!(removed, 1);
        assert_eq!(tc.tenant(DEFAULT_TENANT).unwrap().len(), 0);
        // Fresh inserts under the new epoch hit again.
        tc.insert(DEFAULT_TENANT, "q one", "r two", &[]).unwrap();
        assert!(tc.probe(DEFAULT_TENANT, "q one", &[]).is_hit());
        // Idempotent retry with an explicit epoch never regresses.
        assert_eq!(tc.invalidate(DEFAULT_TENANT, 1).unwrap(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut tc = tenanted(Some(Duration::from_nanos(1)));
        tc.insert(DEFAULT_TENANT, "short lived", "gone soon", &[])
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert!(tc.probe(DEFAULT_TENANT, "short lived", &[]).is_miss());
        assert_eq!(tc.tenant(DEFAULT_TENANT).unwrap().expired(), 1);
        assert_eq!(tc.sweep(), 1);
    }

    #[test]
    fn quota_caps_tenant_capacity() {
        let mut tc = tenanted(None);
        tc.add_tenant("small", 4).unwrap();
        for i in 0..32 {
            tc.insert("small", &format!("unique query number {i}"), "r", &[])
                .unwrap();
        }
        // Two shards × ceil(4/2) per shard = at most 4 resident entries.
        assert!(tc.tenant("small").unwrap().len() <= 4);
        // The default tenant was untouched by the neighbour's churn.
        assert_eq!(tc.tenant(DEFAULT_TENANT).unwrap().len(), 0);
    }
}
