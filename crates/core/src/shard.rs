//! Concurrent sharded serving layer: N independent [`MeanCache`] shards
//! behind per-shard `RwLock`s, with a pluggable [`RoutingMode`].
//!
//! Every lookup in the base cache funnels through one `&mut` API, so no two
//! queries can be served at once no matter how fast the underlying index
//! scan is. `ShardedCache` removes that ceiling the way concurrent
//! hash-map-style caches do: route each query to one of `N` independent
//! shards so reads proceed in parallel (shared `RwLock` read guards over the
//! read-only [`SemanticCache::probe`] half) and writes only contend within
//! one shard.
//!
//! ## Routing keys
//!
//! Whatever the mode, the routing key is the **conversation root**: the
//! first context turn when the probe carries history, the query text itself
//! otherwise (see [`route_key`]). Keying on the root pins an entire
//! conversation — a standalone query and every follow-up under it — to one
//! shard, so context chains never dangle across shards.
//!
//! ```
//! use meancache::shard::route_key;
//!
//! assert_eq!(route_key("standalone question", &[]), "standalone question");
//! let chain = vec!["conversation root".to_string(), "follow-up".to_string()];
//! assert_eq!(route_key("third turn", &chain), "conversation root");
//! ```
//!
//! ## Routing modes
//!
//! What varies is how a root maps to a shard ([`RoutingMode`]):
//!
//! * [`RoutingMode::Hash`] (the default) — a fixed FNV-1a of the root text.
//!   Cheapest and byte-identical to the pre-routing-mode behaviour, but
//!   *semantically blind*: a paraphrase hashes like unrelated text, so with
//!   `N` shards it lands on the cached original's shard with probability
//!   `1/N` and otherwise misses where an unsharded cache would hit —
//!   sharding for throughput silently costs the hit rate the paper
//!   optimises.
//! * [`RoutingMode::Centroid`] — route on the root's *embedding* to the
//!   nearest of `N` per-shard centroids (k-means-seeded via
//!   [`ShardedCache::seed_centroids`], nudged incrementally as inserts
//!   land). Paraphrases embed near their originals, so they route to the
//!   same shard and hit. Exact repeats and follow-ups are additionally
//!   guaranteed their original's shard by a **root pin table** (root-hash →
//!   shard, recorded at insert), which makes centroid routing strictly no
//!   worse than hash routing on exact traffic even as centroids drift.
//! * [`RoutingMode::ScatterGather`] — fan each probe out to *all* shards in
//!   parallel (the same worker-pool fan-out batched probes use) and merge
//!   the per-shard decisions into one: the highest-scoring context-verified
//!   hit wins, and its commit is routed to the winning shard. For
//!   standalone probes the merged decision is identical to the unsharded
//!   cache (property-tested); contextual probes verify their context
//!   against the conversation's own shard, which can only diverge from the
//!   unsharded cache when ≥ `top_k` entries from *other* conversations
//!   outrank the probe's true parent globally — a case where the global
//!   resolution was rejecting a genuine parent, so the per-shard form errs
//!   toward serving it. The price is `N` index searches per probe. Inserts
//!   go to the least-occupied shard (root-pinned, so conversations stay
//!   together), which doubles as load balancing.
//!
//! ```
//! use mc_embedder::{ModelProfile, QueryEncoder};
//! use meancache::{MeanCacheConfig, RoutingMode, SemanticCache, ShardedCache};
//!
//! let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
//! let config = MeanCacheConfig::default()
//!     .with_threshold(0.6)
//!     .with_shards(4)
//!     .with_routing(RoutingMode::ScatterGather);
//! let mut cache = ShardedCache::new(encoder, config).unwrap();
//! cache
//!     .insert("how do I bake sourdough bread", "Ferment overnight.", &[])
//!     .unwrap();
//! // Scatter-gather finds the entry no matter which shard stores it.
//! assert!(cache.lookup("how do I bake sourdough bread", &[]).is_hit());
//! assert_eq!(cache.routing(), RoutingMode::ScatterGather);
//! ```
//!
//! The measured trade-off between the three (hit rate vs latency vs
//! throughput on a paraphrase-heavy clustered workload) is the `exp_routing`
//! benchmark's job; `BENCH_routing.json` records it.
//!
//! ## Capacity
//!
//! Under hash routing each shard holds a fixed `capacity / N` slice, so one
//! hot conversation starts evicting at `1/N` of the configured total while
//! other shards sit under-filled. The semantic modes replace that with
//! **occupancy-proportional capacity borrowing**: a shard at its local
//! bound grows into the global budget while total occupancy is below
//! `capacity`, and only once the *global* budget is spent do inserts evict
//! (locally, in the shard they land in). Hash mode keeps the fixed split so
//! its behaviour stays byte-identical to earlier releases.
//!
//! ## Identifiers
//!
//! Shards allocate entry ids independently, so the serving layer namespaces
//! them: a public id is `local_id * N + shard`, decoded back on
//! [`SemanticCache::commit`]. Persisted per-shard logs keep local ids, which
//! makes reload reassemble the exact same public ids as long as the shard
//! count is unchanged (the config sidecar records it). Changing the shard
//! count or routing mode of an existing cache goes through [`reshard`],
//! which replays every entry through fresh routing (public ids are
//! reassigned; contents and decisions are preserved).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mc_embedder::{EmbeddingMemo, QueryEncoder};
use mc_store::CacheEntry;
use mc_tensor::vector;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheDecisionOutcome, CacheHit, CacheStats, MeanCache, SemanticCache};
use crate::{CacheError, MeanCacheConfig, Result};

/// The text a probe or insert is routed by: the conversation root (first
/// context turn) when there is history, the query itself otherwise.
///
/// ```
/// use meancache::shard::route_key;
/// let ctx = vec!["root turn".to_string()];
/// assert_eq!(route_key("follow-up", &ctx), "root turn");
/// assert_eq!(route_key("standalone", &[]), "standalone");
/// ```
pub fn route_key<'a>(query: &'a str, context: &'a [String]) -> &'a str {
    context.first().map(String::as_str).unwrap_or(query)
}

/// How a [`ShardedCache`] maps a conversation root to a shard. See the
/// module docs for the full trade-off discussion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingMode {
    /// Fixed FNV-1a hash of the root text (the default; byte-identical to
    /// the original sharded behaviour).
    #[default]
    Hash,
    /// Nearest-of-N-centroids on the root embedding, with a root pin table
    /// guaranteeing exact repeats and follow-ups their original's shard.
    Centroid,
    /// Fan every probe to all shards and merge the best decision; inserts
    /// balance onto the least-occupied shard.
    ScatterGather,
}

impl RoutingMode {
    /// Stable kebab-case name (CLI flags, reports, stats snapshots).
    pub fn name(self) -> &'static str {
        match self {
            RoutingMode::Hash => "hash",
            RoutingMode::Centroid => "centroid",
            RoutingMode::ScatterGather => "scatter-gather",
        }
    }

    /// Inverse of [`RoutingMode::name`] (`None` for unknown names).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hash" => Some(RoutingMode::Hash),
            "centroid" => Some(RoutingMode::Centroid),
            "scatter-gather" => Some(RoutingMode::ScatterGather),
            _ => None,
        }
    }
}

/// Fixed 64-bit FNV-1a. Deliberately *not* `std::hash` — routing must stay
/// identical across processes, Rust releases and save/load cycles. Also
/// deliberately a private copy rather than a helper shared with the FNV
/// loops in `mc-text` (n-gram hashing) and `mc-llm` (response
/// fingerprints): each is a separately *frozen* behaviour, and sharing one
/// function would let a change to any of them silently move the others.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Mutable routing state shared by the semantic modes. Hash routing never
/// touches it (stateless), which is what keeps hash mode byte-identical.
#[derive(Debug, Clone, Default)]
struct RouterState {
    /// One unit-norm routing centroid per shard; empty until seeded
    /// (unseeded centroid routing falls back to the hash route).
    centroids: Vec<Vec<f32>>,
    /// Roots absorbed into each centroid (k-means cluster sizes at seeding
    /// time, incremented per newly pinned root afterwards — the incremental
    /// update's learning-rate schedule).
    counts: Vec<u64>,
    /// `fnv1a(root text)` → shard, recorded at insert. Guarantees exact
    /// repeats and same-conversation follow-ups route to the shard that
    /// holds their entry no matter how far the centroids have drifted, and
    /// keeps scatter-gather inserts conversation-affine. Rebuilt from the
    /// entry logs on reload; never consulted by hash routing.
    pins: HashMap<u64, usize>,
}

/// A semantic cache partitioned into independent [`MeanCache`] shards for
/// concurrent serving. See the module docs for routing, capacity and id
/// semantics.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<RwLock<MeanCache>>,
    /// The serving-layer configuration (`shards` = the live shard count;
    /// each shard holds a copy with `shards: 1` and a split capacity).
    config: MeanCacheConfig,
    /// A copy of the shards' encoder, so routing, persistence and reports
    /// can reach it without taking a shard lock.
    encoder: QueryEncoder,
    /// Centroids + root pins for the semantic routing modes.
    router: RwLock<RouterState>,
    /// Embedding memo shared with every shard (and consulted by the
    /// routing layer's own encodes). `None` until the serving layer
    /// installs one via [`ShardedCache::set_embedding_memo`].
    memo: Option<Arc<EmbeddingMemo>>,
    /// Logical lookup counters for scatter-gather probes, which run
    /// *quietly* against each shard (one fan-out is one lookup, not N).
    scatter_lookups: AtomicU64,
    scatter_hits: AtomicU64,
    scatter_context_rejections: AtomicU64,
    /// Per-shard contention telemetry: how many lock acquisitions on the
    /// serving paths failed the `try_lock` fast path, and the total time
    /// those acquisitions then spent blocked. Uncontended acquisitions
    /// never read the clock.
    lock_contended: Vec<AtomicU64>,
    lock_wait_us: Vec<AtomicU64>,
}

/// Point-in-time per-shard counters for dashboards
/// ([`ShardedCache::shard_stats`]). `probes`/`hits` count the shard's own
/// recorded lookups — scatter-gather fan-outs probe shards *quietly* and
/// are accounted at the cache level, not here.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStat {
    /// Live entries resident in the shard.
    pub occupancy: usize,
    /// Lookups recorded against this shard.
    pub probes: u64,
    /// Hits recorded against this shard.
    pub hits: u64,
    /// Entries accepted by this shard.
    pub inserts: u64,
    /// Inserted entries no longer resident (derived: `inserts −
    /// occupancy`), i.e. evicted or replaced.
    pub evictions: u64,
    /// Serving-path lock acquisitions that had to block.
    pub lock_contended: u64,
    /// Total microseconds those acquisitions spent blocked.
    pub lock_wait_us: u64,
}

impl ShardedCache {
    /// Builds `config.effective_shards()` empty shards around clones of
    /// `encoder`. The configured `capacity` is the *total* across shards
    /// (split evenly, rounded up; the semantic routing modes let shards
    /// borrow unused budget from each other — see the module docs).
    ///
    /// # Errors
    /// Returns [`crate::CacheError::InvalidConfig`] when the configuration
    /// is invalid.
    pub fn new(encoder: QueryEncoder, config: MeanCacheConfig) -> Result<Self> {
        config.validate()?;
        let shard_count = config.effective_shards();
        let shard_config = MeanCacheConfig {
            shards: 1,
            routing: RoutingMode::Hash,
            capacity: config.capacity.div_ceil(shard_count),
            ..config.clone()
        };
        let shards = (0..shard_count)
            .map(|_| MeanCache::new(encoder.clone(), shard_config.clone()).map(RwLock::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            config,
            encoder,
            router: RwLock::new(RouterState::default()),
            memo: None,
            scatter_lookups: AtomicU64::new(0),
            scatter_hits: AtomicU64::new(0),
            scatter_context_rejections: AtomicU64::new(0),
            lock_contended: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            lock_wait_us: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Installs (or removes, with `None`) a shared embedding memo-cache on
    /// this serving layer *and every shard*, so probe, insert, context and
    /// routing encodes all consult one memo. Sound only while the shards'
    /// encoder stays frozen — see [`EmbeddingMemo`]'s docs.
    pub fn set_embedding_memo(&mut self, memo: Option<Arc<EmbeddingMemo>>) {
        for shard in &mut self.shards {
            shard_mut(shard).set_embedding_memo(memo.clone());
        }
        self.memo = memo;
    }

    /// Borrow the installed embedding memo, if any.
    pub fn embedding_memo(&self) -> Option<&Arc<EmbeddingMemo>> {
        self.memo.as_ref()
    }

    /// Encodes `text` for the routing layer, consulting the memo-cache when
    /// one is installed (memoized results are bit-identical to a cold
    /// encode, so routing cannot depend on whether this hit).
    fn embed(&self, text: &str) -> mc_tensor::Vector {
        match &self.memo {
            Some(memo) => memo.get_or_encode(text, |t| self.encoder.encode(t)),
            None => self.encoder.encode(text),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow the serving-layer configuration.
    pub fn config(&self) -> &MeanCacheConfig {
        &self.config
    }

    /// Borrow the encoder the shards were built around.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// The live routing mode.
    pub fn routing(&self) -> RoutingMode {
        self.config.routing
    }

    /// Seeds the centroid router by spherical k-means over `samples`
    /// (typically the embeddings of a representative workload, e.g. an
    /// `mc_workloads::EmbeddingCloud` or the queries about to be cached).
    /// `k` is the shard count; the run is deterministic (farthest-first
    /// initialisation, fixed iteration count). A no-op set of samples
    /// (empty) clears the centroids, restoring the hash fallback.
    ///
    /// # Errors
    /// [`crate::CacheError::InvalidConfig`] when a sample's dimensionality
    /// does not match the encoder's output.
    pub fn seed_centroids(&mut self, samples: &[Vec<f32>]) -> Result<()> {
        let dims = self.encoder.output_dim();
        if let Some(bad) = samples.iter().find(|s| s.len() != dims) {
            return Err(CacheError::InvalidConfig(format!(
                "centroid sample has {} dims, encoder produces {dims}",
                bad.len()
            )));
        }
        let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
        let (centroids, counts) = spherical_kmeans(&refs, self.shards.len(), KMEANS_ITERS);
        let router = self.router.get_mut().unwrap_or_else(|p| p.into_inner());
        router.centroids = centroids;
        router.counts = counts;
        Ok(())
    }

    /// [`ShardedCache::seed_centroids`] from raw query texts, encoded with
    /// this cache's own encoder.
    ///
    /// # Errors
    /// Propagates [`ShardedCache::seed_centroids`] failures.
    pub fn seed_centroids_from_texts<S: AsRef<str>>(&mut self, texts: &[S]) -> Result<()> {
        let samples: Vec<Vec<f32>> = texts
            .iter()
            .map(|t| self.encoder.encode(t.as_ref()).into_vec())
            .collect();
        self.seed_centroids(&samples)
    }

    /// `true` once [`ShardedCache::seed_centroids`] (or a reshard / reload)
    /// has installed routing centroids.
    pub fn centroids_seeded(&self) -> bool {
        !read_router(&self.router).centroids.is_empty()
    }

    /// Number of pinned conversation roots (diagnostics; see
    /// `RouterState::pins` for what a pin guarantees).
    pub fn root_pin_count(&self) -> usize {
        read_router(&self.router).pins.len()
    }

    /// Snapshot of the centroid state for persistence: `(centroids,
    /// counts)`, both empty when unseeded.
    pub(crate) fn centroid_state(&self) -> (Vec<Vec<f32>>, Vec<u64>) {
        let router = read_router(&self.router);
        (router.centroids.clone(), router.counts.clone())
    }

    /// Restores a persisted centroid state (inverse of
    /// [`ShardedCache::centroid_state`]).
    ///
    /// # Errors
    /// [`crate::CacheError::InvalidConfig`] when the shape does not match
    /// this cache's shard count or embedding dimensionality.
    pub(crate) fn restore_centroid_state(
        &mut self,
        centroids: Vec<Vec<f32>>,
        counts: Vec<u64>,
    ) -> Result<()> {
        if centroids.is_empty() {
            return Ok(());
        }
        let dims = self.encoder.output_dim();
        if centroids.len() != self.shards.len()
            || counts.len() != self.shards.len()
            || centroids.iter().any(|c| c.len() != dims)
        {
            return Err(CacheError::InvalidConfig(format!(
                "persisted centroid state ({} centroids) does not match {} shards × {dims} dims",
                centroids.len(),
                self.shards.len()
            )));
        }
        let router = self.router.get_mut().unwrap_or_else(|p| p.into_inner());
        router.centroids = centroids;
        router.counts = counts;
        Ok(())
    }

    /// Rebuilds the root pin table from the live shard contents: every
    /// entry pins its conversation root to the shard that holds it. Called
    /// after a reload replayed the per-shard entry logs (pins are not
    /// persisted — the logs already are the assignment).
    pub(crate) fn rebuild_pins(&mut self) {
        let mut pins = HashMap::new();
        for (shard, lock) in self.shards.iter().enumerate() {
            let cache = read(lock);
            let by_id: HashMap<u64, &CacheEntry> = cache.entries().map(|e| (e.id, e)).collect();
            for entry in cache.entries() {
                pins.insert(fnv1a(chain_root(&by_id, entry)), shard);
            }
        }
        self.router
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .pins = pins;
    }

    /// The root pins that resolve to `shard`, as sorted `(root_hash,
    /// shard)` pairs — the per-shard slice of the pin table an `MCSNAP01`
    /// snapshot persists (see [`crate::persist`]).
    pub(crate) fn root_pins_for_shard(&self, shard: usize) -> Vec<(u64, u64)> {
        let router = read_router(&self.router);
        let mut pins: Vec<(u64, u64)> = router
            .pins
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(&root, &s)| (root, s as u64))
            .collect();
        pins.sort_unstable();
        pins
    }

    /// Replaces the root pin table with persisted `(root_hash, shard)`
    /// pairs (inverse of [`ShardedCache::root_pins_for_shard`], unioned
    /// over all shards). Pins naming an out-of-range shard are dropped —
    /// routing then falls back to centroids / hash for those roots.
    pub(crate) fn restore_root_pins(&mut self, pins: impl IntoIterator<Item = (u64, u64)>) {
        let shard_count = self.shards.len();
        let table: HashMap<u64, usize> = pins
            .into_iter()
            .filter(|&(_, shard)| (shard as usize) < shard_count)
            .map(|(root, shard)| (root, shard as usize))
            .collect();
        self.router
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .pins = table;
    }

    /// Garbage-collects the root pin table: drops every pin whose root no
    /// longer resolves to a live entry (the conversation was fully evicted
    /// or flushed), so a long-lived server's pin table tracks its contents
    /// instead of its history. Returns the number of pins removed.
    ///
    /// Takes each shard's read lock briefly to compute the live root set,
    /// then the router write lock for the retain. Concurrent *probes* are
    /// safe (a pin for a live root is never removed); an *insert* racing
    /// the window between the scan and the retain could have its fresh pin
    /// dropped — harmless for decisions (routing falls back to centroids /
    /// hash) but callers that can should serialise sweeps with inserts, as
    /// the serve batcher does.
    pub fn sweep_root_pins(&self) -> usize {
        let mut live: HashSet<u64> = HashSet::new();
        for lock in &self.shards {
            let cache = read(lock);
            let by_id: HashMap<u64, &CacheEntry> = cache.entries().map(|e| (e.id, e)).collect();
            for entry in cache.entries() {
                live.insert(fnv1a(chain_root(&by_id, entry)));
            }
        }
        let mut router = self.router.write().unwrap_or_else(|p| p.into_inner());
        let before = router.pins.len();
        router.pins.retain(|root, _| live.contains(root));
        before - router.pins.len()
    }

    /// The shard a `(query, context)` pair is *assigned* to: the probe
    /// route under [`RoutingMode::Hash`] and [`RoutingMode::Centroid`], the
    /// insert target under [`RoutingMode::ScatterGather`] (whose probes fan
    /// out to every shard instead of routing to one).
    pub fn shard_of(&self, query: &str, context: &[String]) -> usize {
        match self.config.routing {
            RoutingMode::Hash => self.hash_route(query, context),
            RoutingMode::Centroid => self.semantic_route(query, context).0,
            RoutingMode::ScatterGather => self.insert_route(query, context).0,
        }
    }

    /// The stateless FNV route.
    fn hash_route(&self, query: &str, context: &[String]) -> usize {
        (fnv1a(route_key(query, context)) % self.shards.len() as u64) as usize
    }

    /// Centroid route: pinned shard if the root was inserted before, else
    /// nearest centroid of the root embedding, else (unseeded) the hash
    /// route. Returns the root embedding when one was computed so insert
    /// paths can update the winning centroid without re-encoding.
    fn semantic_route(&self, query: &str, context: &[String]) -> (usize, Option<Vec<f32>>) {
        let root = route_key(query, context);
        let router = read_router(&self.router);
        if let Some(&shard) = router.pins.get(&fnv1a(root)) {
            return (shard, None);
        }
        if router.centroids.is_empty() {
            drop(router);
            return (self.hash_route(query, context), None);
        }
        let embedding = self.embed(root);
        let shard = nearest_centroid(embedding.as_slice(), &router.centroids);
        (shard, Some(embedding.into_vec()))
    }

    /// Where an insert lands, per mode, plus the root embedding when the
    /// decision computed one (centroid mode, pin missed).
    fn insert_route(&self, query: &str, context: &[String]) -> (usize, Option<Vec<f32>>) {
        match self.config.routing {
            RoutingMode::Hash => (self.hash_route(query, context), None),
            RoutingMode::Centroid => self.semantic_route(query, context),
            RoutingMode::ScatterGather => {
                let root = route_key(query, context);
                if let Some(&shard) = read_router(&self.router).pins.get(&fnv1a(root)) {
                    return (shard, None);
                }
                (self.least_occupied(), None)
            }
        }
    }

    /// The shard with the fewest entries (lowest index on ties) — the
    /// scatter-gather insert target for a fresh conversation root.
    fn least_occupied(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (read(s).len(), i))
            .min()
            .map(|(_, i)| i)
            .unwrap_or(0)
    }

    /// Post-insert routing bookkeeping for the semantic modes: pin the
    /// root, and (centroid mode, newly pinned root with a computed
    /// embedding) pull the winning centroid toward it with a `1/count`
    /// learning rate. Hash mode never calls this.
    fn note_insert(
        &self,
        shard: usize,
        query: &str,
        context: &[String],
        root_embedding: Option<Vec<f32>>,
    ) {
        let key = fnv1a(route_key(query, context));
        let mut router = self.router.write().unwrap_or_else(|p| p.into_inner());
        let newly_pinned = match router.pins.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(shard);
                true
            }
        };
        if !newly_pinned || self.config.routing != RoutingMode::Centroid {
            return;
        }
        if let Some(embedding) = root_embedding {
            if shard < router.centroids.len() {
                let count = router.counts[shard].saturating_add(1);
                router.counts[shard] = count;
                let centroid = &mut router.centroids[shard];
                let rate = 1.0 / count as f32;
                // c ← normalize(c + rate · (x − c)): an online spherical
                // k-means step, so the routing centroids track what each
                // shard actually stores.
                for (c, &x) in centroid.iter_mut().zip(&embedding) {
                    *c += rate * (x - *c);
                }
                vector::normalize(centroid);
            }
        }
    }

    /// All-shard occupancy (read locks taken one shard at a time, never
    /// nested — see [`apply_capacity_borrowing`] for the freshness caveat).
    fn total_occupancy(&self) -> usize {
        self.shards.iter().map(|s| read(s).len()).sum()
    }

    /// Aggregated statistics across all shards. Per-event counters
    /// (lookups, hits, context rejections, inserts) sum across shards,
    /// plus the serving layer's own scatter-gather counters (scatter
    /// probes run quietly against shards — one fan-out counts as one
    /// logical lookup); `feedback_updates` is **broadcast** to every shard
    /// by [`ShardedCache::record_feedback`], so any one shard's count
    /// already equals the number of feedback events — shard 0's value is
    /// reported rather than an N-times-inflated sum.
    pub fn stats(&self) -> CacheStats {
        let mut total = self
            .shards
            .iter()
            .map(|s| read(s).stats())
            .fold(CacheStats::default(), CacheStats::merged);
        total.feedback_updates = read(&self.shards[0]).stats().feedback_updates;
        total.lookups += self.scatter_lookups.load(Ordering::Relaxed);
        total.hits += self.scatter_hits.load(Ordering::Relaxed);
        total.context_rejections += self.scatter_context_rejections.load(Ordering::Relaxed);
        total
    }

    /// The current cosine threshold τ (uniform across shards).
    pub fn threshold(&self) -> f32 {
        read(&self.shards[0]).threshold()
    }

    /// Replaces the threshold on every shard (and in the serving-layer
    /// config, so a subsequent save persists the live value).
    pub fn set_threshold(&mut self, threshold: f32) {
        for shard in &mut self.shards {
            shard_mut(shard).set_threshold(threshold);
        }
        self.config.threshold = shard_mut(&mut self.shards[0]).threshold();
    }

    /// Applies adaptive threshold feedback to every shard: τ is a global
    /// decision parameter, so all shards move in lock-step and
    /// [`ShardedCache::threshold`] stays well-defined. The serving-layer
    /// config tracks the adapted value so persistence captures it.
    pub fn record_feedback(&mut self, false_hit: bool) {
        for shard in &mut self.shards {
            shard_mut(shard).record_feedback(false_hit);
        }
        self.config.threshold = shard_mut(&mut self.shards[0]).threshold();
    }

    /// Entry counts per shard (diagnostics and tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| read(s).len()).collect()
    }

    /// Per-shard dashboard counters: occupancy, recorded probes/hits,
    /// inserts, derived evictions, and the contention telemetry the
    /// tracked lock paths accumulate. Takes each shard's read lock briefly
    /// (untracked, so polling stats never inflates the contention it
    /// measures).
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let (occupancy, stats) = {
                    let guard = read(shard);
                    (guard.len(), guard.stats())
                };
                ShardStat {
                    occupancy,
                    probes: stats.lookups,
                    hits: stats.hits,
                    inserts: stats.inserts,
                    evictions: stats.inserts.saturating_sub(occupancy as u64),
                    lock_contended: self.lock_contended[i].load(Ordering::Relaxed),
                    lock_wait_us: self.lock_wait_us[i].load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Pre-resolves `query`'s embedding through the memo-cache, reporting
    /// whether it was already memoized (`Some(true)`), had to run the
    /// encoder (`Some(false)`), or no memo is installed (`None`, nothing
    /// encoded). Because memoized embeddings are bit-identical to a cold
    /// encode, a subsequent probe/insert of the same query is unaffected
    /// beyond its internal encode becoming a guaranteed memo hit — the
    /// serve layer's tracing uses this to split "encode" time out of
    /// "probe" time for sampled requests.
    pub fn warm_memo(&self, query: &str) -> Option<bool> {
        let memo = self.memo.as_ref()?;
        let (_, outcome) = memo.get_or_encode_attributed(query, |t| self.encoder.encode(t));
        Some(outcome.hit)
    }

    /// Drops every cached entry and every root pin while keeping the
    /// configuration (live threshold included), the encoder, and any
    /// seeded routing centroids — a flush must not silently degrade
    /// centroid routing to the hash fallback. Statistics reset with the
    /// shards, exactly as rebuilding the cache from scratch would.
    ///
    /// # Errors
    /// Returns [`crate::CacheError::InvalidConfig`] only if the live
    /// config no longer validates (cannot happen for a config that built
    /// this cache).
    pub fn clear(&mut self) -> Result<()> {
        let shard_config = MeanCacheConfig {
            shards: 1,
            routing: RoutingMode::Hash,
            capacity: self.config.capacity.div_ceil(self.shards.len()),
            ..self.config.clone()
        };
        for shard in &mut self.shards {
            let mut fresh = MeanCache::new(self.encoder.clone(), shard_config.clone())?;
            // Flushing entries does not invalidate embeddings — the encoder
            // is unchanged — so the memo survives a clear.
            fresh.set_embedding_memo(self.memo.clone());
            *shard_mut(shard) = fresh;
        }
        let router = self.router.get_mut().unwrap_or_else(|p| p.into_inner());
        router.pins.clear();
        self.scatter_lookups = AtomicU64::new(0);
        self.scatter_hits = AtomicU64::new(0);
        self.scatter_context_rejections = AtomicU64::new(0);
        for counter in self.lock_contended.iter().chain(&self.lock_wait_us) {
            counter.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Looks up an entry by its **public** (namespaced) id, cloning it out
    /// of its shard.
    pub fn entry(&self, public_id: u64) -> Option<CacheEntry> {
        let (shard, local) = self.split_id(public_id);
        read(&self.shards[shard]).entry(local).cloned()
    }

    /// Removes an entry by its **public** id from its shard's store and
    /// index. Returns `true` when the entry existed. Dangling root pins are
    /// reclaimed by [`ShardedCache::sweep_root_pins`]; the serve layer's
    /// TTL/invalidation sweep is the caller.
    pub fn remove_public(&mut self, public_id: u64) -> bool {
        let (shard, local) = self.split_id(public_id);
        shard_mut(&mut self.shards[shard]).remove_entry(local)
    }

    /// Replaces the *total* capacity across shards (split evenly, rounded
    /// up, exactly as [`ShardedCache::new`] does). The serve layer uses
    /// this to apply per-tenant quotas to tenant-private caches.
    pub fn set_total_capacity(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        self.config.capacity = capacity;
        let per_shard = capacity.div_ceil(self.shards.len());
        for shard in &mut self.shards {
            shard_mut(shard).set_capacity(per_shard);
        }
    }

    /// **Public** ids of every resident entry, in shard order. The tenancy
    /// layer uses this to re-register lifecycle metadata for entries
    /// restored from disk.
    pub fn entry_ids(&self) -> Vec<u64> {
        let n = self.shards.len() as u64;
        let mut ids = Vec::with_capacity(self.len());
        for (shard_index, shard) in self.shards.iter().enumerate() {
            let guard = read(shard);
            for entry in guard.entries() {
                ids.push(entry.id * n + shard_index as u64);
            }
        }
        ids
    }

    /// Runs `f` over one shard's cache under its read lock (persistence and
    /// tests; the serving paths go through [`SemanticCache`]).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&MeanCache) -> R) -> R {
        f(&read(&self.shards[shard]))
    }

    /// Exclusive access to one shard (persistence replay).
    pub(crate) fn shard_cache_mut(&mut self, shard: usize) -> &mut MeanCache {
        shard_mut(&mut self.shards[shard])
    }

    /// `local_id * N + shard` — the public id for a shard-local one.
    fn public_id(&self, shard: usize, local: u64) -> u64 {
        local * self.shards.len() as u64 + shard as u64
    }

    /// Inverse of [`ShardedCache::public_id`].
    fn split_id(&self, public_id: u64) -> (usize, u64) {
        let n = self.shards.len() as u64;
        ((public_id % n) as usize, public_id / n)
    }

    /// Inserts through a **shared** reference: takes only the target shard's
    /// write lock, so concurrent inserts to different shards proceed in
    /// parallel and probes of other shards are never blocked. This is the
    /// write path concurrent serving measures (`exp_concurrent
    /// --write-pct`); the `&mut` [`SemanticCache::insert`] remains the
    /// single-owner equivalent (identical ids and routing).
    ///
    /// # Errors
    /// Returns [`crate::CacheError`] on storage failures.
    pub fn insert_shared(&self, query: &str, response: &str, context: &[String]) -> Result<u64> {
        let (shard, root_embedding) = self.insert_route(query, context);
        let semantic = self.config.routing != RoutingMode::Hash;
        let total = if semantic { self.total_occupancy() } else { 0 };
        let local = {
            let mut cache = self.write_tracked(shard);
            apply_capacity_borrowing(self.config.routing, self.config.capacity, &mut cache, total);
            cache.insert(query, response, context)?
        };
        if semantic {
            self.note_insert(shard, query, context, root_embedding);
        }
        Ok(self.public_id(shard, local))
    }

    /// The write half of a lookup through a **shared** reference: upgrades
    /// to the hit shard's write lock just long enough to record the
    /// eviction-policy touch. A miss takes no lock at all. This is the
    /// probe→commit "upgrade" whose contention cost the write-mix
    /// experiment quantifies.
    pub fn commit_shared(&self, outcome: &CacheDecisionOutcome) {
        if let Some(hit) = outcome.hit() {
            let (shard, local) = self.split_id(hit.entry_id);
            let mut local_hit = hit.clone();
            local_hit.entry_id = local;
            self.write_tracked(shard)
                .commit(&CacheDecisionOutcome::Hit(local_hit));
        }
    }

    /// [`SemanticCache::probe`] followed by [`ShardedCache::commit_shared`]:
    /// a full lookup through a shared reference, for concurrent callers that
    /// cannot take `&mut self`. Decision-identical to
    /// [`SemanticCache::lookup`] on a frozen cache.
    pub fn lookup_shared(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        let outcome = self.probe(query, context);
        self.commit_shared(&outcome);
        outcome
    }

    /// Rewrites a shard-local outcome's entry id into the public namespace.
    fn globalise(&self, shard: usize, outcome: CacheDecisionOutcome) -> CacheDecisionOutcome {
        match outcome {
            CacheDecisionOutcome::Hit(mut hit) => {
                hit.entry_id = self.public_id(shard, hit.entry_id);
                CacheDecisionOutcome::Hit(hit)
            }
            CacheDecisionOutcome::Miss => CacheDecisionOutcome::Miss,
        }
    }

    /// Fans one probe out to every shard and merges the decisions: the
    /// highest-scoring context-verified hit wins (public id breaks exact
    /// ties deterministically). Shard probes run quietly; this layer
    /// records one logical lookup.
    fn probe_scatter(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        self.scatter_lookups.fetch_add(1, Ordering::Relaxed);
        let query_embedding = self.embed(query);
        let context_embedding = if self.config.context_checking {
            context.last().map(|text| self.embed(text))
        } else {
            None
        };
        let shard_indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard: Vec<crate::cache::ScatterProbe> = shard_indices
            .par_iter()
            .map(|&shard| {
                self.read_tracked(shard).probe_scatter(
                    query_embedding.as_slice(),
                    context_embedding.as_ref().map(|e| e.as_slice()),
                )
            })
            .collect();
        self.merge_scatter(per_shard.into_iter().enumerate())
    }

    /// Merges per-shard scatter outcomes (see
    /// [`ShardedCache::probe_scatter`]) and maintains the logical hit /
    /// context-rejection counters.
    fn merge_scatter(
        &self,
        per_shard: impl Iterator<Item = (usize, crate::cache::ScatterProbe)>,
    ) -> CacheDecisionOutcome {
        let mut best: Option<CacheHit> = None;
        let mut rejected = false;
        for (shard, probe) in per_shard {
            rejected |= probe.rejected_by_context;
            if let CacheDecisionOutcome::Hit(mut hit) = probe.outcome {
                hit.entry_id = self.public_id(shard, hit.entry_id);
                let better = match &best {
                    None => true,
                    Some(current) => match hit.score.partial_cmp(&current.score) {
                        Some(std::cmp::Ordering::Greater) => true,
                        Some(std::cmp::Ordering::Equal) => hit.entry_id < current.entry_id,
                        _ => false,
                    },
                };
                if better {
                    best = Some(hit);
                }
            }
        }
        match best {
            Some(hit) => {
                self.scatter_hits.fetch_add(1, Ordering::Relaxed);
                CacheDecisionOutcome::Hit(hit)
            }
            None => {
                if rejected {
                    self.scatter_context_rejections
                        .fetch_add(1, Ordering::Relaxed);
                }
                CacheDecisionOutcome::Miss
            }
        }
    }

    /// Batched scatter-gather: encode every probe (and context turn) once,
    /// fan the whole batch to every shard in parallel, merge per probe.
    fn probe_batch_scatter(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        self.scatter_lookups
            .fetch_add(probes.len() as u64, Ordering::Relaxed);
        let query_embeddings: Vec<mc_tensor::Vector> =
            probes.iter().map(|(query, _)| self.embed(query)).collect();
        let context_embeddings: Vec<Option<mc_tensor::Vector>> = probes
            .iter()
            .map(|(_, context)| {
                if self.config.context_checking {
                    context.last().map(|text| self.embed(text))
                } else {
                    None
                }
            })
            .collect();
        let prepared: Vec<(&[f32], Option<&[f32]>)> = query_embeddings
            .iter()
            .zip(&context_embeddings)
            .map(|(q, c)| (q.as_slice(), c.as_ref().map(|e| e.as_slice())))
            .collect();
        let shard_indices: Vec<usize> = (0..self.shards.len()).collect();
        let mut per_shard: Vec<Vec<crate::cache::ScatterProbe>> = shard_indices
            .par_iter()
            .map(|&shard| self.read_tracked(shard).probe_scatter_batch(&prepared))
            .collect();
        (0..probes.len())
            .map(|pos| {
                let column: Vec<(usize, crate::cache::ScatterProbe)> = per_shard
                    .iter_mut()
                    .enumerate()
                    .map(|(shard, outcomes)| {
                        (
                            shard,
                            std::mem::replace(
                                &mut outcomes[pos],
                                crate::cache::ScatterProbe {
                                    outcome: CacheDecisionOutcome::Miss,
                                    rejected_by_context: false,
                                },
                            ),
                        )
                    })
                    .collect();
                // `merge_scatter` counts one logical hit/rejection per
                // probe; lookups were counted for the whole batch above.
                self.merge_scatter(column.into_iter())
            })
            .collect()
    }
}

impl Clone for ShardedCache {
    fn clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(read(s).clone()))
                .collect(),
            config: self.config.clone(),
            encoder: self.encoder.clone(),
            router: RwLock::new(read_router(&self.router).clone()),
            memo: self.memo.clone(),
            scatter_lookups: AtomicU64::new(self.scatter_lookups.load(Ordering::Relaxed)),
            scatter_hits: AtomicU64::new(self.scatter_hits.load(Ordering::Relaxed)),
            scatter_context_rejections: AtomicU64::new(
                self.scatter_context_rejections.load(Ordering::Relaxed),
            ),
            lock_contended: self
                .lock_contended
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            lock_wait_us: self
                .lock_wait_us
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl ShardedCache {
    /// [`read`] with contention accounting: an uncontended acquisition is
    /// a bare `try_read` (no clock access); only a blocked one times its
    /// wait and bumps this shard's [`ShardStat::lock_contended`].
    fn read_tracked(&self, shard: usize) -> std::sync::RwLockReadGuard<'_, MeanCache> {
        match self.shards[shard].try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let guard = read(&self.shards[shard]);
                self.lock_contended[shard].fetch_add(1, Ordering::Relaxed);
                self.lock_wait_us[shard]
                    .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                guard
            }
        }
    }

    /// [`write`] with the same contention accounting as
    /// [`ShardedCache::read_tracked`].
    fn write_tracked(&self, shard: usize) -> std::sync::RwLockWriteGuard<'_, MeanCache> {
        match self.shards[shard].try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let guard = write(&self.shards[shard]);
                self.lock_contended[shard].fetch_add(1, Ordering::Relaxed);
                self.lock_wait_us[shard]
                    .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                guard
            }
        }
    }
}

/// Shared-read a shard, recovering a poisoned lock. Poisoning means some
/// thread panicked while holding the guard; probes never leave partial
/// writes and commits are single-entry updates (worst case: recency
/// metadata for one entry is stale), so the structures are sound to keep
/// using. The serve layer isolates the panic itself (`catch_unwind` around
/// per-batch cache work) and surfaces it via a `panics_caught` metric —
/// recovering here keeps one poisoned request from failing every
/// subsequent request on the shard.
fn read(shard: &RwLock<MeanCache>) -> std::sync::RwLockReadGuard<'_, MeanCache> {
    shard.read().unwrap_or_else(|p| p.into_inner())
}

/// Shared-read the router state (same poison-recovery stance as [`read`]).
fn read_router(router: &RwLock<RouterState>) -> std::sync::RwLockReadGuard<'_, RouterState> {
    router.read().unwrap_or_else(|p| p.into_inner())
}

/// Exclusive access through `&mut self` — no lock taken, cannot block.
fn shard_mut(shard: &mut RwLock<MeanCache>) -> &mut MeanCache {
    shard.get_mut().unwrap_or_else(|p| p.into_inner())
}

/// Exclusively lock one shard through a shared reference (the concurrent
/// write path: `insert_shared` / `commit_shared`). Poisoning gets the same
/// recovery treatment as [`read`].
fn write(shard: &RwLock<MeanCache>) -> std::sync::RwLockWriteGuard<'_, MeanCache> {
    shard.write().unwrap_or_else(|p| p.into_inner())
}

/// Capacity borrowing for the semantic modes, applied to the (locked or
/// exclusively borrowed) target shard just before an insert: grow a full
/// shard into unused global budget; once the global budget is spent, clamp
/// the shard to its own occupancy so the insert evicts locally. Shared by
/// the `&mut` and `insert_shared` paths so the policy cannot drift between
/// them. Hash mode keeps the fixed `capacity / N` split.
///
/// Two documented slacks on the `global_capacity` bound:
/// * `total` is sampled just before locking the target, so concurrent
///   writers can each overshoot by one in flight;
/// * an insert landing on an **empty** shard after the budget is spent has
///   nothing local to evict and is admitted anyway (capacity 1), so total
///   occupancy can settle at up to `global_capacity + N − 1`. Cross-shard
///   eviction would close that gap but needs a second shard's write lock
///   under the first — a lock-ordering hazard not worth a bounded,
///   one-time-per-shard slack.
fn apply_capacity_borrowing(
    routing: RoutingMode,
    global_capacity: usize,
    cache: &mut MeanCache,
    total: usize,
) {
    if routing == RoutingMode::Hash {
        return;
    }
    let len = cache.len();
    if total >= global_capacity {
        cache.set_capacity(len.max(1));
    } else if len >= cache.config().capacity {
        cache.set_capacity(len + 1);
    }
}

impl SemanticCache for ShardedCache {
    fn probe(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        let shard = match self.config.routing {
            RoutingMode::Hash => self.hash_route(query, context),
            RoutingMode::Centroid => self.semantic_route(query, context).0,
            RoutingMode::ScatterGather => return self.probe_scatter(query, context),
        };
        let outcome = self.read_tracked(shard).probe(query, context);
        self.globalise(shard, outcome)
    }

    fn commit(&mut self, outcome: &CacheDecisionOutcome) {
        if let Some(hit) = outcome.hit() {
            let (shard, local) = self.split_id(hit.entry_id);
            let mut local_hit = hit.clone();
            local_hit.entry_id = local;
            shard_mut(&mut self.shards[shard]).commit(&CacheDecisionOutcome::Hit(local_hit));
        }
    }

    fn probe_batch(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        if self.config.routing == RoutingMode::ScatterGather {
            return self.probe_batch_scatter(probes);
        }
        // Partition probe positions by shard, fan the per-shard batches out
        // across the rayon pool (each task holds one shard's read guard for
        // one `probe_batch` pass), then scatter the outcomes back into
        // submission order.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, (query, context)) in probes.iter().enumerate() {
            buckets[self.shard_of(query, context)].push(pos);
        }
        let tasks: Vec<(usize, Vec<usize>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect();
        let per_task: Vec<Vec<CacheDecisionOutcome>> = tasks
            .par_iter()
            .map(|(shard, positions)| {
                let shard_probes: Vec<(&str, &[String])> =
                    positions.iter().map(|&pos| probes[pos]).collect();
                let outcomes = self.read_tracked(*shard).probe_batch(&shard_probes);
                outcomes
                    .into_iter()
                    .map(|outcome| self.globalise(*shard, outcome))
                    .collect()
            })
            .collect();
        let mut results = vec![CacheDecisionOutcome::Miss; probes.len()];
        for ((_, positions), outcomes) in tasks.iter().zip(per_task) {
            for (&pos, outcome) in positions.iter().zip(outcomes) {
                results[pos] = outcome;
            }
        }
        results
    }

    fn insert(&mut self, query: &str, response: &str, context: &[String]) -> Result<u64> {
        let (shard, root_embedding) = self.insert_route(query, context);
        let semantic = self.config.routing != RoutingMode::Hash;
        if semantic {
            let total = self.total_occupancy();
            apply_capacity_borrowing(
                self.config.routing,
                self.config.capacity,
                shard_mut(&mut self.shards[shard]),
                total,
            );
        }
        let local = shard_mut(&mut self.shards[shard]).insert(query, response, context)?;
        if semantic {
            self.note_insert(shard, query, context, root_embedding);
        }
        Ok(self.public_id(shard, local))
    }

    fn lookup_network_overhead_s(&self) -> f64 {
        0.0
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read(s).len()).sum()
    }

    fn storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| read(s).storage_bytes()).sum()
    }

    fn embedding_bytes(&self) -> usize {
        self.shards.iter().map(|s| read(s).embedding_bytes()).sum()
    }

    fn name(&self) -> String {
        let inner = read(&self.shards[0]).name();
        match self.config.routing {
            RoutingMode::Hash => format!("Sharded[{}]{inner}", self.shards.len()),
            mode => format!("Sharded[{};{}]{inner}", self.shards.len(), mode.name()),
        }
    }
}

/// Number of Lloyd iterations [`ShardedCache::seed_centroids`] runs.
const KMEANS_ITERS: usize = 12;

/// Deterministic spherical k-means: farthest-first initialisation (no RNG —
/// seeding must reproduce bit-for-bit across processes), then `iters`
/// Lloyd rounds of assign-to-nearest-centroid / renormalised-mean updates.
/// Returns `(centroids, cluster_sizes)`; both empty when `samples` is.
/// Empty clusters are re-seeded from the sample that is farthest from every
/// current centroid, so `k` shards always get `k` usable centroids when at
/// least one sample exists.
fn spherical_kmeans(samples: &[&[f32]], k: usize, iters: usize) -> (Vec<Vec<f32>>, Vec<u64>) {
    if samples.is_empty() || k == 0 {
        return (Vec::new(), Vec::new());
    }
    let dims = samples[0].len();
    // Farthest-first traversal: start from sample 0, repeatedly add the
    // sample with the lowest best-similarity to any chosen centre.
    let mut centroids: Vec<Vec<f32>> = vec![samples[0].to_vec()];
    let mut best_sim: Vec<f32> = samples.iter().map(|s| vector::dot(s, samples[0])).collect();
    while centroids.len() < k {
        let next = best_sim
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        centroids.push(samples[next].to_vec());
        for (sim, sample) in best_sim.iter_mut().zip(samples) {
            *sim = sim.max(vector::dot(sample, samples[next]));
        }
    }
    let mut counts = vec![0u64; k];
    for _ in 0..iters {
        let mut sums = vec![vec![0.0f32; dims]; k];
        counts = vec![0u64; k];
        for sample in samples {
            let cell = nearest_centroid(sample, &centroids);
            vector::axpy(1.0, sample, &mut sums[cell]);
            counts[cell] += 1;
        }
        for (cell, sum) in sums.iter_mut().enumerate() {
            if counts[cell] == 0 {
                // Re-seed an empty cell from the sample farthest from every
                // live centroid, so no shard is left unroutable.
                let farthest = samples
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let sa = centroid_affinity(a, &centroids);
                        let sb = centroid_affinity(b, &centroids);
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[cell] = samples[farthest].to_vec();
                counts[cell] = 1;
                continue;
            }
            vector::normalize(sum);
            centroids[cell] = std::mem::take(sum);
        }
    }
    (centroids, counts)
}

/// Best similarity of `sample` to any centroid.
fn centroid_affinity(sample: &[f32], centroids: &[Vec<f32>]) -> f32 {
    centroids
        .iter()
        .map(|c| vector::dot(sample, c))
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Index of the centroid with the highest dot product (all unit vectors, so
/// dot == cosine). Lowest index wins exact ties — deterministic routing.
fn nearest_centroid(embedding: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_sim = f32::NEG_INFINITY;
    for (i, centroid) in centroids.iter().enumerate() {
        let sim = vector::dot(embedding, centroid);
        if sim > best_sim {
            best_sim = sim;
            best = i;
        }
    }
    best
}

/// The root query text of `entry`'s conversation chain, following parent
/// links through `by_id` (the entry's own query when standalone). A
/// dangling or cyclic link — impossible for logs written by this crate, but
/// this also runs over reloaded files — stops at the last resolvable hop.
fn chain_root<'a>(by_id: &HashMap<u64, &'a CacheEntry>, entry: &'a CacheEntry) -> &'a str {
    let mut current = entry;
    for _ in 0..=by_id.len() {
        match current.parent.and_then(|p| by_id.get(&p)) {
            Some(parent) => current = parent,
            None => break,
        }
    }
    &current.query
}

/// Rebuilds `source` under `new_config` by replaying every cached entry
/// through fresh routing — the explicit path for changing a live (or
/// reloaded) cache's shard count or [`RoutingMode`].
///
/// Entries keep their query, response, embedding and parent links (parents
/// are remapped to their new shard-local ids; a conversation always lands
/// whole in one shard, whatever the target mode). Entry ids — and therefore
/// the public namespaced ids — are reassigned. Access recency/frequency
/// metadata is reset, exactly as a save/load cycle resets it. When the new
/// capacity is smaller than the entry count, later-replayed entries evict
/// earlier ones under the target's eviction policy.
///
/// Switching *to* [`RoutingMode::Centroid`]: the source's centroids are
/// carried over when it already had compatible ones; otherwise fresh
/// centroids are seeded by k-means over the replayed entries' own
/// embeddings.
///
/// # Errors
/// Returns [`crate::CacheError::InvalidConfig`] for an invalid
/// `new_config`, and propagates storage failures from the replay.
pub fn reshard(source: &ShardedCache, new_config: MeanCacheConfig) -> Result<ShardedCache> {
    let mut target = ShardedCache::new(source.encoder().clone(), new_config)?;
    // The encoder is unchanged, so memoized embeddings stay valid across a
    // reshard: carry the memo (and its warm contents) to the target.
    target.set_embedding_memo(source.embedding_memo().cloned());
    if target.config.routing == RoutingMode::Centroid {
        let (centroids, counts) = source.centroid_state();
        let compatible = centroids.len() == target.shard_count()
            && centroids
                .iter()
                .all(|c| c.len() == target.encoder().output_dim());
        if compatible && !centroids.is_empty() {
            target.restore_centroid_state(centroids, counts)?;
        } else {
            // Seed from the entries themselves: deterministic shard order,
            // ascending ids.
            let mut samples: Vec<Vec<f32>> = Vec::new();
            for shard in 0..source.shard_count() {
                source.with_shard(shard, |cache| {
                    let mut entries: Vec<&CacheEntry> = cache.entries().collect();
                    entries.sort_by_key(|e| e.id);
                    samples.extend(entries.iter().map(|e| e.embedding.as_slice().to_vec()));
                });
            }
            target.seed_centroids(&samples)?;
        }
    }
    for shard in 0..source.shard_count() {
        let mut entries: Vec<CacheEntry> =
            source.with_shard(shard, |cache| cache.entries().cloned().collect());
        // Resolve every entry's conversation root up front (cloning only
        // the root *strings*, not the embedding-heavy entries a second
        // time); the borrow map dies before the sort moves the entries.
        let roots: HashMap<u64, String> = {
            let by_id_refs: HashMap<u64, &CacheEntry> = entries.iter().map(|e| (e.id, e)).collect();
            entries
                .iter()
                .map(|e| (e.id, chain_root(&by_id_refs, e).to_string()))
                .collect()
        };
        // Parents before children (ids are allocated monotonically, so a
        // parent's id is always below its children's).
        entries.sort_by_key(|e| (e.parent.is_some(), e.id));
        let mut remap: HashMap<u64, (usize, u64)> = HashMap::with_capacity(entries.len());
        for mut entry in entries {
            let root = roots[&entry.id].clone();
            let old_id = entry.id;
            let target_shard = target.replay_route(&root);
            entry.parent = match entry.parent {
                None => None,
                Some(old_parent) => match remap.get(&old_parent) {
                    // Same root ⇒ same pin ⇒ same shard; a parent that was
                    // itself evicted during replay leaves the child
                    // standalone-rooted rather than dangling.
                    Some((parent_shard, new_parent)) if *parent_shard == target_shard => {
                        Some(*new_parent)
                    }
                    _ => None,
                },
            };
            let cache = target.shard_cache_mut(target_shard);
            let new_id = cache.reserve_id();
            entry.id = new_id;
            cache.restore_entry(entry)?;
            remap.insert(old_id, (target_shard, new_id));
            target.pin_root(&root, target_shard);
        }
    }
    Ok(target)
}

impl ShardedCache {
    /// Replay-time routing: pins first (so every entry of a conversation
    /// follows its root), then the target mode's stateless rule. Centroids
    /// stay **frozen** during a replay — the k-means seeding already saw
    /// the data, and freezing keeps the replay order-insensitive for
    /// standalone entries.
    fn replay_route(&self, root: &str) -> usize {
        let router = read_router(&self.router);
        if let Some(&shard) = router.pins.get(&fnv1a(root)) {
            return shard;
        }
        match self.config.routing {
            RoutingMode::Hash => (fnv1a(root) % self.shards.len() as u64) as usize,
            RoutingMode::Centroid => {
                if router.centroids.is_empty() {
                    return (fnv1a(root) % self.shards.len() as u64) as usize;
                }
                let embedding = self.embed(root);
                nearest_centroid(embedding.as_slice(), &router.centroids)
            }
            RoutingMode::ScatterGather => {
                drop(router);
                self.least_occupied()
            }
        }
    }

    /// Records a root → shard pin (replay/reload path; the live insert path
    /// goes through `note_insert`).
    fn pin_root(&mut self, root: &str, shard: usize) {
        self.router
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .pins
            .insert(fnv1a(root), shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::ModelProfile;

    fn encoder() -> QueryEncoder {
        QueryEncoder::new(ModelProfile::tiny(), 7).unwrap()
    }

    fn sharded(shards: usize, threshold: f32) -> ShardedCache {
        ShardedCache::new(
            encoder(),
            MeanCacheConfig::default()
                .with_threshold(threshold)
                .with_shards(shards),
        )
        .unwrap()
    }

    fn sharded_with(shards: usize, threshold: f32, routing: RoutingMode) -> ShardedCache {
        ShardedCache::new(
            encoder(),
            MeanCacheConfig::default()
                .with_threshold(threshold)
                .with_shards(shards)
                .with_routing(routing),
        )
        .unwrap()
    }

    #[test]
    fn sharded_cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedCache>();
        assert_send_sync::<MeanCache>();
    }

    #[test]
    fn routing_is_deterministic_and_conversation_affine() {
        let cache = sharded(8, 0.6);
        let q = "how do I bake sourdough bread";
        assert_eq!(cache.shard_of(q, &[]), cache.shard_of(q, &[]));
        // A follow-up routes by its conversation root, not its own text.
        let root = vec!["how do I bake sourdough bread".to_string()];
        assert_eq!(
            cache.shard_of("make it whole-grain", &root),
            cache.shard_of(q, &[]),
        );
        // Deeper chains keep the same root and therefore the same shard.
        let deep = vec![
            "how do I bake sourdough bread".to_string(),
            "make it whole-grain".to_string(),
        ];
        assert_eq!(
            cache.shard_of("and reduce the salt", &deep),
            cache.shard_of(q, &[]),
        );
    }

    #[test]
    fn exact_repeats_and_context_chains_hit_across_shards() {
        let mut cache = sharded(4, 0.6);
        let parent_id = cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        let child_id = cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();
        assert_ne!(parent_id, child_id);

        // Exact repeat of the standalone query: hit with score ~1.
        let hit = cache.lookup("draw a line plot in python", &[]);
        assert_eq!(hit.hit().unwrap().entry_id, parent_id);
        // Same conversation: contextual hit; wrong conversation: miss.
        let same = cache.lookup("change the color to red", &ctx);
        assert!(same.hit().unwrap().contextual);
        assert_eq!(same.hit().unwrap().entry_id, child_id);
        // A different conversation routes by *its* root — whichever shard
        // that is, the probe must miss (either the shard holds nothing
        // similar, or context verification rejects the candidate).
        assert!(cache
            .lookup("change the color to red", &["draw a circle".to_string()])
            .is_miss());
        assert!(cache.lookup("change the color to red", &[]).is_miss());
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn shard_stats_track_per_shard_activity() {
        let mut cache = sharded(4, 0.6);
        for i in 0..24 {
            cache
                .insert(&format!("distinct topic number {i}"), &format!("r{i}"), &[])
                .unwrap();
        }
        cache.lookup("distinct topic number 3", &[]);
        cache.lookup("distinct topic number 9", &[]);

        let stats = cache.shard_stats();
        assert_eq!(stats.len(), 4);
        let total_occupancy: usize = stats.iter().map(|s| s.occupancy).sum();
        assert_eq!(total_occupancy, cache.len());
        let total_inserts: u64 = stats.iter().map(|s| s.inserts).sum();
        assert_eq!(total_inserts, 24);
        let total_hits: u64 = stats.iter().map(|s| s.hits).sum();
        assert_eq!(total_hits, 2);
        // Nothing evicted yet, and the single-owner path never contends.
        assert!(stats.iter().all(|s| s.evictions == 0));
        assert!(stats.iter().all(|s| s.lock_contended == 0));

        // The JSON representation round-trips (the serve snapshot embeds
        // these).
        let json = serde_json::to_string(&stats).unwrap();
        let parsed: Vec<ShardStat> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, stats);

        cache.clear().unwrap();
        assert!(cache
            .shard_stats()
            .iter()
            .all(|s| s == &ShardStat::default()));
    }

    #[test]
    fn warm_memo_reports_attribution_only_with_a_memo() {
        let mut cache = sharded(2, 0.6);
        assert_eq!(cache.warm_memo("hello there"), None);
        cache.set_embedding_memo(Some(Arc::new(EmbeddingMemo::new(64, 0))));
        assert_eq!(cache.warm_memo("hello there"), Some(false));
        assert_eq!(cache.warm_memo("hello there"), Some(true));
        // Warming does not perturb probe results: the probe's internal
        // encode is now a guaranteed memo hit with an identical vector.
        cache.insert_shared("hello there", "hi", &[]).unwrap();
        assert!(cache.probe("hello there", &[]).hit().is_some());
    }

    #[test]
    fn public_ids_are_unique_and_resolve_to_their_entries() {
        let mut cache = sharded(4, 0.6);
        let mut ids = Vec::new();
        for i in 0..40 {
            let id = cache
                .insert(&format!("distinct topic number {i}"), &format!("r{i}"), &[])
                .unwrap();
            ids.push((id, format!("distinct topic number {i}")));
        }
        let unique: std::collections::HashSet<u64> = ids.iter().map(|(id, _)| *id).collect();
        assert_eq!(unique.len(), ids.len(), "public ids must not collide");
        for (id, query) in &ids {
            let entry = cache.entry(*id).expect("public id resolves");
            assert_eq!(&entry.query, query);
        }
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), 40);
        assert!(
            cache.shard_lens().iter().filter(|&&l| l > 0).count() > 1,
            "40 distinct queries must spread over more than one shard: {:?}",
            cache.shard_lens()
        );
    }

    #[test]
    fn single_shard_matches_unsharded_decisions_exactly() {
        let mut flat =
            MeanCache::new(encoder(), MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        let mut one = sharded(1, 0.6);
        let items = [
            ("how do I bake sourdough bread", "Ferment overnight."),
            ("what is federated learning", "On-device training."),
            ("tips for travelling to japan", "Get a rail pass."),
        ];
        for (q, r) in items {
            flat.insert(q, r, &[]).unwrap();
            one.insert(q, r, &[]).unwrap();
        }
        for probe in [
            "how do I bake sourdough bread",
            "explain federated learning",
            "what is the capital of portugal",
        ] {
            assert_eq!(
                flat.lookup(probe, &[]),
                one.lookup(probe, &[]),
                "probe {probe:?} diverged"
            );
        }
        assert_eq!(flat.stats(), one.stats());
    }

    #[test]
    fn probe_batch_matches_sequential_probes() {
        let mut cache = sharded(4, 0.6);
        for i in 0..25 {
            cache
                .insert(&format!("unique subject number {i}"), "resp", &[])
                .unwrap();
        }
        let probes: Vec<(String, Vec<String>)> = (0..25)
            .map(|i| (format!("unique subject number {i}"), Vec::new()))
            .chain((0..5).map(|i| (format!("never cached topic {i}"), Vec::new())))
            .collect();
        let refs: Vec<(&str, &[String])> = probes
            .iter()
            .map(|(q, c)| (q.as_str(), c.as_slice()))
            .collect();
        let batched = cache.probe_batch(&refs);
        for ((query, context), batched_outcome) in probes.iter().zip(&batched) {
            assert_eq!(
                &cache.probe(query, context),
                batched_outcome,
                "probe {query:?} diverged"
            );
        }
    }

    #[test]
    fn feedback_and_threshold_stay_uniform_across_shards() {
        let mut cache = sharded(3, 0.7);
        cache.record_feedback(true);
        let raised = cache.threshold();
        assert!(raised > 0.7);
        for shard in 0..cache.shard_count() {
            assert_eq!(cache.with_shard(shard, |c| c.threshold()), raised);
        }
        cache.set_threshold(0.5);
        for shard in 0..cache.shard_count() {
            assert_eq!(cache.with_shard(shard, |c| c.threshold()), 0.5);
        }
        // One feedback event, counted once — not once per shard.
        assert_eq!(cache.stats().feedback_updates, 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let cache = ShardedCache::new(
            encoder(),
            MeanCacheConfig::default()
                .with_shards(4)
                .with_threshold(0.6),
        )
        .unwrap();
        // 100_000 total over 4 shards: each shard holds 25_000.
        assert_eq!(cache.with_shard(0, |c| c.config().capacity), 25_000);
        assert_eq!(cache.with_shard(0, |c| c.config().shards), 1);
        assert_eq!(cache.config().shards, 4);
        assert!(cache.name().starts_with("Sharded[4]"));
        assert_eq!(cache.lookup_network_overhead_s(), 0.0);
    }

    #[test]
    fn shared_inserts_match_exclusive_inserts() {
        let mut exclusive = sharded(4, 0.6);
        let shared = sharded(4, 0.6);
        for i in 0..20 {
            let q = format!("distinct shared topic {i}");
            let a = exclusive.insert(&q, "resp", &[]).unwrap();
            let b = shared.insert_shared(&q, "resp", &[]).unwrap();
            assert_eq!(a, b, "shared and exclusive inserts must allocate alike");
        }
        assert_eq!(exclusive.shard_lens(), shared.shard_lens());
        for i in 0..20 {
            let q = format!("distinct shared topic {i}");
            assert_eq!(exclusive.probe(&q, &[]), shared.probe(&q, &[]));
        }
    }

    #[test]
    fn concurrent_shared_inserts_land_once_each() {
        let cache = sharded(4, 0.6);
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        cache
                            .insert_shared(&format!("writer {t} topic {i}"), "resp", &[])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), threads * per_thread);
        assert_eq!(cache.stats().inserts, (threads * per_thread) as u64);
        // Every inserted query is findable (ids resolved, index consistent).
        for t in 0..threads {
            for i in 0..per_thread {
                assert!(
                    cache.probe(&format!("writer {t} topic {i}"), &[]).is_hit(),
                    "writer {t} topic {i} must be probeable"
                );
            }
        }
    }

    #[test]
    fn lookup_shared_touches_like_lookup() {
        let mut a = sharded(2, 0.6);
        let b = sharded(2, 0.6);
        a.insert("what is federated learning", "FL.", &[]).unwrap();
        b.insert_shared("what is federated learning", "FL.", &[])
            .unwrap();
        assert_eq!(
            a.lookup("what is federated learning", &[]),
            b.lookup_shared("what is federated learning", &[]),
        );
        assert_eq!(a.stats(), b.stats());
        // A miss commits nothing and takes no write lock.
        assert!(b.lookup_shared("entirely uncached question", &[]).is_miss());
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let mut cache = sharded(2, 0.6);
        cache
            .insert("what is federated learning", "FL.", &[])
            .unwrap();
        let snapshot = cache.clone();
        cache.insert("another entry entirely", "x", &[]).unwrap();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(cache.len(), 2);
        assert!(snapshot.probe("what is federated learning", &[]).is_hit());
    }

    // ---- routing modes -----------------------------------------------------

    #[test]
    fn routing_mode_names_round_trip() {
        for mode in [
            RoutingMode::Hash,
            RoutingMode::Centroid,
            RoutingMode::ScatterGather,
        ] {
            assert_eq!(RoutingMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(RoutingMode::from_name("bogus"), None);
        assert_eq!(RoutingMode::default(), RoutingMode::Hash);
    }

    #[test]
    fn scatter_gather_finds_entries_on_any_shard() {
        let mut hash = sharded(8, 0.6);
        let mut scatter = sharded_with(8, 0.6, RoutingMode::ScatterGather);
        // Insert through *hash* routing into the scatter cache's shards by
        // copying the entries over via reshard — instead, simply insert
        // into each and verify every exact repeat hits under scatter.
        for i in 0..30 {
            let q = format!("scatter subject number {i}");
            hash.insert(&q, "resp", &[]).unwrap();
            scatter.insert(&q, "resp", &[]).unwrap();
        }
        for i in 0..30 {
            let q = format!("scatter subject number {i}");
            assert!(scatter.probe(&q, &[]).is_hit(), "{q} must hit");
        }
        // Load balancing: least-occupied insert keeps shards level.
        let lens = scatter.shard_lens();
        let (min, max) = (
            lens.iter().min().copied().unwrap(),
            lens.iter().max().copied().unwrap(),
        );
        assert!(max - min <= 1, "scatter inserts must balance: {lens:?}");
        assert_eq!(scatter.stats().lookups, 30);
        assert_eq!(scatter.stats().hits, 30);
        assert!(scatter.name().contains("scatter-gather"));
    }

    #[test]
    fn scatter_gather_matches_unsharded_decisions_on_standalone_entries() {
        let mut flat =
            MeanCache::new(encoder(), MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        let mut scatter = sharded_with(4, 0.6, RoutingMode::ScatterGather);
        let items = [
            "how can I increase the battery life of my smartphone",
            "how do I bake sourdough bread at home",
            "what is federated learning",
            "tips for travelling to japan in spring",
        ];
        for (i, q) in items.iter().enumerate() {
            flat.insert(q, &format!("resp {i}"), &[]).unwrap();
            scatter.insert(q, &format!("resp {i}"), &[]).unwrap();
        }
        for probe in [
            "how can I increase the battery life of my phone",
            "how do I bake sourdough bread",
            "explain federated learning",
            "what is the capital city of portugal",
        ] {
            let a = flat.probe(probe, &[]);
            let b = scatter.probe(probe, &[]);
            assert_eq!(a.is_hit(), b.is_hit(), "probe {probe:?} diverged");
            if let (Some(ha), Some(hb)) = (a.hit(), b.hit()) {
                assert_eq!(ha.response, hb.response, "probe {probe:?} response");
                assert_eq!(
                    ha.score.to_bits(),
                    hb.score.to_bits(),
                    "probe {probe:?} score"
                );
            }
        }
    }

    #[test]
    fn scatter_gather_batch_matches_single_probes() {
        let mut cache = sharded_with(4, 0.6, RoutingMode::ScatterGather);
        for i in 0..20 {
            cache
                .insert(&format!("batchable subject {i}"), "resp", &[])
                .unwrap();
        }
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();
        let probes: Vec<(String, Vec<String>)> = (0..20)
            .map(|i| (format!("batchable subject {i}"), Vec::new()))
            .chain(std::iter::once((
                "change the color to red".to_string(),
                ctx.clone(),
            )))
            .chain((0..5).map(|i| (format!("never cached topic {i}"), Vec::new())))
            .collect();
        let refs: Vec<(&str, &[String])> = probes
            .iter()
            .map(|(q, c)| (q.as_str(), c.as_slice()))
            .collect();
        let batched = cache.probe_batch(&refs);
        for ((query, context), batched_outcome) in probes.iter().zip(&batched) {
            assert_eq!(
                &cache.probe(query, context),
                batched_outcome,
                "probe {query:?} diverged"
            );
        }
    }

    #[test]
    fn scatter_gather_keeps_conversations_affine() {
        let mut cache = sharded_with(4, 0.6, RoutingMode::ScatterGather);
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        let child = cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();
        // Root pin: the follow-up must land in its parent's shard so the
        // parent link resolves.
        let entry = cache.entry(child).unwrap();
        assert!(entry.parent.is_some(), "follow-up must link its parent");
        let same = cache.lookup("change the color to red", &ctx);
        assert!(same.hit().unwrap().contextual);
        assert!(cache
            .lookup("change the color to red", &["draw a circle".to_string()])
            .is_miss());
    }

    #[test]
    fn centroid_routing_pins_exact_repeats_and_routes_paraphrases_semantically() {
        let mut cache = sharded_with(4, 0.55, RoutingMode::Centroid);
        let seeds = [
            "how can I increase the battery life of my smartphone",
            "how do I bake sourdough bread at home",
            "what is federated learning exactly",
            "tips for travelling to japan in spring",
        ];
        cache.seed_centroids_from_texts(&seeds).unwrap();
        assert!(cache.centroids_seeded());
        for (i, q) in seeds.iter().enumerate() {
            cache.insert(q, &format!("resp {i}"), &[]).unwrap();
        }
        assert_eq!(cache.root_pin_count(), 4);
        // Exact repeats hit via the pin table.
        for q in seeds {
            assert!(cache.probe(q, &[]).is_hit(), "{q} must hit");
        }
        // A paraphrase routes by embedding to the same centroid as its
        // original and therefore hits.
        let hit = cache.probe("how can I increase the battery life of my phone", &[]);
        assert!(
            hit.is_hit(),
            "paraphrase must route to its original's shard"
        );
        assert!(hit.hit().unwrap().response.contains("resp 0"));
        assert!(cache.name().contains("centroid"));
    }

    #[test]
    fn unseeded_centroid_mode_falls_back_to_hash_routing() {
        let mut centroid = sharded_with(8, 0.6, RoutingMode::Centroid);
        let hash = sharded(8, 0.6);
        assert!(!centroid.centroids_seeded());
        // Same shard assignment as hash for unseeded fresh roots.
        for i in 0..20 {
            let q = format!("fallback subject number {i}");
            assert_eq!(centroid.shard_of(&q, &[]), hash.shard_of(&q, &[]));
        }
        centroid
            .insert("what is federated learning", "FL.", &[])
            .unwrap();
        assert!(centroid.probe("what is federated learning", &[]).is_hit());
    }

    #[test]
    fn capacity_borrowing_lets_a_hot_shard_grow_into_the_global_budget() {
        // One conversation (one root pin ⇒ one shard) inserting 8 entries
        // into a 4-shard cache with a *total* capacity of 8. The fixed
        // split would cap the hot shard at 2; borrowing must keep all 8.
        let mut config = MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_shards(4)
            .with_routing(RoutingMode::ScatterGather);
        config.capacity = 8;
        let mut cache = ShardedCache::new(encoder(), config.clone()).unwrap();
        let root = "the very first question of a long conversation".to_string();
        cache.insert(&root, "r0", &[]).unwrap();
        let mut context = vec![root.clone()];
        for i in 1..8 {
            cache
                .insert(&format!("follow-up number {i}"), &format!("r{i}"), &context)
                .unwrap();
            context.push(format!("follow-up number {i}"));
        }
        assert_eq!(cache.len(), 8, "borrowing must retain the whole budget");
        assert_eq!(
            cache.shard_lens().iter().filter(|&&l| l > 0).count(),
            1,
            "one conversation pins to one shard"
        );
        // The 9th insert exceeds the global budget: an eviction happens and
        // the total stays at 8.
        cache.insert("follow-up number 8", "r8", &context).unwrap();
        assert_eq!(cache.len(), 8, "global budget must hold after borrowing");

        // Hash mode keeps the fixed split: the same traffic caps the hot
        // shard at ceil(8/4) = 2.
        let mut hash_cache = ShardedCache::new(
            encoder(),
            MeanCacheConfig {
                routing: RoutingMode::Hash,
                ..config
            },
        )
        .unwrap();
        hash_cache.insert(&root, "r0", &[]).unwrap();
        let mut context = vec![root.clone()];
        for i in 1..8 {
            hash_cache
                .insert(&format!("follow-up number {i}"), &format!("r{i}"), &context)
                .unwrap();
            context.push(format!("follow-up number {i}"));
        }
        assert_eq!(
            hash_cache.len(),
            2,
            "hash mode must keep the fixed capacity/N split"
        );
    }

    #[test]
    fn clear_empties_contents_but_keeps_centroids_and_threshold() {
        let mut cache = sharded_with(3, 0.6, RoutingMode::Centroid);
        let seeds: Vec<String> = (0..9).map(|i| format!("clear seed subject {i}")).collect();
        cache.seed_centroids_from_texts(&seeds).unwrap();
        for q in &seeds {
            cache.insert(q, "resp", &[]).unwrap();
        }
        cache.set_threshold(0.42);
        cache.clear().unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.root_pin_count(), 0, "pins are content-derived");
        assert!(
            cache.centroids_seeded(),
            "a flush must not degrade centroid routing to the hash fallback"
        );
        assert_eq!(cache.threshold(), 0.42, "live threshold survives");
        assert_eq!(cache.stats().inserts, 0, "statistics reset with contents");
        // The cleared cache still routes and serves.
        cache.insert("post-clear entry", "resp", &[]).unwrap();
        assert!(cache.probe("post-clear entry", &[]).is_hit());
    }

    #[test]
    fn reshard_changes_shard_count_and_preserves_contents() {
        let mut cache = sharded(3, 0.6);
        for i in 0..24 {
            cache
                .insert(
                    &format!("reshard subject number {i}"),
                    &format!("r{i}"),
                    &[],
                )
                .unwrap();
        }
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();

        for (shards, routing) in [
            (5, RoutingMode::Hash),
            (2, RoutingMode::Centroid),
            (4, RoutingMode::ScatterGather),
        ] {
            let resharded = reshard(
                &cache,
                cache
                    .config()
                    .clone()
                    .with_shards(shards)
                    .with_routing(routing),
            )
            .unwrap();
            assert_eq!(resharded.shard_count(), shards);
            assert_eq!(resharded.len(), cache.len(), "{routing:?} lost entries");
            for i in 0..24 {
                let q = format!("reshard subject number {i}");
                assert!(
                    resharded.probe(&q, &[]).is_hit(),
                    "{q} must hit after resharding to {shards} {routing:?}"
                );
            }
            // The conversation chain survives whole.
            assert!(resharded
                .probe("change the color to red", &ctx)
                .hit()
                .map(|h| h.contextual)
                .unwrap_or(false));
            assert!(resharded
                .probe("change the color to red", &["draw a circle".to_string()])
                .is_miss());
        }
    }

    #[test]
    fn kmeans_is_deterministic_and_covers_all_cells() {
        let samples: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let mut v = vec![0.0f32; 8];
                v[i % 8] = 1.0;
                v[(i + 3) % 8] = 0.5;
                vector::normalize(&mut v);
                v
            })
            .collect();
        let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
        let (a, counts_a) = spherical_kmeans(&refs, 4, KMEANS_ITERS);
        let (b, _) = spherical_kmeans(&refs, 4, KMEANS_ITERS);
        assert_eq!(a, b, "seeding must be deterministic");
        assert_eq!(a.len(), 4);
        assert!(
            counts_a.iter().all(|&c| c > 0),
            "no empty cells: {counts_a:?}"
        );
        for c in &a {
            assert!((vector::norm(c) - 1.0).abs() < 1e-4, "centroids unit-norm");
        }
        // Degenerate inputs.
        assert!(spherical_kmeans(&[], 4, 3).0.is_empty());
        let one = [refs[0]];
        let (cs, _) = spherical_kmeans(&one, 3, 3);
        assert_eq!(cs.len(), 3, "k > n still yields k usable centroids");
    }

    // ---- root-pin GC -------------------------------------------------------

    #[test]
    fn sweep_root_pins_drops_only_dead_roots() {
        let mut config = MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_shards(2)
            .with_routing(RoutingMode::ScatterGather);
        config.capacity = 4;
        let mut cache = ShardedCache::new(encoder(), config).unwrap();
        for i in 0..10 {
            cache
                .insert(&format!("sweepable subject number {i}"), "resp", &[])
                .unwrap();
        }
        assert_eq!(cache.root_pin_count(), 10, "every root pinned at insert");
        assert!(cache.len() < 10, "the small budget must have evicted");
        let live = cache.len();
        let swept = cache.sweep_root_pins();
        assert_eq!(swept, 10 - live, "exactly the evicted roots are swept");
        assert_eq!(cache.root_pin_count(), live);
        // Idempotent: nothing left to sweep.
        assert_eq!(cache.sweep_root_pins(), 0);
        // Live entries still probe through their (kept) pins.
        let served: usize = (0..10)
            .filter(|i| {
                cache
                    .probe(&format!("sweepable subject number {i}"), &[])
                    .is_hit()
            })
            .count();
        assert!(served >= live.min(4), "live entries must stay probeable");
    }

    #[test]
    fn sweep_root_pins_keeps_conversation_chains_via_their_root() {
        let mut cache = sharded_with(2, 0.6, RoutingMode::Centroid);
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();
        // One conversation, one pinned root; both entries resolve to it.
        assert_eq!(cache.root_pin_count(), 1);
        assert_eq!(cache.sweep_root_pins(), 0, "a live chain keeps its pin");
        assert_eq!(cache.root_pin_count(), 1);
        assert!(cache.probe("change the color to red", &ctx).is_hit());
    }

    // ---- embedding memo ----------------------------------------------------

    #[test]
    fn memo_backed_probes_make_bit_identical_decisions() {
        for routing in [
            RoutingMode::Hash,
            RoutingMode::Centroid,
            RoutingMode::ScatterGather,
        ] {
            let mut plain = sharded_with(4, 0.6, routing);
            let mut memoized = sharded_with(4, 0.6, routing);
            memoized.set_embedding_memo(Some(Arc::new(EmbeddingMemo::new(256, 0))));
            let items = [
                "how can I increase the battery life of my smartphone",
                "how do I bake sourdough bread at home",
                "what is federated learning",
                "draw a line plot in python",
            ];
            for (i, q) in items.iter().enumerate() {
                plain.insert(q, &format!("resp {i}"), &[]).unwrap();
                memoized.insert(q, &format!("resp {i}"), &[]).unwrap();
            }
            let ctx = vec!["draw a line plot in python".to_string()];
            plain
                .insert("change the color to red", "Pass color='red'.", &ctx)
                .unwrap();
            memoized
                .insert("change the color to red", "Pass color='red'.", &ctx)
                .unwrap();
            let probes: [(&str, &[String]); 4] = [
                ("how can I increase the battery life of my phone", &[]),
                ("How Do I Bake Sourdough Bread At Home", &[]),
                ("change the color to red", &ctx),
                ("what is the capital city of portugal", &[]),
            ];
            // Two passes: the second memoized pass answers from the memo.
            for _ in 0..2 {
                for (query, context) in probes {
                    let a = plain.probe(query, context);
                    let b = memoized.probe(query, context);
                    assert_eq!(a.is_hit(), b.is_hit(), "{routing:?} {query:?}");
                    if let (Some(x), Some(y)) = (a.hit(), b.hit()) {
                        assert_eq!(x.response, y.response, "{routing:?} {query:?}");
                        assert_eq!(
                            x.score.to_bits(),
                            y.score.to_bits(),
                            "{routing:?} {query:?} score must be bit-identical"
                        );
                    }
                }
            }
            let stats = memoized.embedding_memo().unwrap().stats();
            assert!(stats.hits > 0, "{routing:?}: repeats must hit the memo");
        }
    }

    #[test]
    fn memo_survives_clone_clear_and_reshard() {
        let mut cache = sharded(2, 0.6);
        let memo = Arc::new(EmbeddingMemo::new(64, 0));
        cache.set_embedding_memo(Some(Arc::clone(&memo)));
        cache
            .insert("what is federated learning", "FL.", &[])
            .unwrap();
        for shard in 0..cache.shard_count() {
            assert!(
                cache.with_shard(shard, |c| c.embedding_memo().is_some()),
                "every shard must share the memo"
            );
        }
        let cloned = cache.clone();
        assert!(Arc::ptr_eq(cloned.embedding_memo().unwrap(), &memo));
        let resharded = reshard(&cache, cache.config().clone().with_shards(3)).unwrap();
        assert!(Arc::ptr_eq(resharded.embedding_memo().unwrap(), &memo));
        assert!(resharded.with_shard(0, |c| c.embedding_memo().is_some()));
        cache.clear().unwrap();
        assert!(
            Arc::ptr_eq(cache.embedding_memo().unwrap(), &memo),
            "a flush keeps the memo (embeddings are still valid)"
        );
        assert!(cache.with_shard(0, |c| c.embedding_memo().is_some()));
        // The warm memo still answers: a repeat probe after clear hits it.
        let hits_before = memo.stats().hits;
        let _ = cache.probe("what is federated learning", &[]);
        assert!(memo.stats().hits > hits_before);
    }
}
