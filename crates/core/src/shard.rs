//! Concurrent sharded serving layer: N independent [`MeanCache`] shards
//! behind per-shard `RwLock`s.
//!
//! Every lookup in the base cache funnels through one `&mut` API, so no two
//! queries can be served at once no matter how fast the underlying index
//! scan is. `ShardedCache` removes that ceiling the way concurrent
//! hash-map-style caches do: hash-route each query to one of `N` independent
//! shards so reads proceed in parallel (shared `RwLock` read guards over the
//! read-only [`SemanticCache::probe`] half) and writes only contend within
//! one shard.
//!
//! ## Routing
//!
//! The routing key is the **conversation root**: the first context turn when
//! the probe carries history, the query text itself otherwise (see
//! [`route_key`]). Keying on the root pins an entire conversation — a
//! standalone query and every follow-up under it — to one shard, so context
//! chains never dangle across shards and contextual decisions match the
//! unsharded cache exactly. The hash is a fixed FNV-1a (not the std
//! `DefaultHasher`, whose output may change across Rust releases), so
//! routing is stable across processes and across save/load.
//!
//! ## What sharding trades away
//!
//! A probe scans only its own shard. Exact repeats and same-conversation
//! follow-ups always route to the entry that can answer them, but a
//! *paraphrase* hashes like unrelated text: with `N` shards it lands on the
//! cached original's shard with probability `1/N` and otherwise misses where
//! the unsharded cache would hit. That recall cost buys per-probe work of
//! `O(n/N · d)` and write contention confined to one shard — the standard
//! partitioned-cache trade. Deployments that cannot afford it keep
//! `shards = 1` (the default), which behaves identically to a plain
//! [`MeanCache`] behind a lock.
//!
//! Capacity splits evenly too: each shard holds `capacity / N` entries, so
//! a skewed workload — one long conversation, one hot routing key — starts
//! evicting at `capacity / N` while other shards sit under-filled. The
//! effective capacity for traffic concentrated on one key is `1/N` of the
//! configured total; occupancy-proportional eviction budgeting is a
//! possible future refinement (see ROADMAP).
//!
//! ## Identifiers
//!
//! Shards allocate entry ids independently, so the serving layer namespaces
//! them: a public id is `local_id * N + shard`, decoded back on
//! [`SemanticCache::commit`]. Persisted per-shard logs keep local ids,
//! which makes reload reassemble the exact same public ids as long as the
//! shard count is unchanged (the config sidecar records it).

use std::sync::RwLock;

use mc_embedder::QueryEncoder;
use mc_store::CacheEntry;
use rayon::prelude::*;

use crate::cache::{CacheDecisionOutcome, CacheStats, MeanCache, SemanticCache};
use crate::{MeanCacheConfig, Result};

/// The text a probe or insert is routed by: the conversation root (first
/// context turn) when there is history, the query itself otherwise.
pub fn route_key<'a>(query: &'a str, context: &'a [String]) -> &'a str {
    context.first().map(String::as_str).unwrap_or(query)
}

/// Fixed 64-bit FNV-1a. Deliberately *not* `std::hash` — routing must stay
/// identical across processes, Rust releases and save/load cycles. Also
/// deliberately a private copy rather than a helper shared with the FNV
/// loops in `mc-text` (n-gram hashing) and `mc-llm` (response
/// fingerprints): each is a separately *frozen* behaviour, and sharing one
/// function would let a change to any of them silently move the others.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A semantic cache partitioned into independent [`MeanCache`] shards for
/// concurrent serving. See the module docs for routing and id semantics.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<RwLock<MeanCache>>,
    /// The serving-layer configuration (`shards` = the live shard count;
    /// each shard holds a copy with `shards: 1` and a split capacity).
    config: MeanCacheConfig,
    /// A copy of the shards' encoder, so persistence and reports can reach
    /// it without taking a shard lock.
    encoder: QueryEncoder,
}

impl ShardedCache {
    /// Builds `config.effective_shards()` empty shards around clones of
    /// `encoder`. The configured `capacity` is the *total* across shards
    /// (split evenly, rounded up).
    ///
    /// # Errors
    /// Returns [`crate::CacheError::InvalidConfig`] when the configuration
    /// is invalid.
    pub fn new(encoder: QueryEncoder, config: MeanCacheConfig) -> Result<Self> {
        config.validate()?;
        let shard_count = config.effective_shards();
        let shard_config = MeanCacheConfig {
            shards: 1,
            capacity: config.capacity.div_ceil(shard_count),
            ..config.clone()
        };
        let shards = (0..shard_count)
            .map(|_| MeanCache::new(encoder.clone(), shard_config.clone()).map(RwLock::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            config,
            encoder,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow the serving-layer configuration.
    pub fn config(&self) -> &MeanCacheConfig {
        &self.config
    }

    /// Borrow the encoder the shards were built around.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// The shard a `(query, context)` probe or insert routes to.
    pub fn shard_of(&self, query: &str, context: &[String]) -> usize {
        (fnv1a(route_key(query, context)) % self.shards.len() as u64) as usize
    }

    /// Aggregated statistics across all shards. Per-event counters
    /// (lookups, hits, context rejections, inserts) sum across shards;
    /// `feedback_updates` is **broadcast** to every shard by
    /// [`ShardedCache::record_feedback`], so any one shard's count already
    /// equals the number of feedback events — shard 0's value is reported
    /// rather than an N-times-inflated sum.
    pub fn stats(&self) -> CacheStats {
        let mut total = self
            .shards
            .iter()
            .map(|s| read(s).stats())
            .fold(CacheStats::default(), CacheStats::merged);
        total.feedback_updates = read(&self.shards[0]).stats().feedback_updates;
        total
    }

    /// The current cosine threshold τ (uniform across shards).
    pub fn threshold(&self) -> f32 {
        read(&self.shards[0]).threshold()
    }

    /// Replaces the threshold on every shard (and in the serving-layer
    /// config, so a subsequent save persists the live value).
    pub fn set_threshold(&mut self, threshold: f32) {
        for shard in &mut self.shards {
            shard_mut(shard).set_threshold(threshold);
        }
        self.config.threshold = shard_mut(&mut self.shards[0]).threshold();
    }

    /// Applies adaptive threshold feedback to every shard: τ is a global
    /// decision parameter, so all shards move in lock-step and
    /// [`ShardedCache::threshold`] stays well-defined. The serving-layer
    /// config tracks the adapted value so persistence captures it.
    pub fn record_feedback(&mut self, false_hit: bool) {
        for shard in &mut self.shards {
            shard_mut(shard).record_feedback(false_hit);
        }
        self.config.threshold = shard_mut(&mut self.shards[0]).threshold();
    }

    /// Entry counts per shard (diagnostics and tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| read(s).len()).collect()
    }

    /// Looks up an entry by its **public** (namespaced) id, cloning it out
    /// of its shard.
    pub fn entry(&self, public_id: u64) -> Option<CacheEntry> {
        let (shard, local) = self.split_id(public_id);
        read(&self.shards[shard]).entry(local).cloned()
    }

    /// Runs `f` over one shard's cache under its read lock (persistence and
    /// tests; the serving paths go through [`SemanticCache`]).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&MeanCache) -> R) -> R {
        f(&read(&self.shards[shard]))
    }

    /// Exclusive access to one shard (persistence replay).
    pub(crate) fn shard_cache_mut(&mut self, shard: usize) -> &mut MeanCache {
        shard_mut(&mut self.shards[shard])
    }

    /// `local_id * N + shard` — the public id for a shard-local one.
    fn public_id(&self, shard: usize, local: u64) -> u64 {
        local * self.shards.len() as u64 + shard as u64
    }

    /// Inverse of [`ShardedCache::public_id`].
    fn split_id(&self, public_id: u64) -> (usize, u64) {
        let n = self.shards.len() as u64;
        ((public_id % n) as usize, public_id / n)
    }

    /// Inserts through a **shared** reference: takes only the target shard's
    /// write lock, so concurrent inserts to different shards proceed in
    /// parallel and probes of other shards are never blocked. This is the
    /// write path concurrent serving measures (`exp_concurrent
    /// --write-pct`); the `&mut` [`SemanticCache::insert`] remains the
    /// single-owner equivalent (identical ids and routing).
    ///
    /// # Errors
    /// Returns [`crate::CacheError`] on storage failures.
    pub fn insert_shared(&self, query: &str, response: &str, context: &[String]) -> Result<u64> {
        let shard = self.shard_of(query, context);
        let local = write(&self.shards[shard]).insert(query, response, context)?;
        Ok(self.public_id(shard, local))
    }

    /// The write half of a lookup through a **shared** reference: upgrades
    /// to the hit shard's write lock just long enough to record the
    /// eviction-policy touch. A miss takes no lock at all. This is the
    /// probe→commit "upgrade" whose contention cost the write-mix
    /// experiment quantifies.
    pub fn commit_shared(&self, outcome: &CacheDecisionOutcome) {
        if let Some(hit) = outcome.hit() {
            let (shard, local) = self.split_id(hit.entry_id);
            let mut local_hit = hit.clone();
            local_hit.entry_id = local;
            write(&self.shards[shard]).commit(&CacheDecisionOutcome::Hit(local_hit));
        }
    }

    /// [`SemanticCache::probe`] followed by [`ShardedCache::commit_shared`]:
    /// a full lookup through a shared reference, for concurrent callers that
    /// cannot take `&mut self`. Decision-identical to
    /// [`SemanticCache::lookup`] on a frozen cache.
    pub fn lookup_shared(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        let outcome = self.probe(query, context);
        self.commit_shared(&outcome);
        outcome
    }

    /// Rewrites a shard-local outcome's entry id into the public namespace.
    fn globalise(&self, shard: usize, outcome: CacheDecisionOutcome) -> CacheDecisionOutcome {
        match outcome {
            CacheDecisionOutcome::Hit(mut hit) => {
                hit.entry_id = self.public_id(shard, hit.entry_id);
                CacheDecisionOutcome::Hit(hit)
            }
            CacheDecisionOutcome::Miss => CacheDecisionOutcome::Miss,
        }
    }
}

impl Clone for ShardedCache {
    fn clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(read(s).clone()))
                .collect(),
            config: self.config.clone(),
            encoder: self.encoder.clone(),
        }
    }
}

/// Shared-read a shard. Lock poisoning means a probe panicked mid-read with
/// the structures intact (probes never leave partial writes), so recovery by
/// unwrapping the poisoned guard would be sound — but a panic in this
/// workspace is always a bug, so fail loudly instead of papering over it.
fn read(shard: &RwLock<MeanCache>) -> std::sync::RwLockReadGuard<'_, MeanCache> {
    shard.read().expect("cache shard lock poisoned")
}

/// Exclusive access through `&mut self` — no lock taken, cannot block.
fn shard_mut(shard: &mut RwLock<MeanCache>) -> &mut MeanCache {
    shard.get_mut().expect("cache shard lock poisoned")
}

/// Exclusively lock one shard through a shared reference (the concurrent
/// write path: `insert_shared` / `commit_shared`). Poisoning gets the same
/// fail-loudly treatment as [`read`].
fn write(shard: &RwLock<MeanCache>) -> std::sync::RwLockWriteGuard<'_, MeanCache> {
    shard.write().expect("cache shard lock poisoned")
}

impl SemanticCache for ShardedCache {
    fn probe(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        let shard = self.shard_of(query, context);
        let outcome = read(&self.shards[shard]).probe(query, context);
        self.globalise(shard, outcome)
    }

    fn commit(&mut self, outcome: &CacheDecisionOutcome) {
        if let Some(hit) = outcome.hit() {
            let (shard, local) = self.split_id(hit.entry_id);
            let mut local_hit = hit.clone();
            local_hit.entry_id = local;
            shard_mut(&mut self.shards[shard]).commit(&CacheDecisionOutcome::Hit(local_hit));
        }
    }

    fn probe_batch(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        // Partition probe positions by shard, fan the per-shard batches out
        // across the rayon pool (each task holds one shard's read guard for
        // one `probe_batch` pass), then scatter the outcomes back into
        // submission order.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, (query, context)) in probes.iter().enumerate() {
            buckets[self.shard_of(query, context)].push(pos);
        }
        let tasks: Vec<(usize, Vec<usize>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect();
        let per_task: Vec<Vec<CacheDecisionOutcome>> = tasks
            .par_iter()
            .map(|(shard, positions)| {
                let shard_probes: Vec<(&str, &[String])> =
                    positions.iter().map(|&pos| probes[pos]).collect();
                let outcomes = read(&self.shards[*shard]).probe_batch(&shard_probes);
                outcomes
                    .into_iter()
                    .map(|outcome| self.globalise(*shard, outcome))
                    .collect()
            })
            .collect();
        let mut results = vec![CacheDecisionOutcome::Miss; probes.len()];
        for ((_, positions), outcomes) in tasks.iter().zip(per_task) {
            for (&pos, outcome) in positions.iter().zip(outcomes) {
                results[pos] = outcome;
            }
        }
        results
    }

    fn insert(&mut self, query: &str, response: &str, context: &[String]) -> Result<u64> {
        let shard = self.shard_of(query, context);
        let local = shard_mut(&mut self.shards[shard]).insert(query, response, context)?;
        Ok(self.public_id(shard, local))
    }

    fn lookup_network_overhead_s(&self) -> f64 {
        0.0
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read(s).len()).sum()
    }

    fn storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| read(s).storage_bytes()).sum()
    }

    fn embedding_bytes(&self) -> usize {
        self.shards.iter().map(|s| read(s).embedding_bytes()).sum()
    }

    fn name(&self) -> String {
        format!(
            "Sharded[{}]{}",
            self.shards.len(),
            read(&self.shards[0]).name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::ModelProfile;

    fn encoder() -> QueryEncoder {
        QueryEncoder::new(ModelProfile::tiny(), 7).unwrap()
    }

    fn sharded(shards: usize, threshold: f32) -> ShardedCache {
        ShardedCache::new(
            encoder(),
            MeanCacheConfig::default()
                .with_threshold(threshold)
                .with_shards(shards),
        )
        .unwrap()
    }

    #[test]
    fn sharded_cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedCache>();
        assert_send_sync::<MeanCache>();
    }

    #[test]
    fn routing_is_deterministic_and_conversation_affine() {
        let cache = sharded(8, 0.6);
        let q = "how do I bake sourdough bread";
        assert_eq!(cache.shard_of(q, &[]), cache.shard_of(q, &[]));
        // A follow-up routes by its conversation root, not its own text.
        let root = vec!["how do I bake sourdough bread".to_string()];
        assert_eq!(
            cache.shard_of("make it whole-grain", &root),
            cache.shard_of(q, &[]),
        );
        // Deeper chains keep the same root and therefore the same shard.
        let deep = vec![
            "how do I bake sourdough bread".to_string(),
            "make it whole-grain".to_string(),
        ];
        assert_eq!(
            cache.shard_of("and reduce the salt", &deep),
            cache.shard_of(q, &[]),
        );
    }

    #[test]
    fn exact_repeats_and_context_chains_hit_across_shards() {
        let mut cache = sharded(4, 0.6);
        let parent_id = cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let ctx = vec!["draw a line plot in python".to_string()];
        let child_id = cache
            .insert("change the color to red", "Pass color='red'.", &ctx)
            .unwrap();
        assert_ne!(parent_id, child_id);

        // Exact repeat of the standalone query: hit with score ~1.
        let hit = cache.lookup("draw a line plot in python", &[]);
        assert_eq!(hit.hit().unwrap().entry_id, parent_id);
        // Same conversation: contextual hit; wrong conversation: miss.
        let same = cache.lookup("change the color to red", &ctx);
        assert!(same.hit().unwrap().contextual);
        assert_eq!(same.hit().unwrap().entry_id, child_id);
        // A different conversation routes by *its* root — whichever shard
        // that is, the probe must miss (either the shard holds nothing
        // similar, or context verification rejects the candidate).
        assert!(cache
            .lookup("change the color to red", &["draw a circle".to_string()])
            .is_miss());
        assert!(cache.lookup("change the color to red", &[]).is_miss());
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn public_ids_are_unique_and_resolve_to_their_entries() {
        let mut cache = sharded(4, 0.6);
        let mut ids = Vec::new();
        for i in 0..40 {
            let id = cache
                .insert(&format!("distinct topic number {i}"), &format!("r{i}"), &[])
                .unwrap();
            ids.push((id, format!("distinct topic number {i}")));
        }
        let unique: std::collections::HashSet<u64> = ids.iter().map(|(id, _)| *id).collect();
        assert_eq!(unique.len(), ids.len(), "public ids must not collide");
        for (id, query) in &ids {
            let entry = cache.entry(*id).expect("public id resolves");
            assert_eq!(&entry.query, query);
        }
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), 40);
        assert!(
            cache.shard_lens().iter().filter(|&&l| l > 0).count() > 1,
            "40 distinct queries must spread over more than one shard: {:?}",
            cache.shard_lens()
        );
    }

    #[test]
    fn single_shard_matches_unsharded_decisions_exactly() {
        let mut flat =
            MeanCache::new(encoder(), MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        let mut one = sharded(1, 0.6);
        let items = [
            ("how do I bake sourdough bread", "Ferment overnight."),
            ("what is federated learning", "On-device training."),
            ("tips for travelling to japan", "Get a rail pass."),
        ];
        for (q, r) in items {
            flat.insert(q, r, &[]).unwrap();
            one.insert(q, r, &[]).unwrap();
        }
        for probe in [
            "how do I bake sourdough bread",
            "explain federated learning",
            "what is the capital of portugal",
        ] {
            assert_eq!(
                flat.lookup(probe, &[]),
                one.lookup(probe, &[]),
                "probe {probe:?} diverged"
            );
        }
        assert_eq!(flat.stats(), one.stats());
    }

    #[test]
    fn probe_batch_matches_sequential_probes() {
        let mut cache = sharded(4, 0.6);
        for i in 0..25 {
            cache
                .insert(&format!("unique subject number {i}"), "resp", &[])
                .unwrap();
        }
        let probes: Vec<(String, Vec<String>)> = (0..25)
            .map(|i| (format!("unique subject number {i}"), Vec::new()))
            .chain((0..5).map(|i| (format!("never cached topic {i}"), Vec::new())))
            .collect();
        let refs: Vec<(&str, &[String])> = probes
            .iter()
            .map(|(q, c)| (q.as_str(), c.as_slice()))
            .collect();
        let batched = cache.probe_batch(&refs);
        for ((query, context), batched_outcome) in probes.iter().zip(&batched) {
            assert_eq!(
                &cache.probe(query, context),
                batched_outcome,
                "probe {query:?} diverged"
            );
        }
    }

    #[test]
    fn feedback_and_threshold_stay_uniform_across_shards() {
        let mut cache = sharded(3, 0.7);
        cache.record_feedback(true);
        let raised = cache.threshold();
        assert!(raised > 0.7);
        for shard in 0..cache.shard_count() {
            assert_eq!(cache.with_shard(shard, |c| c.threshold()), raised);
        }
        cache.set_threshold(0.5);
        for shard in 0..cache.shard_count() {
            assert_eq!(cache.with_shard(shard, |c| c.threshold()), 0.5);
        }
        // One feedback event, counted once — not once per shard.
        assert_eq!(cache.stats().feedback_updates, 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let cache = ShardedCache::new(
            encoder(),
            MeanCacheConfig::default()
                .with_shards(4)
                .with_threshold(0.6),
        )
        .unwrap();
        // 100_000 total over 4 shards: each shard holds 25_000.
        assert_eq!(cache.with_shard(0, |c| c.config().capacity), 25_000);
        assert_eq!(cache.with_shard(0, |c| c.config().shards), 1);
        assert_eq!(cache.config().shards, 4);
        assert!(cache.name().starts_with("Sharded[4]"));
        assert_eq!(cache.lookup_network_overhead_s(), 0.0);
    }

    #[test]
    fn shared_inserts_match_exclusive_inserts() {
        let mut exclusive = sharded(4, 0.6);
        let shared = sharded(4, 0.6);
        for i in 0..20 {
            let q = format!("distinct shared topic {i}");
            let a = exclusive.insert(&q, "resp", &[]).unwrap();
            let b = shared.insert_shared(&q, "resp", &[]).unwrap();
            assert_eq!(a, b, "shared and exclusive inserts must allocate alike");
        }
        assert_eq!(exclusive.shard_lens(), shared.shard_lens());
        for i in 0..20 {
            let q = format!("distinct shared topic {i}");
            assert_eq!(exclusive.probe(&q, &[]), shared.probe(&q, &[]));
        }
    }

    #[test]
    fn concurrent_shared_inserts_land_once_each() {
        let cache = sharded(4, 0.6);
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        cache
                            .insert_shared(&format!("writer {t} topic {i}"), "resp", &[])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), threads * per_thread);
        assert_eq!(cache.stats().inserts, (threads * per_thread) as u64);
        // Every inserted query is findable (ids resolved, index consistent).
        for t in 0..threads {
            for i in 0..per_thread {
                assert!(
                    cache.probe(&format!("writer {t} topic {i}"), &[]).is_hit(),
                    "writer {t} topic {i} must be probeable"
                );
            }
        }
    }

    #[test]
    fn lookup_shared_touches_like_lookup() {
        let mut a = sharded(2, 0.6);
        let b = sharded(2, 0.6);
        a.insert("what is federated learning", "FL.", &[]).unwrap();
        b.insert_shared("what is federated learning", "FL.", &[])
            .unwrap();
        assert_eq!(
            a.lookup("what is federated learning", &[]),
            b.lookup_shared("what is federated learning", &[]),
        );
        assert_eq!(a.stats(), b.stats());
        // A miss commits nothing and takes no write lock.
        assert!(b.lookup_shared("entirely uncached question", &[]).is_miss());
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let mut cache = sharded(2, 0.6);
        cache
            .insert("what is federated learning", "FL.", &[])
            .unwrap();
        let snapshot = cache.clone();
        cache.insert("another entry entirely", "x", &[]).unwrap();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(cache.len(), 2);
        assert!(snapshot.probe("what is federated learning", &[]).is_hit());
    }
}
