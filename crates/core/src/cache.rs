//! The MeanCache itself: Algorithm 1 of the paper.
//!
//! A lookup proceeds as: encode the query → retrieve the top-k most similar
//! cached queries above the threshold → for each candidate, verify that its
//! *context chain* matches the probe's conversation → return the first
//! verified candidate's response, or report a miss so the deployment forwards
//! the query to the LLM and inserts the fresh response.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mc_embedder::{EmbeddingMemo, QueryEncoder};
use mc_store::{AnyIndex, CacheEntry, MemoryStore, VectorIndex};
use mc_tensor::vector;
use serde::{Deserialize, Serialize};

use crate::{CacheError, MeanCacheConfig, Result};

/// A successful cache hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheHit {
    /// Id of the cached entry that answered the query.
    pub entry_id: u64,
    /// The cached response text.
    pub response: String,
    /// Cosine similarity between the probe and the cached query.
    pub score: f32,
    /// Whether the matched entry was a contextual (follow-up) entry.
    pub contextual: bool,
}

/// Outcome of a lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CacheDecisionOutcome {
    /// A semantically similar query with a matching context chain was found.
    Hit(CacheHit),
    /// No suitable cached entry: the query must go to the LLM service.
    Miss,
}

impl CacheDecisionOutcome {
    /// `true` for [`CacheDecisionOutcome::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheDecisionOutcome::Miss)
    }

    /// `true` for [`CacheDecisionOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        !self.is_miss()
    }

    /// The hit payload, if any.
    pub fn hit(&self) -> Option<&CacheHit> {
        match self {
            CacheDecisionOutcome::Hit(h) => Some(h),
            CacheDecisionOutcome::Miss => None,
        }
    }
}

/// Running counters the cache keeps about itself (a point-in-time snapshot
/// of the live atomic counters — see [`MeanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub lookups: u64,
    /// Number of lookups that returned a hit.
    pub hits: u64,
    /// Number of lookups where a semantic match was found but rejected by
    /// context verification (would have been a false hit without it).
    pub context_rejections: u64,
    /// Number of entries inserted.
    pub inserts: u64,
    /// Number of user-feedback threshold adjustments applied.
    pub feedback_updates: u64,
}

impl CacheStats {
    /// Element-wise sum with another snapshot (used by the sharded serving
    /// layer to aggregate per-shard counters).
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups + other.lookups,
            hits: self.hits + other.hits,
            context_rejections: self.context_rejections + other.context_rejections,
            inserts: self.inserts + other.inserts,
            feedback_updates: self.feedback_updates + other.feedback_updates,
        }
    }
}

/// The live counters behind [`CacheStats`]. Atomics, so the read-only
/// [`SemanticCache::probe`] path (`&self`, possibly many threads at once)
/// can keep counting without exclusive access. Relaxed ordering is enough:
/// these are monotonic tallies, never used to synchronise other memory.
#[derive(Debug, Default)]
struct AtomicCacheStats {
    lookups: AtomicU64,
    hits: AtomicU64,
    context_rejections: AtomicU64,
    inserts: AtomicU64,
    feedback_updates: AtomicU64,
}

impl AtomicCacheStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            context_rejections: self.context_rejections.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            feedback_updates: self.feedback_updates.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

impl Clone for AtomicCacheStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        AtomicCacheStats {
            lookups: AtomicU64::new(snap.lookups),
            hits: AtomicU64::new(snap.hits),
            context_rejections: AtomicU64::new(snap.context_rejections),
            inserts: AtomicU64::new(snap.inserts),
            feedback_updates: AtomicU64::new(snap.feedback_updates),
        }
    }
}

/// Common interface shared by MeanCache and the GPTCache-style baseline so
/// the deployment driver and the benchmark harness can treat them uniformly.
///
/// The hot path is split into two halves so a serving layer can run many
/// probes concurrently:
///
/// * [`SemanticCache::probe`] — the read-only half (`&self`): encode, index
///   search, threshold decision, context verification. No cache contents or
///   access metadata change, so any number of threads may probe one cache at
///   once (all statistics live in atomics).
/// * [`SemanticCache::commit`] — the narrow write half (`&mut self`): record
///   access metadata (LRU/LFU bookkeeping) for a decision that was actually
///   served. Inserts and feedback keep their own `&mut` entry points.
///
/// [`SemanticCache::lookup`] is the sequential composition of the two and
/// behaves exactly as it did before the split.
pub trait SemanticCache {
    /// The read-only half of a lookup: answers a query under the given
    /// conversational context (most recent turn last) without mutating
    /// anything but atomic statistics. Safe to call from many threads at
    /// once through a shared reference.
    fn probe(&self, query: &str, context: &[String]) -> CacheDecisionOutcome;

    /// The write half of a lookup: records access metadata (eviction-policy
    /// bookkeeping) for an outcome that was served to the user. A miss is a
    /// no-op. Decisions are unaffected — skipping `commit` only degrades
    /// LRU/LFU accuracy, never correctness.
    fn commit(&mut self, outcome: &CacheDecisionOutcome);

    /// Looks up a query under the given conversational context (most recent
    /// turn last): [`SemanticCache::probe`] followed by
    /// [`SemanticCache::commit`]. Does not modify cache contents other than
    /// access metadata.
    fn lookup(&mut self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        let outcome = self.probe(query, context);
        self.commit(&outcome);
        outcome
    }

    /// Inserts a fresh (query, response) pair obtained from the LLM.
    ///
    /// # Errors
    /// Returns [`CacheError`] on storage failures.
    fn insert(&mut self, query: &str, response: &str, context: &[String]) -> Result<u64>;

    /// Extra network latency (seconds) a lookup incurs before the cache can
    /// answer: zero for a user-side cache, one round-trip for a server-side
    /// cache like GPTCache.
    fn lookup_network_overhead_s(&self) -> f64;

    /// Read-only batched probe: one outcome per `(query, context)` probe,
    /// in submission order. Probes are borrowed so replayers do not copy
    /// their workload to batch it. The default loops over
    /// [`SemanticCache::probe`]; caches backed by a vector index override
    /// this to funnel all probes through one `search_batch` pass (and the
    /// sharded cache to fan out across shards in parallel).
    fn probe_batch(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        probes
            .iter()
            .map(|(query, context)| self.probe(query, context))
            .collect()
    }

    /// Looks up a batch of probes in one call:
    /// [`SemanticCache::probe_batch`] followed by one
    /// [`SemanticCache::commit`] per outcome, in submission order.
    fn lookup_batch(&mut self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        let outcomes = self.probe_batch(probes);
        for outcome in &outcomes {
            self.commit(outcome);
        }
        outcomes
    }

    /// Number of cached entries.
    fn len(&self) -> usize;

    /// `true` when the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate storage footprint of the cache contents in bytes.
    fn storage_bytes(&self) -> usize;

    /// Bytes spent on embeddings alone (what PCA compression shrinks).
    fn embedding_bytes(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// One shard's contribution to a scatter-gather probe: the decision the
/// shard would make on its own (computed **quietly** — no statistics are
/// recorded, since the sharded layer counts one logical lookup per fan-out)
/// plus whether a semantic candidate was rejected by context verification,
/// so the merged outcome can still account context rejections.
#[derive(Debug)]
pub(crate) struct ScatterProbe {
    /// The shard-local decision.
    pub outcome: CacheDecisionOutcome,
    /// A candidate scored above the threshold but failed context
    /// verification.
    pub rejected_by_context: bool,
}

/// The probe's conversational context, analysed once per lookup.
enum ProbeContext {
    /// The probe carries no conversation history.
    Standalone,
    /// The probe follows a previous turn.
    Contextual {
        /// Embedding of the most recent previous turn.
        embedding: Vec<f32>,
        /// The cached entries that previous turn plausibly resolves to (its
        /// top-k matches in the cache above the context threshold).
        resolved: Vec<u64>,
    },
}

/// The user-side semantic cache (the paper's contribution).
///
/// All read paths (including [`SemanticCache::probe`]) take `&self` over
/// plain owned data plus atomic counters, so a `MeanCache` is `Send + Sync`
/// and many threads may probe one instance concurrently — the property the
/// sharded serving layer ([`crate::ShardedCache`]) builds on.
#[derive(Debug, Clone)]
pub struct MeanCache {
    encoder: QueryEncoder,
    config: MeanCacheConfig,
    store: MemoryStore,
    index: AnyIndex,
    stats: AtomicCacheStats,
    /// Optional embedding memo-cache installed by the serving layer. Only
    /// sound while the encoder is frozen — see [`EmbeddingMemo`]'s docs.
    memo: Option<Arc<EmbeddingMemo>>,
}

impl MeanCache {
    /// Creates an empty cache around a (typically federated-trained) encoder.
    ///
    /// # Errors
    /// Returns [`CacheError::InvalidConfig`] when the configuration is
    /// invalid.
    pub fn new(encoder: QueryEncoder, config: MeanCacheConfig) -> Result<Self> {
        config.validate()?;
        let store = MemoryStore::new(config.capacity, config.eviction)?;
        let index = config.index.build(encoder.output_dim())?;
        Ok(Self {
            encoder,
            config,
            store,
            index,
            stats: AtomicCacheStats::default(),
            memo: None,
        })
    }

    /// Installs (or removes, with `None`) a shared embedding memo-cache in
    /// front of the encoder. The caller guarantees the encoder is frozen
    /// for the memo's lifetime; all encoder-driven paths (probe, batch
    /// probe, context resolution, insert) then consult the memo first.
    pub fn set_embedding_memo(&mut self, memo: Option<Arc<EmbeddingMemo>>) {
        self.memo = memo;
    }

    /// Borrow the installed embedding memo, if any.
    pub fn embedding_memo(&self) -> Option<&Arc<EmbeddingMemo>> {
        self.memo.as_ref()
    }

    /// Encodes `text`, consulting the memo-cache when one is installed.
    /// Memoized results are bit-identical to a cold encode (same tokenizer,
    /// frozen weights), so decisions cannot depend on whether this hit.
    fn embed(&self, text: &str) -> mc_tensor::Vector {
        match &self.memo {
            Some(memo) => memo.get_or_encode(text, |t| self.encoder.encode(t)),
            None => self.encoder.encode(text),
        }
    }

    /// Borrow the encoder.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &MeanCacheConfig {
        &self.config
    }

    /// The current cosine threshold τ.
    pub fn threshold(&self) -> f32 {
        self.config.threshold
    }

    /// Replaces the threshold (e.g. with a new federated global threshold).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.config.threshold = threshold.clamp(0.0, 1.0);
    }

    /// Cache statistics (a point-in-time snapshot of the atomic counters).
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Name of the live vector-index backend (`"flat"`, `"flat-sq8"`,
    /// `"ivf"` or `"ivf-sq8"`).
    pub fn index_kind(&self) -> &'static str {
        self.index.kind_name()
    }

    /// Borrow the live vector index (tests and persistence checks inspect
    /// the stored representation — e.g. SQ8 codes — through this).
    pub fn index(&self) -> &AnyIndex {
        &self.index
    }

    /// Bytes spent on the search structure (embeddings as indexed, plus any
    /// backend-specific auxiliary data such as IVF centroids).
    pub fn index_bytes(&self) -> usize {
        self.index.storage_bytes()
    }

    /// Borrow an entry by id (for tests and the persistence layer).
    pub fn entry(&self, id: u64) -> Option<&CacheEntry> {
        self.store.get(id)
    }

    /// Iterate over all cached entries.
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.store.iter()
    }

    /// Adaptive threshold feedback (Section III-A2): when the user rejects a
    /// cached response (re-asks the LLM), the hit was false — raise τ; when
    /// the user reports the cache should have answered, lower τ.
    pub fn record_feedback(&mut self, false_hit: bool) {
        let step = self.config.feedback_step;
        if false_hit {
            self.config.threshold =
                (self.config.threshold + step * (1.0 - self.config.threshold)).clamp(0.0, 1.0);
        } else {
            self.config.threshold =
                (self.config.threshold - step * self.config.threshold).clamp(0.0, 1.0);
        }
        AtomicCacheStats::bump(&self.stats.feedback_updates, 1);
    }

    /// Pre-computed view of the probe's conversational context, shared by all
    /// candidate checks of one lookup.
    fn probe_context(&self, context: &[String]) -> ProbeContext {
        match context.last() {
            None => ProbeContext::Standalone,
            Some(text) => self.probe_context_from(Some(self.embed(text).as_slice())),
        }
    }

    /// [`MeanCache::probe_context`] from a pre-encoded previous-turn
    /// embedding (`None` = standalone probe). The scatter-gather fan-out
    /// encodes the context once and shares the embedding across shards;
    /// the per-shard *resolution* (which cached entries that turn refers
    /// to) still has to be computed against this shard's own index.
    fn probe_context_from(&self, context_embedding: Option<&[f32]>) -> ProbeContext {
        match context_embedding {
            None => ProbeContext::Standalone,
            Some(embedding) => {
                // The cached entries the probe's previous turn plausibly
                // refers to: its top-k matches above the context threshold.
                let resolved = self
                    .index
                    .search(embedding, self.config.top_k, self.config.context_threshold)
                    .map(|hits| hits.into_iter().map(|h| h.id).collect())
                    .unwrap_or_default();
                ProbeContext::Contextual {
                    embedding: embedding.to_vec(),
                    resolved,
                }
            }
        }
    }

    /// Checks whether a candidate entry's context chain matches the probe's
    /// conversational context (Algorithm 1, lines 4-6).
    ///
    /// A contextual candidate matches when the probe's previous turn (a) is
    /// semantically similar to the candidate's cached parent query and (b)
    /// *resolves to that same parent entry* — i.e. among everything in the
    /// cache, the conversation the probe belongs to is the one the candidate
    /// followed up on. Requiring resolution keeps lexically-similar but
    /// different conversations (the paper's Q3/Q4 example) from false-hitting
    /// even when the encoder scores them above the threshold.
    fn context_matches(&self, entry: &CacheEntry, probe: &ProbeContext) -> bool {
        match (entry.parent, probe) {
            // Standalone cached query and standalone probe: contexts agree.
            (None, ProbeContext::Standalone) => true,
            // Contextual cached query but standalone probe (or vice versa):
            // the interpretations differ, so never serve from cache.
            (None, ProbeContext::Contextual { .. }) | (Some(_), ProbeContext::Standalone) => false,
            (
                Some(parent_id),
                ProbeContext::Contextual {
                    embedding,
                    resolved,
                },
            ) => {
                let Some(parent_entry) = self.store.get(parent_id) else {
                    // Dangling parent (should not happen thanks to eviction
                    // protection) — be conservative.
                    return false;
                };
                let score = vector::cosine_similarity_normalized(
                    embedding,
                    parent_entry.embedding.as_slice(),
                );
                score >= self.config.context_threshold && resolved.contains(&parent_id)
            }
        }
    }

    /// Re-inserts a previously persisted entry verbatim (same id, parent,
    /// embedding and access metadata). Used by [`crate::persist`] when
    /// reloading a cache from disk.
    ///
    /// # Errors
    /// Returns [`CacheError::Store`] when the embedding does not match the
    /// index dimensionality (e.g. the encoder changed compression settings
    /// between save and load).
    pub fn restore_entry(&mut self, entry: CacheEntry) -> Result<u64> {
        let id = entry.id;
        let embedding = entry.embedding.clone();
        if let Some(evicted) = self.store.insert(entry) {
            let _ = self.index.remove(evicted);
        }
        self.index
            .add(id, embedding.as_slice())
            .map_err(CacheError::from)?;
        AtomicCacheStats::bump(&self.stats.inserts, 1);
        Ok(id)
    }

    /// Removes an entry by id from both the store and the vector index.
    /// Returns `true` when the entry existed. Used by the serve layer's
    /// TTL/invalidation reclaim sweep; dangling root pins left behind are
    /// collected by the existing pin-GC sweep.
    pub fn remove_entry(&mut self, id: u64) -> bool {
        match self.store.remove(id) {
            Ok(_) => {
                let _ = self.index.remove(id);
                true
            }
            Err(_) => false,
        }
    }

    /// Installs a snapshot-restored index wholesale and re-inserts `entries`
    /// into the entry store in arrival order. Entries whose id is in
    /// `indexed` (the snapshot rows, already present in `index`) skip the
    /// per-vector `add`; the rest (the WAL tail replayed past the snapshot)
    /// are added individually — `None` means *every* entry is already
    /// indexed (the no-tail fast path). Used by [`crate::persist`]'s
    /// snapshot restore path — the caller must pass the *union* of snapshot
    /// and tail entries in the same `(parent.is_some(), id)` order a full
    /// log replay would use, so the store assigns identical logical
    /// timestamps and future evictions stay decision-identical to a
    /// replayed cache.
    ///
    /// # Errors
    /// Returns [`CacheError::Store`] when the restored index dimensionality
    /// differs from the configured one, or a tail entry fails to index.
    pub(crate) fn install_restored(
        &mut self,
        index: AnyIndex,
        entries: Vec<CacheEntry>,
        indexed: Option<&std::collections::HashSet<u64>>,
    ) -> Result<()> {
        if index.dims() != self.index.dims() {
            return Err(CacheError::Store(mc_store::StoreError::DimensionMismatch {
                expected: self.index.dims(),
                got: index.dims(),
            }));
        }
        self.index = index;
        if indexed.is_none() && self.store.is_empty() && entries.len() <= self.store.capacity() {
            // No-tail restore into a fresh store: ids are unique (snapshot
            // rows) and everything fits, so no insert could evict or need
            // indexing — take the bulk path.
            let count = entries.len() as u64;
            self.store.restore_bulk(entries);
            AtomicCacheStats::bump(&self.stats.inserts, count);
            return Ok(());
        }
        self.store.reserve(entries.len());
        for entry in entries {
            let id = entry.id;
            let needs_index = indexed.is_some_and(|set| !set.contains(&id));
            let embedding = needs_index.then(|| entry.embedding.clone());
            if let Some(evicted) = self.store.insert(entry) {
                let _ = self.index.remove(evicted);
            }
            if let Some(embedding) = embedding {
                self.index
                    .add(id, embedding.as_slice())
                    .map_err(CacheError::from)?;
            }
            AtomicCacheStats::bump(&self.stats.inserts, 1);
        }
        Ok(())
    }

    /// Shared back half of a probe: context-verifies `candidates` in score
    /// order and serves the first one whose conversation matches the probe's.
    /// Read-only — the eviction-policy touch for a served hit happens in
    /// [`SemanticCache::commit`].
    fn decide(
        &self,
        candidates: Vec<mc_store::SearchHit>,
        context: &[String],
    ) -> CacheDecisionOutcome {
        let probe_context = if self.config.context_checking {
            Some(self.probe_context(context))
        } else {
            None
        };
        let (outcome, rejected_by_context) = self.decide_from(candidates, probe_context.as_ref());
        if outcome.is_hit() {
            AtomicCacheStats::bump(&self.stats.hits, 1);
        } else if rejected_by_context {
            AtomicCacheStats::bump(&self.stats.context_rejections, 1);
        }
        outcome
    }

    /// The statistics-free core of [`MeanCache::decide`]: context-verifies
    /// `candidates` in score order and returns the first match, plus
    /// whether any candidate was rejected by context verification.
    fn decide_from(
        &self,
        candidates: Vec<mc_store::SearchHit>,
        probe_context: Option<&ProbeContext>,
    ) -> (CacheDecisionOutcome, bool) {
        let mut rejected_by_context = false;
        for candidate in candidates {
            let Some(entry) = self.store.get(candidate.id) else {
                continue;
            };
            let context_ok = match probe_context {
                Some(probe) => self.context_matches(entry, probe),
                None => true,
            };
            if context_ok {
                let hit = CacheHit {
                    entry_id: candidate.id,
                    response: entry.response.clone(),
                    score: candidate.score,
                    contextual: entry.is_contextual(),
                };
                return (CacheDecisionOutcome::Hit(hit), rejected_by_context);
            }
            rejected_by_context = true;
        }
        (CacheDecisionOutcome::Miss, rejected_by_context)
    }

    /// One shard's share of a scatter-gather probe: search + context-verify
    /// against pre-encoded embeddings, recording **no** statistics (the
    /// sharded layer counts one logical lookup per fan-out, not one per
    /// shard). `context_embedding` is the probe's most recent previous
    /// turn, already ignored by the caller when context checking is off.
    pub(crate) fn probe_scatter(
        &self,
        query_embedding: &[f32],
        context_embedding: Option<&[f32]>,
    ) -> ScatterProbe {
        let candidates =
            match self
                .index
                .search(query_embedding, self.config.top_k, self.config.threshold)
            {
                Ok(c) => c,
                Err(_) => {
                    return ScatterProbe {
                        outcome: CacheDecisionOutcome::Miss,
                        rejected_by_context: false,
                    }
                }
            };
        let probe_context = self
            .config
            .context_checking
            .then(|| self.probe_context_from(context_embedding));
        let (outcome, rejected_by_context) = self.decide_from(candidates, probe_context.as_ref());
        ScatterProbe {
            outcome,
            rejected_by_context,
        }
    }

    /// Batched [`MeanCache::probe_scatter`]: all query embeddings funnel
    /// through one `search_batch` pass, context resolution stays per-probe.
    pub(crate) fn probe_scatter_batch(
        &self,
        probes: &[(&[f32], Option<&[f32]>)],
    ) -> Vec<ScatterProbe> {
        let query_refs: Vec<&[f32]> = probes.iter().map(|(query, _)| *query).collect();
        let batched =
            match self
                .index
                .search_batch(&query_refs, self.config.top_k, self.config.threshold)
            {
                Ok(b) => b,
                Err(_) => {
                    return probes
                        .iter()
                        .map(|_| ScatterProbe {
                            outcome: CacheDecisionOutcome::Miss,
                            rejected_by_context: false,
                        })
                        .collect()
                }
            };
        batched
            .into_iter()
            .zip(probes)
            .map(|(candidates, (_, context_embedding))| {
                let probe_context = self
                    .config
                    .context_checking
                    .then(|| self.probe_context_from(*context_embedding));
                let (outcome, rejected_by_context) =
                    self.decide_from(candidates, probe_context.as_ref());
                ScatterProbe {
                    outcome,
                    rejected_by_context,
                }
            })
            .collect()
    }

    /// Replaces the capacity bound on this cache's store (the sharded
    /// layer's capacity-borrowing hook; see `MemoryStore::set_capacity`
    /// for the shrink semantics).
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        self.config.capacity = capacity;
        self.store.set_capacity(capacity);
    }

    /// Allocates the next entry id without inserting (the reshard replay
    /// path reserves an id, rewrites parent links, then restores).
    pub(crate) fn reserve_id(&mut self) -> u64 {
        self.store.next_id()
    }

    /// Finds the cached entry that corresponds to the probe's most recent
    /// context turn, used to link a newly inserted follow-up to its parent.
    fn resolve_parent(&self, context: &[String]) -> Option<u64> {
        let parent_text = context.last()?;
        let embedding = self.embed(parent_text);
        self.index
            .best_match(embedding.as_slice(), self.config.context_threshold)
            .ok()
            .flatten()
            .map(|hit| hit.id)
    }
}

impl SemanticCache for MeanCache {
    fn probe(&self, query: &str, context: &[String]) -> CacheDecisionOutcome {
        AtomicCacheStats::bump(&self.stats.lookups, 1);
        let embedding = self.embed(query);
        let candidates = match self.index.search(
            embedding.as_slice(),
            self.config.top_k,
            self.config.threshold,
        ) {
            Ok(c) => c,
            Err(_) => return CacheDecisionOutcome::Miss,
        };
        self.decide(candidates, context)
    }

    fn commit(&mut self, outcome: &CacheDecisionOutcome) {
        if let Some(hit) = outcome.hit() {
            self.store.get_mut_touch(hit.entry_id);
        }
    }

    fn probe_batch(&self, probes: &[(&str, &[String])]) -> Vec<CacheDecisionOutcome> {
        AtomicCacheStats::bump(&self.stats.lookups, probes.len() as u64);
        // Encode everything, then retrieve candidates for the whole batch in
        // one index pass; only context verification stays per-probe.
        let embeddings: Vec<mc_tensor::Vector> =
            probes.iter().map(|(query, _)| self.embed(query)).collect();
        let query_refs: Vec<&[f32]> = embeddings.iter().map(|e| e.as_slice()).collect();
        let batched =
            match self
                .index
                .search_batch(&query_refs, self.config.top_k, self.config.threshold)
            {
                Ok(b) => b,
                Err(_) => return vec![CacheDecisionOutcome::Miss; probes.len()],
            };
        batched
            .into_iter()
            .zip(probes)
            .map(|(candidates, (_, context))| self.decide(candidates, context))
            .collect()
    }

    fn insert(&mut self, query: &str, response: &str, context: &[String]) -> Result<u64> {
        let embedding = self.embed(query);
        let parent = if self.config.context_checking {
            self.resolve_parent(context)
        } else {
            None
        };
        let id = self.store.next_id();
        let entry = CacheEntry::new(id, query, response, embedding.clone(), parent, 0);
        if let Some(evicted) = self.store.insert(entry) {
            // Keep the index consistent with the store.
            let _ = self.index.remove(evicted);
        }
        self.index.add(id, embedding.as_slice())?;
        AtomicCacheStats::bump(&self.stats.inserts, 1);
        Ok(id)
    }

    fn lookup_network_overhead_s(&self) -> f64 {
        0.0
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }

    fn embedding_bytes(&self) -> usize {
        self.store.embedding_bytes()
    }

    fn name(&self) -> String {
        let compression = if self.encoder.is_compressed() {
            "-compressed"
        } else {
            ""
        };
        // The default (flat) backend is left out of the name so reports stay
        // comparable with pre-`VectorIndex` runs.
        let index = match self.index.kind_name() {
            "flat" => String::new(),
            other => format!("+{other}"),
        };
        format!(
            "MeanCache({}{}{})",
            self.encoder.profile().kind,
            compression,
            index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::ModelProfile;
    use mc_store::EvictionPolicy;

    fn trained_like_encoder() -> QueryEncoder {
        // An untrained tiny encoder is sufficient: hashed n-gram features give
        // paraphrases high similarity and unrelated queries low similarity.
        QueryEncoder::new(ModelProfile::tiny(), 7).unwrap()
    }

    fn cache_with_threshold(threshold: f32) -> MeanCache {
        MeanCache::new(
            trained_like_encoder(),
            MeanCacheConfig {
                threshold,
                ..MeanCacheConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn empty_cache_always_misses() {
        let mut cache = cache_with_threshold(0.5);
        assert!(cache.lookup("anything at all", &[]).is_miss());
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().lookups, 1);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn paraphrase_hits_unrelated_misses() {
        let mut cache = cache_with_threshold(0.6);
        cache
            .insert(
                "how can I increase the battery life of my smartphone",
                "Lower the screen brightness and disable background apps.",
                &[],
            )
            .unwrap();
        cache
            .insert(
                "how do I bake sourdough bread at home",
                "Feed your starter, mix, fold, proof overnight, bake at 230C.",
                &[],
            )
            .unwrap();

        let hit = cache.lookup("how can I increase the battery life of my phone", &[]);
        let hit = hit.hit().expect("paraphrase must hit");
        assert!(hit.response.contains("brightness"));
        assert!(hit.score >= 0.6);
        assert!(!hit.contextual);

        let miss = cache.lookup("what is the capital city of portugal", &[]);
        assert!(miss.is_miss());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().lookups, 2);
    }

    #[test]
    fn exact_duplicate_always_hits_at_high_threshold() {
        let mut cache = cache_with_threshold(0.95);
        cache
            .insert(
                "what is federated learning",
                "FL trains models on-device.",
                &[],
            )
            .unwrap();
        let hit = cache.lookup("what is federated learning", &[]);
        assert!(hit.is_hit());
        assert!(hit.hit().unwrap().score > 0.99);
    }

    #[test]
    fn contextual_queries_require_matching_context() {
        let mut cache = cache_with_threshold(0.6);
        // Conversation 1: draw a line plot, then change its colour.
        cache
            .insert("draw a line plot in python", "Use plt.plot(xs, ys).", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red' to plt.plot.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();

        // Same follow-up, same conversation: hit.
        let same_context = cache.lookup(
            "change the color to red",
            &["draw a line plot in python".to_string()],
        );
        assert!(same_context.is_hit());
        assert!(same_context.hit().unwrap().contextual);

        // Same follow-up text but a *different* conversation (the paper's Q3
        // "Draw a circle?"): must miss — GPTCache's false-hit scenario.
        let different_context =
            cache.lookup("change the color to red", &["draw a circle".to_string()]);
        assert!(different_context.is_miss());
        assert!(cache.stats().context_rejections >= 1);

        // Standalone probe of a contextual entry must also miss.
        let standalone_probe = cache.lookup("change the color to red", &[]);
        assert!(standalone_probe.is_miss());
    }

    #[test]
    fn disabling_context_checking_reproduces_the_baseline_false_hit() {
        let encoder = trained_like_encoder();
        let mut cache = MeanCache::new(
            encoder,
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_context_checking(false),
        )
        .unwrap();
        cache
            .insert("draw a line plot in python", "Use plt.plot(xs, ys).", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red' to plt.plot.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        // Without context verification the cache happily (and wrongly) serves
        // the cached follow-up response under a different conversation.
        let wrong_context = cache.lookup(
            "change the color to red",
            &["draw a circle in python".to_string()],
        );
        assert!(wrong_context.is_hit());
    }

    #[test]
    fn follow_up_insertion_links_to_its_parent() {
        let mut cache = cache_with_threshold(0.6);
        let parent_id = cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        let child_id = cache
            .insert(
                "change the color to red",
                "Pass color='red'.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        let child = cache.entry(child_id).unwrap();
        assert_eq!(child.parent, Some(parent_id));
        // A follow-up whose context was never cached gets no parent link.
        let orphan_id = cache
            .insert(
                "make it shorter",
                "Here is a shorter version.",
                &["write a poem about autumn leaves".to_string()],
            )
            .unwrap();
        assert_eq!(cache.entry(orphan_id).unwrap().parent, None);
    }

    #[test]
    fn threshold_controls_hit_aggressiveness() {
        let mut permissive = cache_with_threshold(0.1);
        let mut strict = cache_with_threshold(0.995);
        for cache in [&mut permissive, &mut strict] {
            cache
                .insert("how do I bake sourdough bread", "Long fermentation.", &[])
                .unwrap();
        }
        let loosely_related = "how do I bake a chocolate cake";
        assert!(permissive.lookup(loosely_related, &[]).is_hit());
        assert!(strict.lookup(loosely_related, &[]).is_miss());
    }

    #[test]
    fn feedback_adjusts_threshold_in_the_right_direction() {
        let mut cache = cache_with_threshold(0.7);
        cache.record_feedback(true);
        assert!(cache.threshold() > 0.7);
        let raised = cache.threshold();
        cache.record_feedback(false);
        assert!(cache.threshold() < raised);
        assert_eq!(cache.stats().feedback_updates, 2);
        // Thresholds stay in [0, 1] even under many updates.
        for _ in 0..500 {
            cache.record_feedback(true);
        }
        assert!(cache.threshold() <= 1.0);
        for _ in 0..500 {
            cache.record_feedback(false);
        }
        assert!(cache.threshold() >= 0.0);
    }

    #[test]
    fn eviction_keeps_store_and_index_consistent() {
        let encoder = trained_like_encoder();
        let mut cache = MeanCache::new(
            encoder,
            MeanCacheConfig {
                capacity: 3,
                threshold: 0.3,
                eviction: EvictionPolicy::Fifo,
                ..MeanCacheConfig::default()
            },
        )
        .unwrap();
        for (i, q) in [
            "how do I bake sourdough bread",
            "what is the capital of france",
            "explain quantum computing simply",
            "tips for travelling to japan",
            "how do I sort a list in python",
        ]
        .iter()
        .enumerate()
        {
            cache.insert(q, &format!("response {i}"), &[]).unwrap();
        }
        assert_eq!(cache.len(), 3);
        // The most recent entry must still hit exactly.
        let recent = cache.lookup("how do I sort a list in python", &[]);
        assert!(recent.is_hit());
        assert!(recent.hit().unwrap().score > 0.99);
        // The evicted entries are gone from both the store and the index: an
        // exact probe of an evicted query can no longer find an exact match.
        let live_ids: Vec<u64> = cache.entries().map(|e| e.id).collect();
        assert_eq!(live_ids.len(), 3);
        let evicted_probe = cache.lookup("how do I bake sourdough bread", &[]);
        if let Some(hit) = evicted_probe.hit() {
            assert!(
                live_ids.contains(&hit.entry_id),
                "a hit after eviction must point at a live entry"
            );
            assert!(
                hit.score < 0.99,
                "the exact evicted entry must not be served (score {})",
                hit.score
            );
        }
    }

    #[test]
    fn set_threshold_clamps_and_stats_track_inserts() {
        let mut cache = cache_with_threshold(0.5);
        cache.set_threshold(1.7);
        assert_eq!(cache.threshold(), 1.0);
        cache.set_threshold(-0.3);
        assert_eq!(cache.threshold(), 0.0);
        cache.insert("q", "r", &[]).unwrap();
        assert_eq!(cache.stats().inserts, 1);
        assert!(cache.storage_bytes() > 0);
        assert!(cache.embedding_bytes() > 0);
        assert!(cache.name().contains("MeanCache"));
    }

    #[test]
    fn ivf_backed_cache_behaves_like_flat_on_small_workloads() {
        let mut flat = cache_with_threshold(0.6);
        let mut ivf = MeanCache::new(
            trained_like_encoder(),
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(mc_store::IndexKind::ivf()),
        )
        .unwrap();
        assert_eq!(flat.index_kind(), "flat");
        assert_eq!(ivf.index_kind(), "ivf");
        assert!(ivf.name().contains("+ivf"));
        for cache in [&mut flat, &mut ivf] {
            cache
                .insert(
                    "how can I increase the battery life of my smartphone",
                    "Lower the screen brightness.",
                    &[],
                )
                .unwrap();
            cache
                .insert(
                    "how do I bake sourdough bread at home",
                    "Ferment overnight.",
                    &[],
                )
                .unwrap();
        }
        for cache in [&mut flat, &mut ivf] {
            let hit = cache.lookup("how can I increase the battery life of my phone", &[]);
            assert!(hit.is_hit(), "{} must hit", cache.name());
            assert!(cache
                .lookup("what is the capital city of portugal", &[])
                .is_miss());
            assert!(cache.index_bytes() > 0);
        }
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        // Two identical caches: one answers probe-by-probe, the other in one
        // batched call. Decisions must agree (a frozen cache, so earlier
        // probes cannot change later answers).
        let mut sequential = cache_with_threshold(0.6);
        let mut batched = cache_with_threshold(0.6);
        for cache in [&mut sequential, &mut batched] {
            cache
                .insert("draw a line plot in python", "Use plt.plot.", &[])
                .unwrap();
            cache
                .insert(
                    "change the color to red",
                    "Pass color='red'.",
                    &["draw a line plot in python".to_string()],
                )
                .unwrap();
            cache
                .insert("what is federated learning", "On-device training.", &[])
                .unwrap();
        }
        let probes: Vec<(String, Vec<String>)> = vec![
            ("what is federated learning".into(), vec![]),
            (
                "change the color to red".into(),
                vec!["draw a line plot in python".to_string()],
            ),
            (
                "change the color to red".into(),
                vec!["draw a circle".to_string()],
            ),
            ("completely unrelated owl facts".into(), vec![]),
        ];
        let probe_refs: Vec<(&str, &[String])> = probes
            .iter()
            .map(|(q, c)| (q.as_str(), c.as_slice()))
            .collect();
        let batch_outcomes = batched.lookup_batch(&probe_refs);
        for ((query, context), batch_outcome) in probes.iter().zip(&batch_outcomes) {
            let single = sequential.lookup(query, context);
            assert_eq!(&single, batch_outcome, "probe {query:?} diverged");
        }
        assert_eq!(batched.stats().lookups, 4);
        assert_eq!(batched.stats().hits, sequential.stats().hits);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let encoder = trained_like_encoder();
        assert!(MeanCache::new(
            encoder,
            MeanCacheConfig {
                threshold: 2.0,
                ..MeanCacheConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn compressed_encoder_changes_name_and_embedding_size() {
        let mut encoder = trained_like_encoder();
        let corpus: Vec<String> = (0..40)
            .map(|i| format!("training query number {i}"))
            .collect();
        encoder.fit_pca(&corpus, 8, 3).unwrap();
        let mut cache =
            MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.5)).unwrap();
        cache
            .insert("how do I bake sourdough bread", "resp", &[])
            .unwrap();
        assert!(cache.name().contains("compressed"));
        // 8-dim embeddings: 8 * 4 bytes per entry.
        assert_eq!(cache.embedding_bytes(), 32);
        assert!(cache.lookup("how do I bake sourdough bread", &[]).is_hit());
    }

    #[test]
    fn embedding_memo_counts_hits_without_changing_decisions() {
        let mut cold = cache_with_threshold(0.6);
        let mut warm = cache_with_threshold(0.6);
        let memo = Arc::new(EmbeddingMemo::new(128, 0));
        warm.set_embedding_memo(Some(Arc::clone(&memo)));
        for cache in [&mut cold, &mut warm] {
            cache
                .insert(
                    "how can I increase the battery life of my smartphone",
                    "Lower the screen brightness.",
                    &[],
                )
                .unwrap();
        }
        // The insert memoized its query; an exact repeat probe hits the memo.
        let misses_after_insert = memo.stats().misses;
        for probe in [
            "how can I increase the battery life of my smartphone",
            "how can I increase the battery life of my phone",
            "what is the capital city of portugal",
        ] {
            let a = cold.probe(probe, &[]);
            let b = warm.probe(probe, &[]);
            assert_eq!(a, b, "probe {probe:?} diverged");
            if let (Some(x), Some(y)) = (a.hit(), b.hit()) {
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        let stats = memo.stats();
        assert!(stats.hits >= 1, "the exact repeat must hit the memo");
        assert_eq!(stats.misses, misses_after_insert + 2);
        // Removing the memo restores plain encoding.
        warm.set_embedding_memo(None);
        assert!(warm.embedding_memo().is_none());
        assert_eq!(
            cold.probe("battery life tips", &[]),
            warm.probe("battery life tips", &[]),
        );
    }

    mod memo_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Vocabulary mixing corpus words (so some probes hit), casing and
        /// whitespace variants (exercising memo normalization), and noise.
        const WORDS: &[&str] = &[
            "how",
            "do",
            "I",
            "bake",
            "sourdough",
            "bread",
            "battery",
            "life",
            "of",
            "my",
            "smartphone",
            "PHONE",
            "what",
            "is",
            "federated",
            "Learning",
            "draw",
            "a",
            "line",
            "plot",
            "in",
            "python",
            "  ",
            "zebra",
        ];

        fn query_from(indices: &[usize]) -> String {
            indices
                .iter()
                .map(|&i| WORDS[i % WORDS.len()])
                .collect::<Vec<_>>()
                .join(" ")
        }

        fn corpus_pair() -> (MeanCache, MeanCache) {
            let mut cold = cache_with_threshold(0.6);
            let mut warm = cache_with_threshold(0.6);
            warm.set_embedding_memo(Some(Arc::new(EmbeddingMemo::new(256, 0))));
            for cache in [&mut cold, &mut warm] {
                cache
                    .insert(
                        "how can I increase the battery life of my smartphone",
                        "Lower the screen brightness.",
                        &[],
                    )
                    .unwrap();
                cache
                    .insert(
                        "how do I bake sourdough bread at home",
                        "Ferment overnight.",
                        &[],
                    )
                    .unwrap();
                cache
                    .insert("what is federated learning", "On-device training.", &[])
                    .unwrap();
            }
            (cold, warm)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The memo acceptance property: memoized probe results are
            /// bit-identical to cold-encoder probes, on the miss path (first
            /// probe) and the hit path (repeat probe) alike.
            #[test]
            fn memoized_probes_are_bit_identical_to_cold_probes(
                picks in prop::collection::vec(
                    prop::collection::vec(0usize..24, 1..8),
                    1..6,
                ),
            ) {
                let (cold, warm) = corpus_pair();
                for indices in &picks {
                    let query = query_from(indices);
                    let cold_outcome = cold.probe(&query, &[]);
                    let first = warm.probe(&query, &[]); // memo miss path
                    let second = warm.probe(&query, &[]); // memo hit path
                    prop_assert_eq!(&cold_outcome, &first);
                    prop_assert_eq!(&first, &second);
                    if let (Some(a), Some(b)) = (cold_outcome.hit(), second.hit()) {
                        prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                }
                // Every repeat probe was answered from the memo.
                let stats = warm.embedding_memo().unwrap().stats();
                prop_assert!(stats.hits >= picks.len() as u64);
            }
        }
    }
}
