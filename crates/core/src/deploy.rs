//! End-to-end deployment driver: a semantic cache in front of a simulated
//! LLM web service.
//!
//! This is the harness every evaluation experiment uses: it populates a
//! cache, replays a labelled probe workload, and records per-query latency,
//! hit/miss decisions, the confusion matrix against ground truth, and the
//! cost/quota savings.
//!
//! The driver is generic over [`SemanticCache`], so the same replay runs
//! against a bare [`crate::MeanCache`], a [`crate::ShardedCache`] under any
//! [`crate::RoutingMode`], or the [`crate::GptCacheBaseline`] — which is
//! how the experiments compare architectures on identical traffic. Replay
//! paths come in two flavours: [`Deployment::run`] serves probe-by-probe
//! (per-query latency is honest), while [`Deployment::run_batched`] funnels
//! the workload through [`SemanticCache::probe_batch`] and then commits and
//! accounts strictly in submission order, which is decision-identical to
//! the sequential replay (the probe→commit split guarantees probes never
//! observe commits).
//!
//! On a miss the deployment forwards the query to the [`LlmService`],
//! charges the simulated quota/pricing, inserts the fresh response, and
//! records the full user-perceived latency (network + search + generation);
//! on a hit it serves locally and charges only the cache's own overhead
//! ([`SemanticCache::lookup_network_overhead_s`] — zero for the user-side
//! cache, one round-trip for the server-side baseline).

use std::time::Instant;

use mc_llm::{LlmRequest, LlmService, QuotaTracker, SimulatedLlm};
use mc_metrics::{ConfusionMatrix, MetricSummary, TimingStats};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheDecisionOutcome, SemanticCache};
use crate::Result;

/// One labelled probe query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// The query text.
    pub query: String,
    /// Conversation history preceding the query (oldest first).
    pub context: Vec<String>,
    /// Ground truth: should the cache serve this query? `None` when the
    /// probe is unlabelled (e.g. pure latency measurements).
    pub should_hit: Option<bool>,
}

impl ProbeSpec {
    /// A labelled standalone probe.
    pub fn standalone(query: impl Into<String>, should_hit: bool) -> Self {
        Self {
            query: query.into(),
            context: Vec::new(),
            should_hit: Some(should_hit),
        }
    }

    /// A labelled contextual probe.
    pub fn contextual(query: impl Into<String>, context: Vec<String>, should_hit: bool) -> Self {
        Self {
            query: query.into(),
            context,
            should_hit: Some(should_hit),
        }
    }
}

/// Per-query outcome recorded by the deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The probe query.
    pub query: String,
    /// Ground-truth label, when known.
    pub should_hit: Option<bool>,
    /// Did the cache serve this query?
    pub predicted_hit: bool,
    /// Total user-perceived latency in seconds (network + cache search +
    /// LLM generation when forwarded).
    pub latency_s: f64,
    /// Wall-clock time of the local encode + semantic search alone.
    pub search_time_s: f64,
    /// The response returned to the user.
    pub response: String,
}

/// Everything a deployment run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Name of the cache configuration that produced this report.
    pub cache_name: String,
    /// Per-query records in probe order.
    pub records: Vec<QueryRecord>,
    /// Confusion matrix over the labelled probes.
    pub confusion: ConfusionMatrix,
    /// End-to-end latency distribution.
    pub latencies: TimingStats,
    /// Cache search-time distribution.
    pub search_times: TimingStats,
    /// Number of requests that reached the LLM service.
    pub llm_requests: u64,
    /// Total simulated LLM busy time (provider load), in seconds.
    pub llm_busy_s: f64,
    /// Quota/cost accounting for the user.
    pub quota: QuotaTracker,
    /// Cache size (entries) at the end of the run.
    pub final_cache_entries: usize,
    /// Cache storage footprint (bytes) at the end of the run.
    pub final_cache_bytes: usize,
    /// Embedding storage footprint (bytes) at the end of the run.
    pub final_embedding_bytes: usize,
}

impl DeploymentReport {
    /// Metric bundle at the requested Fβ weight.
    pub fn summary(&self, beta: f64) -> MetricSummary {
        self.confusion.summary(beta)
    }

    /// Mean end-to-end latency in seconds.
    pub fn mean_latency_s(&self) -> f64 {
        self.latencies.mean()
    }

    /// Mean latency over probes the cache served (hits only).
    pub fn mean_hit_latency_s(&self) -> f64 {
        let mut t = TimingStats::new();
        for r in self.records.iter().filter(|r| r.predicted_hit) {
            t.record(r.latency_s);
        }
        t.mean()
    }

    /// Mean latency over probes forwarded to the LLM (misses only).
    pub fn mean_miss_latency_s(&self) -> f64 {
        let mut t = TimingStats::new();
        for r in self.records.iter().filter(|r| !r.predicted_hit) {
            t.record(r.latency_s);
        }
        t.mean()
    }
}

/// A semantic cache deployed in front of an LLM web service.
#[derive(Debug)]
pub struct Deployment<C: SemanticCache> {
    cache: C,
    llm: SimulatedLlm,
    quota: QuotaTracker,
    max_tokens: usize,
    insert_on_miss: bool,
}

impl<C: SemanticCache> Deployment<C> {
    /// Creates a deployment. `quota_limit` bounds billable LLM calls;
    /// `max_tokens` caps response length (the paper uses 50).
    pub fn new(cache: C, llm: SimulatedLlm, quota_limit: u64, max_tokens: usize) -> Self {
        Self {
            cache,
            llm,
            quota: QuotaTracker::new(quota_limit),
            max_tokens,
            insert_on_miss: true,
        }
    }

    /// Disables inserting fresh responses on miss (useful when an experiment
    /// wants a frozen cache).
    pub fn freeze_cache(mut self) -> Self {
        self.insert_on_miss = false;
        self
    }

    /// Borrow the cache.
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Mutably borrow the cache (e.g. to adjust thresholds mid-experiment).
    pub fn cache_mut(&mut self) -> &mut C {
        &mut self.cache
    }

    /// Consumes the deployment, returning the cache.
    pub fn into_cache(self) -> C {
        self.cache
    }

    /// Populates the cache by asking the LLM for each (query, context) pair
    /// and inserting the response. Populate traffic is not billed against the
    /// user quota (the paper measures steady-state behaviour).
    ///
    /// # Errors
    /// Propagates storage errors.
    pub fn populate(&mut self, items: &[(String, Vec<String>)]) -> Result<()> {
        for (query, context) in items {
            let request = LlmRequest::contextual(query.clone(), context.clone(), self.max_tokens);
            let response = self.llm.generate(&request)?;
            self.cache.insert(query, &response.text, context)?;
        }
        Ok(())
    }

    /// Accounts one probe's outcome: quota bookkeeping, a billable LLM call
    /// on miss (inserting the fresh response when the cache is live), and the
    /// confusion/latency/record updates. Shared by [`Deployment::run`] and
    /// [`Deployment::run_batched`] so the two replay paths cannot drift.
    ///
    /// # Errors
    /// Propagates LLM-service and storage errors.
    fn account_probe(
        &mut self,
        probe: &ProbeSpec,
        outcome: &CacheDecisionOutcome,
        search_time_s: f64,
        acc: &mut RunAccumulator,
    ) -> Result<()> {
        let network_s = self.cache.lookup_network_overhead_s();
        let (latency_s, response, predicted_hit) = match outcome.hit() {
            Some(hit) => {
                // Served from cache: the user avoided one billable call.
                let avoided = LlmRequest::contextual(
                    probe.query.clone(),
                    probe.context.clone(),
                    self.max_tokens,
                );
                let avoided_cost = self
                    .llm
                    .config()
                    .cost
                    .cost_usd(avoided.input_tokens(), self.max_tokens);
                self.quota.record_saved(avoided_cost);
                (network_s + search_time_s, hit.response.clone(), true)
            }
            None => {
                let request = LlmRequest::contextual(
                    probe.query.clone(),
                    probe.context.clone(),
                    self.max_tokens,
                );
                let generated = self.llm.generate(&request)?;
                // Billable; if the quota is exhausted we still serve the
                // response but stop accounting further spend.
                let _ = self.quota.record_billable(generated.cost_usd);
                if self.insert_on_miss {
                    self.cache
                        .insert(&probe.query, &generated.text, &probe.context)?;
                }
                (
                    network_s + search_time_s + generated.latency_s,
                    generated.text,
                    false,
                )
            }
        };

        if let Some(should_hit) = probe.should_hit {
            acc.confusion.record_outcome(predicted_hit, should_hit);
        }
        acc.latencies.record(latency_s);
        acc.search_times.record(search_time_s);
        acc.records.push(QueryRecord {
            query: probe.query.clone(),
            should_hit: probe.should_hit,
            predicted_hit,
            latency_s,
            search_time_s,
            response,
        });
        Ok(())
    }

    /// Assembles the final report from an accumulator.
    fn finish_report(&self, acc: RunAccumulator) -> DeploymentReport {
        DeploymentReport {
            cache_name: self.cache.name(),
            records: acc.records,
            confusion: acc.confusion,
            latencies: acc.latencies,
            search_times: acc.search_times,
            llm_requests: self.llm.requests_served(),
            llm_busy_s: self.llm.busy_time_s(),
            quota: self.quota.clone(),
            final_cache_entries: self.cache.len(),
            final_cache_bytes: self.cache.storage_bytes(),
            final_embedding_bytes: self.cache.embedding_bytes(),
        }
    }

    /// Replays a probe workload through the cache's batched probe path:
    /// every probe funnels through **one** [`SemanticCache::probe_batch`]
    /// pass (a single `search_batch` over the vector index, or a parallel
    /// fan-out across shards) instead of paying per-probe dispatch, which is
    /// how the benchmark harness replays large workloads.
    ///
    /// The probe/commit split keeps the accounting deterministic even when
    /// the batch is answered out of submission order internally (a sharded
    /// cache scans shards in parallel): `probe_batch` returns outcomes in
    /// submission order by contract, and the quota bookkeeping, LLM calls
    /// and access-metadata commits below run strictly per-probe in that
    /// order, so the per-probe records and quota totals are identical to a
    /// sequential replay of the same frozen cache.
    ///
    /// Batching requires a frozen cache (`freeze_cache`): with inserts on
    /// miss, probe *i* could change what probe *i+1* sees, which a single
    /// batched index pass cannot express. Misses are still forwarded to the
    /// LLM and billed; per-probe search time is reported as the batch mean.
    ///
    /// # Errors
    /// Returns [`crate::CacheError::InvalidConfig`] when the cache is not
    /// frozen; propagates LLM-service errors.
    pub fn run_batched(&mut self, probes: &[ProbeSpec]) -> Result<DeploymentReport> {
        if self.insert_on_miss {
            return Err(crate::CacheError::InvalidConfig(
                "run_batched requires freeze_cache(): batched lookups cannot \
                 observe same-run inserts"
                    .into(),
            ));
        }
        let mut acc = RunAccumulator::with_capacity(probes.len());

        let batch: Vec<(&str, &[String])> = probes
            .iter()
            .map(|p| (p.query.as_str(), p.context.as_slice()))
            .collect();
        let started = Instant::now();
        let outcomes = self.cache.probe_batch(&batch);
        let search_time_s = started.elapsed().as_secs_f64() / probes.len().max(1) as f64;

        for (probe, outcome) in probes.iter().zip(outcomes) {
            // Commit (LRU/LFU touch) and account in submission order, one
            // probe at a time — the write half never interleaves with the
            // quota arithmetic of another probe.
            self.cache.commit(&outcome);
            self.account_probe(probe, &outcome, search_time_s, &mut acc)?;
        }
        Ok(self.finish_report(acc))
    }

    /// Runs a probe workload, returning the full report.
    ///
    /// # Errors
    /// Propagates storage errors; quota exhaustion ends billable calls but the
    /// run continues (the user simply stops getting fresh responses).
    pub fn run(&mut self, probes: &[ProbeSpec]) -> Result<DeploymentReport> {
        let mut acc = RunAccumulator::with_capacity(probes.len());
        for probe in probes {
            let started = Instant::now();
            let outcome = self.cache.lookup(&probe.query, &probe.context);
            let search_time_s = started.elapsed().as_secs_f64();
            self.account_probe(probe, &outcome, search_time_s, &mut acc)?;
        }
        Ok(self.finish_report(acc))
    }
}

/// Mutable bookkeeping shared by the sequential and batched replay paths.
struct RunAccumulator {
    records: Vec<QueryRecord>,
    confusion: ConfusionMatrix,
    latencies: TimingStats,
    search_times: TimingStats,
}

impl RunAccumulator {
    fn with_capacity(probes: usize) -> Self {
        Self {
            records: Vec::with_capacity(probes),
            confusion: ConfusionMatrix::new(),
            latencies: TimingStats::new(),
            search_times: TimingStats::new(),
        }
    }
}

/// Replays the probes directly against the LLM with no cache at all — the
/// "Llama 2" series of Figure 5.
///
/// # Errors
/// Propagates LLM-service errors.
pub fn run_without_cache(
    llm: &mut SimulatedLlm,
    probes: &[ProbeSpec],
    max_tokens: usize,
) -> Result<Vec<QueryRecord>> {
    let mut records = Vec::with_capacity(probes.len());
    for probe in probes {
        let request =
            LlmRequest::contextual(probe.query.clone(), probe.context.clone(), max_tokens);
        let response = llm.generate(&request)?;
        records.push(QueryRecord {
            query: probe.query.clone(),
            should_hit: probe.should_hit,
            predicted_hit: false,
            latency_s: response.latency_s,
            search_time_s: 0.0,
            response: response.text,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GptCacheBaseline, GptCacheConfig, MeanCache, MeanCacheConfig};
    use mc_embedder::{ModelProfile, QueryEncoder};
    use mc_llm::SimulatedLlmConfig;

    fn meancache() -> MeanCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 5).unwrap();
        MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap()
    }

    fn llm() -> SimulatedLlm {
        SimulatedLlm::new(SimulatedLlmConfig::default()).unwrap()
    }

    fn populate_items() -> Vec<(String, Vec<String>)> {
        vec![
            ("how do I bake sourdough bread at home".to_string(), vec![]),
            ("what is federated learning".to_string(), vec![]),
            (
                "how can I increase the battery life of my smartphone".to_string(),
                vec![],
            ),
        ]
    }

    #[test]
    fn populate_then_probe_produces_expected_confusion() {
        let mut deployment = Deployment::new(meancache(), llm(), 1000, 50);
        deployment.populate(&populate_items()).unwrap();
        assert_eq!(deployment.cache().len(), 3);

        let probes = vec![
            ProbeSpec::standalone("what is an easy way to bake sourdough bread at home", true),
            ProbeSpec::standalone("explain federated learning", true),
            ProbeSpec::standalone("advice on visiting patagonia", false),
            ProbeSpec::standalone("best technique for grilling vegetables", false),
        ];
        let report = deployment.run(&probes).unwrap();
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.confusion.total(), 4);
        // The two unrelated probes must be misses.
        assert!(!report.records[2].predicted_hit);
        assert!(!report.records[3].predicted_hit);
        // Misses are inserted, so the cache grows.
        assert!(report.final_cache_entries >= 5);
        assert!(report.final_cache_bytes > 0);
        assert!(report.summary(0.5).accuracy > 0.0);
    }

    #[test]
    fn cache_hits_are_much_faster_than_misses() {
        let mut deployment = Deployment::new(meancache(), llm(), 1000, 50);
        deployment.populate(&populate_items()).unwrap();
        let probes = vec![
            ProbeSpec::standalone("what is federated learning", true),
            ProbeSpec::standalone("tips for hiking in the swiss alps", false),
        ];
        let report = deployment.run(&probes).unwrap();
        assert!(report.records[0].predicted_hit);
        assert!(!report.records[1].predicted_hit);
        assert!(
            report.mean_hit_latency_s() * 3.0 < report.mean_miss_latency_s(),
            "hit latency {} must be far below miss latency {}",
            report.mean_hit_latency_s(),
            report.mean_miss_latency_s()
        );
        // Hits avoid billable calls.
        assert_eq!(report.quota.saved_queries(), 1);
        assert_eq!(report.quota.used(), 1);
        assert!(report.quota.saved_usd() > 0.0);
    }

    #[test]
    fn server_side_baseline_pays_network_overhead_even_on_hits() {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 5).unwrap();
        let baseline = GptCacheBaseline::new(
            encoder,
            GptCacheConfig {
                threshold: 0.6,
                network_rtt_s: 0.25,
                ..GptCacheConfig::default()
            },
        )
        .unwrap();
        let mut deployment = Deployment::new(baseline, llm(), 1000, 50);
        deployment
            .populate(&[("what is federated learning".to_string(), vec![])])
            .unwrap();
        let report = deployment
            .run(&[ProbeSpec::standalone("what is federated learning", true)])
            .unwrap();
        assert!(report.records[0].predicted_hit);
        assert!(
            report.records[0].latency_s >= 0.25,
            "server-side hit must still pay the round trip"
        );
    }

    #[test]
    fn batched_replay_matches_sequential_run_on_a_frozen_cache() {
        let probes = vec![
            ProbeSpec::standalone("what is an easy way to bake sourdough bread at home", true),
            ProbeSpec::standalone("explain federated learning", true),
            ProbeSpec::standalone("advice on visiting patagonia", false),
        ];
        let mut sequential = Deployment::new(meancache(), llm(), 1000, 50).freeze_cache();
        sequential.populate(&populate_items()).unwrap();
        let seq_report = sequential.run(&probes).unwrap();

        let mut batched = Deployment::new(meancache(), llm(), 1000, 50).freeze_cache();
        batched.populate(&populate_items()).unwrap();
        let batch_report = batched.run_batched(&probes).unwrap();

        assert_eq!(seq_report.records.len(), batch_report.records.len());
        for (seq, batch) in seq_report.records.iter().zip(&batch_report.records) {
            assert_eq!(
                seq.predicted_hit, batch.predicted_hit,
                "probe {:?}",
                seq.query
            );
        }
        assert_eq!(seq_report.confusion.total(), batch_report.confusion.total());
        assert_eq!(
            seq_report.quota.saved_queries(),
            batch_report.quota.saved_queries()
        );
    }

    #[test]
    fn batched_replay_requires_a_frozen_cache() {
        let mut deployment = Deployment::new(meancache(), llm(), 1000, 50);
        let err = deployment
            .run_batched(&[ProbeSpec::standalone("q", false)])
            .unwrap_err();
        assert!(err.to_string().contains("freeze_cache"));
    }

    #[test]
    fn frozen_cache_does_not_grow_on_misses() {
        let mut deployment = Deployment::new(meancache(), llm(), 1000, 50).freeze_cache();
        deployment.populate(&populate_items()).unwrap();
        let before = deployment.cache().len();
        deployment
            .run(&[ProbeSpec::standalone(
                "completely unrelated question about owls",
                false,
            )])
            .unwrap();
        assert_eq!(deployment.cache().len(), before);
    }

    #[test]
    fn contextual_probes_flow_through_the_cache_contract() {
        let mut deployment = Deployment::new(meancache(), llm(), 1000, 50);
        deployment
            .populate(&[
                ("draw a line plot in python".to_string(), vec![]),
                (
                    "change the color to red".to_string(),
                    vec!["draw a line plot in python".to_string()],
                ),
            ])
            .unwrap();
        let probes = vec![
            ProbeSpec::contextual(
                "change the color to red",
                vec!["draw a line plot in python".to_string()],
                true,
            ),
            ProbeSpec::contextual(
                "change the color to red",
                vec!["draw a circle".to_string()],
                false,
            ),
        ];
        let report = deployment.run(&probes).unwrap();
        assert!(
            report.records[0].predicted_hit,
            "same conversation must hit"
        );
        assert!(
            !report.records[1].predicted_hit,
            "different conversation must miss (context verification)"
        );
        assert_eq!(report.confusion.true_hits, 1);
        assert_eq!(report.confusion.true_misses, 1);
    }

    #[test]
    fn no_cache_baseline_reports_generation_latency_for_every_query() {
        let mut service = llm();
        let probes = vec![
            ProbeSpec::standalone("q one", false),
            ProbeSpec::standalone("q two", false),
        ];
        let records = run_without_cache(&mut service, &probes, 50).unwrap();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| !r.predicted_hit));
        assert!(records.iter().all(|r| r.latency_s > 0.1));
        assert_eq!(service.requests_served(), 2);
    }

    #[test]
    fn into_cache_and_cache_mut_expose_the_inner_cache() {
        let mut deployment = Deployment::new(meancache(), llm(), 10, 50);
        deployment.cache_mut().set_threshold(0.9);
        let cache = deployment.into_cache();
        assert!((cache.threshold() - 0.9).abs() < 1e-6);
    }
}
