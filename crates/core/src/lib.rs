//! # meancache
//!
//! A from-scratch Rust reproduction of **MeanCache: User-Centric Semantic
//! Caching for LLM Web Services** (IPDPS 2025).
//!
//! MeanCache is a semantic cache that lives on the *user's* device: when a
//! new query is semantically similar to one the user already asked, the
//! cached response is returned locally, saving the LLM call entirely — its
//! cost, its latency, its quota use, and the provider's load. The system has
//! four pillars, all implemented in this workspace:
//!
//! 1. **Semantic matching** with a small, trainable query-embedding model
//!    ([`mc_embedder::QueryEncoder`]) and a cosine-similarity threshold.
//! 2. **Federated fine-tuning** of that model across users without sharing
//!    their queries (the `mc-fl` crate), including the federated threshold.
//! 3. **Context chains**: every cached query records which cached query it
//!    followed up on, so contextual queries only hit when their conversation
//!    matches ([`cache::MeanCache`], Algorithm 1 of the paper).
//! 4. **PCA compression** of cached embeddings (768 → 64 dimensions) to cut
//!    storage and speed up search ([`mc_embedder::Pca`]).
//!
//! This crate ties the substrates together into the deployable cache and the
//! evaluation drivers:
//!
//! * [`config`] — deployment configuration (threshold, top-k, context
//!   checking, capacity, eviction, and the vector-index backend knob
//!   [`MeanCacheConfig::index`]).
//! * [`cache`] — [`MeanCache`] itself (Algorithm 1: embed → search → verify
//!   context → hit/miss → populate), with adaptive-threshold feedback.
//!   Retrieval goes through `mc-store`'s `VectorIndex` seam, so the search
//!   backend — exact [`mc_store::FlatIndex`] or IVF ANN
//!   [`mc_store::IvfIndex`] — is a configuration choice, not a code path;
//!   [`SemanticCache::lookup_batch`] funnels whole probe batches through one
//!   `search_batch` pass for workload replays.
//! * [`shard`] — the concurrent serving layer: [`ShardedCache`] routes
//!   queries to N independent [`MeanCache`] shards behind per-shard
//!   `RwLock`s, so probes proceed in parallel (the [`SemanticCache`] hot
//!   path is split into a read-only `probe` and a narrow `commit` to make
//!   that possible) and writes only contend within one shard. Routing is
//!   pluggable ([`RoutingMode`]): stable hashing, semantic
//!   nearest-of-N-centroids, or scatter-gather fan-out — and [`reshard`]
//!   replays a cache through fresh routing when the mode or shard count
//!   changes.
//! * [`gptcache`] — the GPTCache-style baseline: server-side, fixed 0.7
//!   threshold, no context verification.
//! * [`deploy`] — an end-to-end deployment driver that runs labelled
//!   workloads against a cache + simulated LLM service and produces the
//!   confusion matrices, latency series and cost accounting the paper's
//!   evaluation reports.
//! * [`persist`] — save/restore of the local cache via `mc-store`'s
//!   persistent disk log.
//!
//! ## Quickstart
//!
//! ```
//! use meancache::{CacheDecisionOutcome, MeanCache, MeanCacheConfig, SemanticCache};
//! use mc_embedder::{ModelProfile, QueryEncoder};
//!
//! let encoder = QueryEncoder::new(ModelProfile::tiny(), 42).unwrap();
//! let mut cache = MeanCache::new(encoder, MeanCacheConfig::default()).unwrap();
//!
//! // First time: miss — the deployment would forward to the LLM and insert.
//! let miss = cache.lookup("how do I plot a line chart in python", &[]);
//! assert!(miss.is_miss());
//! cache.insert(
//!     "how do I plot a line chart in python",
//!     "Use matplotlib's plot() function ...",
//!     &[],
//! ).unwrap();
//!
//! // A paraphrase of the same intent is served from the local cache.
//! let hit = cache.lookup("plot a line chart in python", &[]);
//! assert!(matches!(hit, CacheDecisionOutcome::Hit { .. }));
//! ```

pub mod cache;
pub mod config;
pub mod deploy;
pub mod gptcache;
pub mod persist;
pub mod shard;
pub mod tenant;

pub use cache::{CacheDecisionOutcome, CacheHit, CacheStats, MeanCache, SemanticCache};
pub use config::{MeanCacheConfig, SnapshotPolicy};
pub use deploy::{Deployment, DeploymentReport, ProbeSpec, QueryRecord};
pub use gptcache::{GptCacheBaseline, GptCacheConfig};
pub use shard::{reshard, route_key, RoutingMode, ShardStat, ShardedCache};
pub use tenant::{TenantStore, TenantedCache, DEFAULT_TENANT};

/// Errors surfaced by the cache layer.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying storage failure.
    Store(mc_store::StoreError),
    /// Underlying embedding failure.
    Embedder(mc_embedder::EmbedderError),
    /// Underlying LLM-service failure.
    Llm(mc_llm::LlmError),
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Store(e) => write!(f, "store error: {e}"),
            CacheError::Embedder(e) => write!(f, "embedder error: {e}"),
            CacheError::Llm(e) => write!(f, "llm error: {e}"),
            CacheError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<mc_store::StoreError> for CacheError {
    fn from(e: mc_store::StoreError) -> Self {
        CacheError::Store(e)
    }
}

impl From<mc_embedder::EmbedderError> for CacheError {
    fn from(e: mc_embedder::EmbedderError) -> Self {
        CacheError::Embedder(e)
    }
}

impl From<mc_llm::LlmError> for CacheError {
    fn from(e: mc_llm::LlmError) -> Self {
        CacheError::Llm(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CacheError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: CacheError = mc_store::StoreError::NotFound(3).into();
        assert!(e.to_string().contains('3'));
        let e: CacheError = mc_embedder::EmbedderError::InvalidConfig("p".into()).into();
        assert!(e.to_string().contains('p'));
        let e: CacheError = mc_llm::LlmError::QuotaExceeded { used: 1, limit: 1 }.into();
        assert!(e.to_string().contains("quota"));
        assert!(CacheError::InvalidConfig("k".into())
            .to_string()
            .contains('k'));
    }
}
