//! Persistence of the local cache across application restarts.
//!
//! The paper's implementation keeps the user's cache on disk with the
//! DiskCache library so responses survive restarts. Here the cache contents
//! are written to `mc-store`'s append-only [`DiskStore`] and reloaded into a
//! fresh [`MeanCache`] built around the same encoder.
//!
//! The entry log is **index-agnostic**: it stores raw `f32` embeddings (the
//! binary layout's `[u32 dims][f32 * dims]` payload), and loading re-inserts
//! them into whatever [`mc_store::VectorIndex`] backend the target cache's
//! configuration selects (an IVF-backed cache re-clusters as it refills).
//! [`save_cache_with_config`] / [`load_cache_with_config`] additionally
//! round-trip the [`MeanCacheConfig`] — including its
//! [`mc_store::IndexKind`], and therefore the row codec
//! ([`mc_store::Quantization`]) — through a JSON sidecar, so a deployment
//! can restore a cache without hard-coding which backend wrote it.
//!
//! **SQ8 caches round-trip with bit-identical codes.** The sidecar restores
//! the SQ8 [`mc_store::IndexKind`]; the raw-`f32` log is the codec's exact
//! input, and `QuantizedVec::quantize` is deterministic, so replaying the
//! log reproduces every row's codes and scale/min constants bit-for-bit
//! (asserted by `sq8_cache_round_trips_with_bit_identical_codes`). Keeping
//! the log at full precision — rather than persisting the codes themselves —
//! also means the store's context-chain embeddings stay exact, and a
//! deployment can flip codecs (or back) on an existing log with nothing but
//! a config change.
//!
//! **Sharded caches** persist as one entry log per shard plus the shared
//! config sidecar ([`save_sharded_cache_with_config`] /
//! [`load_sharded_cache_with_config`]): the sidecar's
//! [`MeanCacheConfig::shards`] and [`MeanCacheConfig::routing`] guarantee a
//! reload reassembles the exact same query → shard assignment. Under
//! [`crate::RoutingMode::Centroid`] the learned routing centroids ride in a
//! third sidecar (`<path>.routing.json`) with their `f32` components stored
//! as raw bit patterns, so reloaded routing is bit-identical to what was
//! saved; the root pin table rides in the per-shard snapshots (and is
//! rebuilt from the logs — which **are** the root → shard assignment —
//! whenever any shard had to fall back to replay).
//!
//! **Snapshots: the fast restart tier.** Every save additionally writes an
//! `MCSNAP01` snapshot sidecar (`<log>.snap`, see `docs/FORMAT.md` and
//! [`mc_store::snapshot`]) capturing the index arenas and entries in their
//! in-memory layout plus a fingerprint of the entry-log prefix it reflects.
//! Loading follows a three-step decision tree, per log:
//!
//! 1. **Snapshot** — `<log>.snap` exists, every section checksum verifies,
//!    and the log still starts with the fingerprinted prefix: `mmap` the
//!    arenas and install them directly (no re-encoding, no re-insertion).
//! 2. **WAL tail** — records the log gained *after* the snapshot (pure
//!    inserts only) are replayed on top; the restored cache is
//!    decision-identical to one that replayed the whole log.
//! 3. **Full replay** — anything disqualifies the snapshot (missing,
//!    corrupt, stale fingerprint, non-insert tail) and the loader silently
//!    falls back to replaying the log from the start — snapshots are an
//!    accelerator, never a correctness dependency. Disable the tier
//!    entirely with [`crate::SnapshotPolicy::Disabled`].
//!
//! **Resharding.** A save records its shard count and routing mode, and
//! loading with [`load_sharded_cache_with_config`] reproduces them exactly
//! (public-id stability depends on it). To reload under a *different*
//! shard count or [`crate::RoutingMode`], go through
//! [`reshard_saved_cache`], which restores the save faithfully and then
//! replays every entry through fresh routing via [`crate::reshard`]:
//!
//! ```
//! use mc_embedder::{ModelProfile, QueryEncoder};
//! use meancache::persist::{reshard_saved_cache, save_sharded_cache_with_config};
//! use meancache::{MeanCacheConfig, RoutingMode, SemanticCache, ShardedCache};
//!
//! let dir = std::env::temp_dir().join(format!("mc_persist_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("cache.log");
//!
//! let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
//! let config = MeanCacheConfig::default().with_threshold(0.6).with_shards(3);
//! let mut cache = ShardedCache::new(encoder.clone(), config.clone()).unwrap();
//! cache.insert("what is federated learning", "On-device training.", &[]).unwrap();
//! save_sharded_cache_with_config(&cache, &path).unwrap();
//!
//! // Reload as a 2-shard scatter-gather cache: same contents, new routing.
//! let resharded = reshard_saved_cache(
//!     encoder,
//!     &path,
//!     config.with_shards(2).with_routing(RoutingMode::ScatterGather),
//! )
//! .unwrap();
//! assert_eq!(resharded.shard_count(), 2);
//! assert!(resharded.probe("what is federated learning", &[]).is_hit());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::path::{Path, PathBuf};

use mc_embedder::QueryEncoder;
use mc_store::{CacheEntry, DiskStore, RecoveryStats, SnapshotView};
use serde::{Deserialize, Serialize};

use crate::config::SnapshotPolicy;
use crate::shard::RoutingMode;
use crate::{CacheError, MeanCache, MeanCacheConfig, Result, ShardedCache};

/// Path of the `MCSNAP01` snapshot sidecar for the entry log at `path`
/// (`<path>.snap`). See `docs/FORMAT.md` for the container layout.
pub fn snapshot_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".snap");
    PathBuf::from(name)
}

/// Writes every cached entry to the disk store at `path` (replacing existing
/// contents), compacts the log, and — unless the cache's
/// [`SnapshotPolicy`] disables it — writes the `<path>.snap` zero-copy
/// snapshot the loaders prefer over log replay.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_cache(cache: &MeanCache, path: &Path) -> Result<()> {
    save_cache_with_pins(cache, path, &[], None)
}

/// [`save_cache`], additionally persisting `pins` — the shard's slice of
/// the sharded router's root-pin table — into the snapshot so an all-shard
/// snapshot restore can skip the pin rebuild. `tenant` tags the snapshot
/// with its owning tenant (`None` = default tenant, legacy byte-identical).
fn save_cache_with_pins(
    cache: &MeanCache,
    path: &Path,
    pins: &[(u64, u64)],
    tenant: Option<&str>,
) -> Result<()> {
    // Start from a clean log so the file reflects exactly the current cache.
    if path.exists() {
        std::fs::remove_file(path).map_err(mc_store::StoreError::from)?;
    }
    let mut disk = DiskStore::open_with_policy(path, cache.config().fsync)?;
    // Insert parents before children so a partially-written log never holds a
    // dangling parent reference.
    let mut entries: Vec<_> = cache.entries().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        disk.insert(entry)?;
    }
    disk.compact()?;
    let wal_len = disk.log_bytes()?;
    drop(disk);
    match cache.config().snapshot {
        SnapshotPolicy::Enabled => write_snapshot_for(cache, path, wal_len, pins, tenant),
        SnapshotPolicy::Disabled => {
            let snap = snapshot_path(path);
            if snap.exists() {
                std::fs::remove_file(&snap).map_err(mc_store::StoreError::from)?;
            }
            Ok(())
        }
    }
}

/// Writes the `<path>.snap` snapshot for a cache whose entry log at `path`
/// is `wal_len` bytes long. The snapshot records the log prefix's
/// fingerprint so a loader can detect whether the log has since diverged
/// (rewritten, truncated) and fall back to replay.
fn write_snapshot_for(
    cache: &MeanCache,
    path: &Path,
    wal_len: u64,
    pins: &[(u64, u64)],
    tenant: Option<&str>,
) -> Result<()> {
    let Some((head, tail)) = mc_store::prefix_fingerprint(path, wal_len)? else {
        // The log is shorter than the length we just observed — something
        // else is rewriting it; skip the snapshot rather than persist a
        // fingerprint that can never match.
        return Ok(());
    };
    let mut entries: Vec<&CacheEntry> = cache.entries().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    let view = SnapshotView {
        entries,
        index: cache.index(),
        pins,
        wal_len,
        wal_head_crc: head,
        wal_tail_crc: tail,
        tenant,
    };
    mc_store::save_snapshot(&snapshot_path(path), &view).map_err(CacheError::from)
}

/// Attempts the fast restore path: load `<path>.snap`, verify the entry
/// log still starts with the exact prefix the snapshot captured, replay
/// any pure-insert tail the log grew past it, and install the result into
/// `cache`. Returns the snapshot's persisted root pins on success and
/// `Ok(None)` — cache untouched — whenever *anything* disqualifies the
/// snapshot (policy disabled, file missing/corrupt/stale, non-insert tail
/// records), so the caller can fall back to full log replay.
///
/// # Errors
/// Only propagates failures full replay would hit too (index dimension
/// mismatch, tail entries that no longer fit the index).
fn try_snapshot_restore(
    cache: &mut MeanCache,
    path: &Path,
    stats: &mut RecoveryStats,
    expected_tenant: Option<&str>,
) -> Result<Option<Vec<(u64, u64)>>> {
    if cache.config().snapshot == SnapshotPolicy::Disabled {
        return Ok(None);
    }
    let snap = snapshot_path(path);
    if !snap.exists() {
        return Ok(None);
    }
    let Ok(restored) = mc_store::load_snapshot(&snap, &cache.config().index) else {
        return Ok(None);
    };
    // A snapshot tagged for a different tenant (or a tag where none is
    // expected) is another caller's data: fall back to log replay rather
    // than install it. Legacy snapshots carry no tag and load as the
    // default tenant (`expected_tenant == None`).
    if restored.tenant.as_deref() != expected_tenant {
        return Ok(None);
    }
    // The snapshot is only valid over the exact log prefix it fingerprinted.
    match mc_store::prefix_fingerprint(path, restored.wal_len) {
        Ok(Some((head, tail)))
            if head == restored.wal_head_crc && tail == restored.wal_tail_crc => {}
        _ => return Ok(None),
    }
    // Replay the records the log gained after the snapshot. Anything but a
    // pure run of inserts (a removal, touch, or compaction footer) means
    // the tail is not replayable on top of the snapshot.
    let tail_entries = match DiskStore::read_insert_tail(path, restored.wal_len) {
        Ok(Some(entries)) => entries,
        _ => return Ok(None),
    };
    let tail_count = tail_entries.len() as u64;
    let mut entries = restored.entries;
    let indexed = if tail_count > 0 {
        // Only snapshot rows are already in the restored index; tail rows
        // must be added individually.
        let set: std::collections::HashSet<u64> = entries.iter().map(|e| e.id).collect();
        entries.extend(tail_entries);
        // Same global order a full replay uses, so the store assigns the
        // same logical timestamps and future evictions are
        // decision-identical. (Without a tail the snapshot's saved order —
        // already this order — stands.)
        entries.sort_by_key(|e| (e.parent.is_some(), e.id));
        Some(set)
    } else {
        None
    };
    cache.install_restored(restored.index, entries, indexed.as_ref())?;
    stats.snapshot_loaded += 1;
    stats.wal_tail_replayed += tail_count;
    stats.records_replayed += tail_count;
    Ok(Some(restored.pins))
}

/// Loads a previously saved cache from `path` into a fresh [`MeanCache`]
/// configured like `template` (same encoder, same configuration).
///
/// # Errors
/// Propagates storage/IO failures and dimension mismatches (e.g. when the
/// encoder's compression setting changed since the cache was saved).
pub fn load_cache(template: MeanCache, path: &Path) -> Result<MeanCache> {
    Ok(load_cache_with_report(template, path)?.0)
}

/// [`load_cache`], additionally reporting how the cache was restored: via
/// the `<path>.snap` mapped snapshot ([`RecoveryStats::snapshot_loaded`],
/// plus any log-tail records replayed on top —
/// [`RecoveryStats::wal_tail_replayed`]) or, when no valid snapshot
/// exists, by full log replay (checksummed records replayed, torn/corrupt
/// tail bytes truncated off the file).
///
/// # Errors
/// See [`load_cache`].
pub fn load_cache_with_report(
    template: MeanCache,
    path: &Path,
) -> Result<(MeanCache, RecoveryStats)> {
    let mut cache = template;
    let mut recovery = RecoveryStats::default();
    if try_snapshot_restore(&mut cache, path, &mut recovery, None)?.is_some() {
        return Ok((cache, recovery));
    }
    let recovery = replay_log_into(&mut cache, path)?;
    Ok((cache, recovery))
}

/// Replays the entry log at `path` into `cache` (parents before children, so
/// a partially written log never leaves a dangling reference), returning the
/// log's crash-recovery stats.
fn replay_log_into(cache: &mut MeanCache, path: &Path) -> Result<RecoveryStats> {
    let disk = DiskStore::open(path)?;
    let mut entries: Vec<_> = disk.iter().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        cache.restore_entry(entry)?;
    }
    Ok(disk.recovery_stats())
}

/// Path of the JSON configuration sidecar for the log at `path`.
fn config_sidecar(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".config.json");
    PathBuf::from(name)
}

/// Saves the cache contents to `path` *and* its [`MeanCacheConfig`] (index
/// backend included) to a `<path>.config.json` sidecar, so the cache can be
/// restored without out-of-band knowledge of how it was configured.
///
/// The sidecar's `shards` field is normalised to `1`: what is being
/// persisted *is* a single unsharded log, even when the `MeanCache` was
/// built from a config whose (ignored) `shards` knob said otherwise — a
/// sidecar claiming more shards than there are logs would make the reload
/// path reject or, worse, misread the save.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_cache_with_config(cache: &MeanCache, path: &Path) -> Result<()> {
    save_cache(cache, path)?;
    let json = serde_json::to_string(&cache.config().clone().with_shards(1))
        .map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(config_sidecar(path), json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores a cache saved by [`save_cache_with_config`]: reads the config
/// sidecar, builds a fresh [`MeanCache`] (with the persisted index backend)
/// around `encoder`, and replays the entry log into it.
///
/// # Errors
/// Propagates storage/IO failures, a missing or malformed sidecar, and
/// dimension mismatches. A sidecar recording more than one shard is
/// rejected: that save has per-shard logs and must go through
/// [`load_sharded_cache_with_config`] — opening the (absent) base-path log
/// here would silently present an empty cache as the loaded result.
pub fn load_cache_with_config(encoder: QueryEncoder, path: &Path) -> Result<MeanCache> {
    let config = read_config_sidecar(path)?;
    if config.effective_shards() > 1 {
        return Err(CacheError::InvalidConfig(format!(
            "cache at {} was saved with {} shards: load it with \
             load_sharded_cache_with_config",
            path.display(),
            config.effective_shards()
        )));
    }
    load_cache(MeanCache::new(encoder, config)?, path)
}

/// Reads and parses the `<path>.config.json` sidecar.
fn read_config_sidecar(path: &Path) -> Result<MeanCacheConfig> {
    let json = std::fs::read_to_string(config_sidecar(path)).map_err(mc_store::StoreError::from)?;
    serde_json::from_str(&json).map_err(|e| CacheError::InvalidConfig(e.to_string()))
}

/// Path of shard `i`'s entry log for the sharded cache rooted at `path`.
fn shard_log_path(path: &Path, shard: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// Path of the routing-state sidecar (centroids) for the save at `path`.
fn routing_sidecar(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".routing.json");
    PathBuf::from(name)
}

/// On-disk form of the centroid router state. `f32` centroid components
/// are stored as raw bit patterns (`u32`), because routing must survive a
/// save/load cycle *bit-identically* — a decimal round-trip that perturbed
/// one component could silently re-route a query family.
#[derive(Debug, Serialize, Deserialize)]
struct RoutingSidecar {
    /// One centroid per shard, components as `f32::to_bits`.
    centroid_bits: Vec<Vec<u32>>,
    /// Roots absorbed per centroid (the incremental update's schedule).
    counts: Vec<u64>,
}

/// Writes (or removes, when `cache` has no centroids) the routing sidecar.
fn save_routing_sidecar(cache: &ShardedCache, path: &Path) -> Result<()> {
    let (centroids, counts) = cache.centroid_state();
    let sidecar_path = routing_sidecar(path);
    if centroids.is_empty() {
        if sidecar_path.exists() {
            std::fs::remove_file(&sidecar_path).map_err(mc_store::StoreError::from)?;
        }
        return Ok(());
    }
    let sidecar = RoutingSidecar {
        centroid_bits: centroids
            .iter()
            .map(|c| c.iter().map(|x| x.to_bits()).collect())
            .collect(),
        counts,
    };
    let json =
        serde_json::to_string(&sidecar).map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(sidecar_path, json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores the routing sidecar into `cache`, if one exists.
fn load_routing_sidecar(cache: &mut ShardedCache, path: &Path) -> Result<()> {
    let sidecar_path = routing_sidecar(path);
    if !sidecar_path.exists() {
        return Ok(());
    }
    let json = std::fs::read_to_string(&sidecar_path).map_err(mc_store::StoreError::from)?;
    let sidecar: RoutingSidecar =
        serde_json::from_str(&json).map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    let centroids: Vec<Vec<f32>> = sidecar
        .centroid_bits
        .iter()
        .map(|c| c.iter().map(|&bits| f32::from_bits(bits)).collect())
        .collect();
    cache.restore_centroid_state(centroids, sidecar.counts)
}

/// Persists a [`ShardedCache`]: one entry log per shard
/// (`<path>.shard0`, `<path>.shard1`, …) plus a single
/// `<path>.config.json` sidecar recording the [`MeanCacheConfig`] —
/// including the shard count, which [`load_sharded_cache_with_config`]
/// needs to reassemble the same routing. Stale shard logs beyond the live
/// shard count are removed so a re-save with fewer shards cannot leave
/// orphaned entries behind.
///
/// Shard logs keep **shard-local** entry ids; because routing is a fixed
/// hash of the query/conversation-root text and the shard count is restored
/// from the sidecar, a reload reassembles exactly the same entry → shard
/// assignment and therefore the same public (namespaced) ids.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_sharded_cache_with_config(cache: &ShardedCache, path: &Path) -> Result<()> {
    save_sharded_cache_tagged(cache, path, None)
}

/// [`save_sharded_cache_with_config`] with the shard snapshots tagged as
/// belonging to `tenant` (`None` = default tenant; files stay
/// byte-identical to pre-tenancy saves). Loaders verify the tag — see
/// [`load_sharded_cache_tagged`].
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_sharded_cache_tagged(
    cache: &ShardedCache,
    path: &Path,
    tenant: Option<&str>,
) -> Result<()> {
    for shard in 0..cache.shard_count() {
        // Each shard's snapshot carries the router pins resolving to it, so
        // an all-shard snapshot restore reassembles the full pin table.
        let pins = cache.root_pins_for_shard(shard);
        cache.with_shard(shard, |inner| {
            save_cache_with_pins(inner, &shard_log_path(path, shard), &pins, tenant)
        })?;
    }
    // Clean up logs (and their snapshots) from a previous save with a
    // higher shard count, and a base-path log from a previous *unsharded*
    // save — either would be stale data sitting next to the sidecar about
    // to be written.
    let mut stale = cache.shard_count();
    loop {
        let log = shard_log_path(path, stale);
        let snap = snapshot_path(&log);
        let mut found = false;
        for file in [&log, &snap] {
            if file.exists() {
                std::fs::remove_file(file).map_err(mc_store::StoreError::from)?;
                found = true;
            }
        }
        if !found {
            break;
        }
        stale += 1;
    }
    for file in [path.to_path_buf(), snapshot_path(path)] {
        if file.exists() {
            std::fs::remove_file(&file).map_err(mc_store::StoreError::from)?;
        }
    }
    save_routing_sidecar(cache, path)?;
    let json = serde_json::to_string(cache.config())
        .map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(config_sidecar(path), json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores a cache saved by [`save_sharded_cache_with_config`]: reads the
/// sidecar, builds a fresh [`ShardedCache`] with the persisted shard count
/// around `encoder`, and replays each shard's log into its shard.
///
/// # Errors
/// Propagates storage/IO failures, a missing or malformed sidecar, and
/// dimension mismatches. A missing shard log is an error, not an empty
/// shard: the save path writes every shard's log (empty shards included),
/// so absence means a truncated save or a log written by the *unsharded*
/// [`save_cache_with_config`] — silently loading the survivors would
/// present a partial cache as complete.
pub fn load_sharded_cache_with_config(encoder: QueryEncoder, path: &Path) -> Result<ShardedCache> {
    Ok(load_sharded_cache_with_report(encoder, path)?.0)
}

/// [`load_sharded_cache_with_config`], additionally aggregating the
/// recovery report across every shard: how many shards restored from their
/// mapped snapshot ([`RecoveryStats::snapshot_loaded`]), how many log-tail
/// records were replayed on top of snapshots
/// ([`RecoveryStats::wal_tail_replayed`]), and the classic replay stats
/// (records replayed, torn tail bytes truncated) for shards that fell back
/// to full log replay — so callers, the serve layer in particular, can
/// surface exactly how a restart recovered.
///
/// Shards that fell back to log replay (typically a save written before
/// the snapshot tier existed) get their snapshot written as part of the
/// load when the config's [`SnapshotPolicy`] allows it, so the *second*
/// restart takes the fast path.
///
/// # Errors
/// See [`load_sharded_cache_with_config`].
pub fn load_sharded_cache_with_report(
    encoder: QueryEncoder,
    path: &Path,
) -> Result<(ShardedCache, RecoveryStats)> {
    load_sharded_cache_tagged(encoder, path, None)
}

/// [`load_sharded_cache_with_report`] expecting shard snapshots tagged for
/// `tenant`: a snapshot tagged for a different tenant (or untagged when a
/// tag is expected) is skipped in favour of log replay, so one tenant's
/// snapshot can never be installed as another's. Legacy untagged saves
/// load as the default tenant (`tenant = None`).
///
/// # Errors
/// See [`load_sharded_cache_with_config`].
pub fn load_sharded_cache_tagged(
    encoder: QueryEncoder,
    path: &Path,
    tenant: Option<&str>,
) -> Result<(ShardedCache, RecoveryStats)> {
    let config = read_config_sidecar(path)?;
    let mut cache = ShardedCache::new(encoder, config)?;
    load_routing_sidecar(&mut cache, path)?;
    let mut recovery = RecoveryStats::default();
    let mut pins: Vec<(u64, u64)> = Vec::new();
    let mut all_snapshot = true;
    let mut replayed_shards: Vec<usize> = Vec::new();
    for shard in 0..cache.shard_count() {
        let log = shard_log_path(path, shard);
        if !log.exists() {
            return Err(CacheError::InvalidConfig(format!(
                "sharded cache at {} is missing shard log {}: the save was \
                 incomplete or written by the unsharded persistence path",
                path.display(),
                log.display()
            )));
        }
        match try_snapshot_restore(cache.shard_cache_mut(shard), &log, &mut recovery, tenant)? {
            Some(shard_pins) => pins.extend(shard_pins),
            None => {
                all_snapshot = false;
                replayed_shards.push(shard);
                recovery.merge(replay_log_into(cache.shard_cache_mut(shard), &log)?);
            }
        }
    }
    if cache.routing() != RoutingMode::Hash {
        if all_snapshot && recovery.wal_tail_replayed == 0 {
            // Every shard restored from its snapshot with no log tail: the
            // persisted pin slices union back into the exact saved table.
            cache.restore_root_pins(pins);
        } else {
            // The logs are the root → shard assignment; rebuild the pin
            // table so exact repeats and follow-ups keep routing to their
            // entries.
            cache.rebuild_pins();
        }
    }
    // Legacy migration: give replayed shards a snapshot now so the next
    // restart takes the fast path.
    if cache.config().snapshot == SnapshotPolicy::Enabled {
        for shard in replayed_shards {
            let log = shard_log_path(path, shard);
            let shard_pins = cache.root_pins_for_shard(shard);
            let wal_len = std::fs::metadata(&log)
                .map_err(mc_store::StoreError::from)?
                .len();
            cache.with_shard(shard, |inner| {
                write_snapshot_for(inner, &log, wal_len, &shard_pins, tenant)
            })?;
        }
    }
    Ok((cache, recovery))
}

/// Restores a save written by [`save_sharded_cache_with_config`] and then
/// replays it through **fresh routing** under `new_config` (a different
/// shard count and/or [`crate::RoutingMode`]) via [`crate::reshard`].
///
/// This is the supported way to change the topology of a persisted cache:
/// loading with the original sidecar keeps public ids stable, so any change
/// to `shards` or `routing` must go through an explicit reshard — public
/// ids are reassigned, contents and decisions are preserved. Save the
/// result back with [`save_sharded_cache_with_config`] to make the new
/// topology the persisted one.
///
/// # Errors
/// Propagates load failures (missing logs/sidecar) and
/// [`crate::CacheError::InvalidConfig`] for an invalid `new_config`.
pub fn reshard_saved_cache(
    encoder: QueryEncoder,
    path: &Path,
    new_config: MeanCacheConfig,
) -> Result<ShardedCache> {
    let restored = load_sharded_cache_with_config(encoder, path)?;
    crate::reshard(&restored, new_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeanCacheConfig, SemanticCache};
    use mc_embedder::{ModelProfile, QueryEncoder};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meancache_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{name}_{}_{}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn fresh_cache() -> MeanCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap()
    }

    #[test]
    fn save_and_reload_preserves_hits_and_context_chains() {
        let path = temp_path("roundtrip");
        let mut cache = fresh_cache();
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red'.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        cache
            .insert("what is federated learning", "On-device training.", &[])
            .unwrap();
        save_cache(&cache, &path).unwrap();

        // Simulate a restart: a brand-new cache around the same encoder.
        let mut restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 3);
        assert!(restored.lookup("what is federated learning", &[]).is_hit());
        // Context chains survive: the follow-up still requires its parent.
        assert!(restored
            .lookup(
                "change the color to red",
                &["draw a line plot in python".to_string()]
            )
            .is_hit());
        assert!(restored
            .lookup(
                "change the color to red",
                &["write a short poem about the sea".to_string()]
            )
            .is_miss());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saving_replaces_previous_contents() {
        let path = temp_path("replace");
        let mut first = fresh_cache();
        first.insert("old query", "old response", &[]).unwrap();
        save_cache(&first, &path).unwrap();

        let mut second = fresh_cache();
        second.insert("new query", "new response", &[]).unwrap();
        save_cache(&second, &path).unwrap();

        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 1);
        assert!(restored.entries().any(|e| e.query == "new query"));
        assert!(!restored.entries().any(|e| e.query == "old query"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loading_an_empty_store_yields_an_empty_cache() {
        let path = temp_path("empty");
        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert!(restored.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn both_index_backends_round_trip_through_the_log() {
        use mc_store::IndexKind;
        for kind in [IndexKind::flat(), IndexKind::ivf()] {
            let path = temp_path(&format!("kind_{}", kind.name()));
            let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
            let config = MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(kind.clone());
            let mut cache = MeanCache::new(encoder.clone(), config.clone()).unwrap();
            for i in 0..30 {
                cache
                    .insert(
                        &format!("unique query number {i}"),
                        &format!("answer {i}"),
                        &[],
                    )
                    .unwrap();
            }
            save_cache(&cache, &path).unwrap();
            let template = MeanCache::new(encoder, config).unwrap();
            let mut restored = load_cache(template, &path).unwrap();
            assert_eq!(restored.len(), 30);
            assert_eq!(restored.index_kind(), kind.name());
            assert!(restored.lookup("unique query number 17", &[]).is_hit());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn config_sidecar_restores_the_index_backend_automatically() {
        use mc_store::IndexKind;
        let path = temp_path("sidecar");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = MeanCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.55)
                .with_index(IndexKind::ivf()),
        )
        .unwrap();
        cache
            .insert("what is federated learning", "On-device.", &[])
            .unwrap();
        save_cache_with_config(&cache, &path).unwrap();

        // No template: the sidecar supplies the config, including the
        // IVF backend and the tuned threshold.
        let mut restored = load_cache_with_config(encoder.clone(), &path).unwrap();
        assert_eq!(restored.index_kind(), "ivf");
        assert!((restored.threshold() - 0.55).abs() < 1e-6);
        assert!(restored.lookup("what is federated learning", &[]).is_hit());

        // A missing sidecar is an error, not a silent default.
        let bare = temp_path("no_sidecar");
        save_cache(&cache, &bare).unwrap();
        assert!(load_cache_with_config(encoder, &bare).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(config_sidecar(&path)).ok();
        std::fs::remove_file(&bare).ok();
    }

    #[test]
    fn both_sq8_backends_round_trip_through_the_log() {
        use mc_store::IndexKind;
        for kind in [IndexKind::flat_sq8(), IndexKind::ivf_sq8()] {
            let path = temp_path(&format!("kind_{}", kind.name()));
            let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
            let config = MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(kind.clone());
            let mut cache = MeanCache::new(encoder.clone(), config.clone()).unwrap();
            for i in 0..30 {
                cache
                    .insert(
                        &format!("unique query number {i}"),
                        &format!("answer {i}"),
                        &[],
                    )
                    .unwrap();
            }
            save_cache(&cache, &path).unwrap();
            let template = MeanCache::new(encoder, config).unwrap();
            let mut restored = load_cache(template, &path).unwrap();
            assert_eq!(restored.len(), 30);
            assert_eq!(restored.index_kind(), kind.name());
            assert!(restored.lookup("unique query number 17", &[]).is_hit());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn sq8_cache_round_trips_with_bit_identical_codes() {
        use mc_store::{AnyIndex, IndexKind};
        let path = temp_path("sq8_codes");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = MeanCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(IndexKind::flat_sq8()),
        )
        .unwrap();
        let ids: Vec<u64> = (0..25)
            .map(|i| {
                cache
                    .insert(&format!("distinct topic number {i}"), "resp", &[])
                    .unwrap()
            })
            .collect();
        save_cache_with_config(&cache, &path).unwrap();

        // No template: the sidecar alone must restore the SQ8 codec, and the
        // raw-f32 log + deterministic quantiser must reproduce every row's
        // stored codes and constants bit-for-bit.
        let restored = load_cache_with_config(encoder, &path).unwrap();
        assert_eq!(restored.index_kind(), "flat-sq8");
        let (AnyIndex::Flat(before), AnyIndex::Flat(after)) = (cache.index(), restored.index())
        else {
            panic!("both caches are flat-backed")
        };
        for &id in &ids {
            let (codes_a, scale_a, min_a) = before.sq8_row(id).expect("row saved");
            let (codes_b, scale_b, min_b) = after.sq8_row(id).expect("row restored");
            assert_eq!(
                codes_a, codes_b,
                "codes for entry {id} must be bit-identical"
            );
            assert_eq!(scale_a.to_bits(), scale_b.to_bits());
            assert_eq!(min_a.to_bits(), min_b.to_bits());
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(config_sidecar(&path)).ok();
    }

    #[test]
    fn centroid_routing_round_trips_bit_identically() {
        use crate::{RoutingMode, SemanticCache, ShardedCache};
        let path = temp_path("routing");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = ShardedCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_shards(3)
                .with_routing(RoutingMode::Centroid),
        )
        .unwrap();
        let queries: Vec<String> = (0..18)
            .map(|i| format!("distinct persisted subject number {i}"))
            .collect();
        cache.seed_centroids_from_texts(&queries).unwrap();
        for q in &queries {
            cache.insert(q, "resp", &[]).unwrap();
        }
        save_sharded_cache_with_config(&cache, &path).unwrap();

        let restored = crate::persist::load_sharded_cache_with_config(encoder, &path).unwrap();
        assert_eq!(restored.routing(), RoutingMode::Centroid);
        assert!(restored.centroids_seeded());
        // Bit-identical centroids and rebuilt pins ⇒ identical routing:
        // every query (and every paraphrase-shaped fresh root) maps to the
        // same shard before and after the reload.
        for q in &queries {
            assert_eq!(
                cache.shard_of(q, &[]),
                restored.shard_of(q, &[]),
                "{q} re-routed after reload"
            );
            assert_eq!(cache.probe(q, &[]), restored.probe(q, &[]));
        }
        assert_eq!(restored.root_pin_count(), queries.len());
        for i in 0..40 {
            let fresh = format!("never inserted fresh root {i}");
            assert_eq!(
                cache.shard_of(&fresh, &[]),
                restored.shard_of(&fresh, &[]),
                "fresh root {i} re-routed after reload"
            );
        }
        // Cleanup (including the routing sidecar).
        for shard in 0..3 {
            std::fs::remove_file(shard_log_path(&path, shard)).ok();
        }
        std::fs::remove_file(config_sidecar(&path)).ok();
        std::fs::remove_file(routing_sidecar(&path)).ok();
    }

    #[test]
    fn save_writes_a_snapshot_and_load_prefers_it() {
        let path = temp_path("snap_prefer");
        let mut cache = fresh_cache();
        for i in 0..20 {
            cache
                .insert(&format!("snapshot subject {i}"), &format!("resp {i}"), &[])
                .unwrap();
        }
        save_cache(&cache, &path).unwrap();
        assert!(snapshot_path(&path).exists(), "save must write <path>.snap");

        let (restored, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(
            report.snapshot_loaded, 1,
            "load must take the snapshot path"
        );
        assert_eq!(report.wal_tail_replayed, 0);
        assert_eq!(restored.len(), 20);
        let mut restored = restored;
        assert!(restored.lookup("snapshot subject 7", &[]).is_hit());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(snapshot_path(&path)).ok();
    }

    #[test]
    fn log_tail_past_the_snapshot_replays_on_top() {
        let path = temp_path("snap_tail");
        let mut cache = fresh_cache();
        cache.insert("the original entry", "resp", &[]).unwrap();
        save_cache(&cache, &path).unwrap();

        // The log grows past the snapshot (e.g. a crash before re-saving):
        // append two more inserts directly.
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut disk = mc_store::DiskStore::open(&path).unwrap();
        for (id, q) in [(100, "a tail entry"), (101, "another tail entry")] {
            let embedding = encoder.encode(q);
            disk.insert(mc_store::CacheEntry::new(
                id,
                q.to_string(),
                "tail resp".to_string(),
                embedding,
                None,
                7,
            ))
            .unwrap();
        }
        drop(disk);

        let (restored, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 1);
        assert_eq!(report.wal_tail_replayed, 2);
        assert_eq!(restored.len(), 3);
        let mut restored = restored;
        assert!(restored.lookup("a tail entry", &[]).is_hit());
        assert!(restored.lookup("the original entry", &[]).is_hit());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(snapshot_path(&path)).ok();
    }

    #[test]
    fn corrupt_or_stale_snapshot_falls_back_to_replay() {
        let path = temp_path("snap_fallback");
        let mut cache = fresh_cache();
        cache.insert("resilient entry", "resp", &[]).unwrap();
        save_cache(&cache, &path).unwrap();
        let snap = snapshot_path(&path);

        // Corrupt one payload byte in the middle of the snapshot.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        let (restored, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 0, "corrupt snapshot must not load");
        assert_eq!(restored.len(), 1);

        // A stale snapshot (log rewritten underneath it) must also fall
        // back: re-save with different contents but restore the old snap.
        let old_snap = std::fs::read(&snap).ok();
        let mut second = fresh_cache();
        second.insert("completely different", "resp", &[]).unwrap();
        save_cache(&second, &path).unwrap();
        if let Some(old) = old_snap {
            std::fs::write(&snap, old).unwrap();
        }
        let (restored, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 0);
        assert_eq!(restored.len(), 1);
        assert!(restored
            .entries()
            .any(|e| e.query == "completely different"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn snapshot_policy_disabled_skips_and_removes_snapshots() {
        use crate::SnapshotPolicy;
        let path = temp_path("snap_disabled");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let enabled = MeanCacheConfig::default().with_threshold(0.6);
        let mut cache = MeanCache::new(encoder.clone(), enabled.clone()).unwrap();
        cache.insert("some entry", "resp", &[]).unwrap();
        save_cache(&cache, &path).unwrap();
        assert!(snapshot_path(&path).exists());

        // Re-saving with snapshots disabled removes the stale sidecar.
        let disabled = enabled.clone().with_snapshot(SnapshotPolicy::Disabled);
        let mut cache = MeanCache::new(encoder.clone(), disabled.clone()).unwrap();
        cache.insert("some entry", "resp", &[]).unwrap();
        save_cache(&cache, &path).unwrap();
        assert!(
            !snapshot_path(&path).exists(),
            "disabled policy must remove the stale snapshot"
        );

        // A disabled loader ignores a snapshot even when one exists.
        let mut cache = MeanCache::new(encoder.clone(), enabled.clone()).unwrap();
        cache.insert("some entry", "resp", &[]).unwrap();
        save_cache(&cache, &path).unwrap();
        let template = MeanCache::new(encoder, disabled).unwrap();
        let (_, report) = load_cache_with_report(template, &path).unwrap();
        assert_eq!(report.snapshot_loaded, 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(snapshot_path(&path)).ok();
    }

    #[test]
    fn legacy_sharded_save_is_migrated_to_snapshots_on_load() {
        use crate::{SemanticCache, ShardedCache};
        let path = temp_path("snap_migrate");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let config = MeanCacheConfig::default()
            .with_threshold(0.6)
            .with_shards(3);
        let mut cache = ShardedCache::new(encoder.clone(), config).unwrap();
        for i in 0..12 {
            cache
                .insert(&format!("migrated subject {i}"), "resp", &[])
                .unwrap();
        }
        save_sharded_cache_with_config(&cache, &path).unwrap();
        // Simulate a save from before the snapshot tier existed.
        for shard in 0..3 {
            std::fs::remove_file(snapshot_path(&shard_log_path(&path, shard))).unwrap();
        }

        // First restart: full replay, but the load migrates — it writes the
        // missing snapshots.
        let (first, report) = load_sharded_cache_with_report(encoder.clone(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 0);
        assert_eq!(first.len(), 12);
        for shard in 0..3 {
            assert!(
                snapshot_path(&shard_log_path(&path, shard)).exists(),
                "load must write shard {shard}'s missing snapshot"
            );
        }

        // Second restart: every shard takes the fast path.
        let (second, report) = load_sharded_cache_with_report(encoder, &path).unwrap();
        assert_eq!(report.snapshot_loaded, 3);
        assert_eq!(second.len(), 12);
        assert!(second.probe("migrated subject 5", &[]).is_hit());
        for shard in 0..3 {
            let log = shard_log_path(&path, shard);
            std::fs::remove_file(snapshot_path(&log)).ok();
            std::fs::remove_file(&log).ok();
        }
        std::fs::remove_file(config_sidecar(&path)).ok();
    }

    #[test]
    fn snapshot_restore_is_decision_identical_to_replay() {
        // The same save loaded twice — once via the snapshot, once via
        // forced replay — must produce caches that answer identically.
        let path = temp_path("snap_identical");
        let mut cache = fresh_cache();
        for i in 0..25 {
            cache
                .insert(&format!("identity subject {i}"), &format!("resp {i}"), &[])
                .unwrap();
        }
        cache
            .insert(
                "a follow-up question",
                "follow resp",
                &["identity subject 3".to_string()],
            )
            .unwrap();
        save_cache(&cache, &path).unwrap();

        let (via_snapshot, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 1);
        let snap = snapshot_path(&path);
        let snap_bytes = std::fs::read(&snap).unwrap();
        std::fs::remove_file(&snap).unwrap();
        let (via_replay, report) = load_cache_with_report(fresh_cache(), &path).unwrap();
        assert_eq!(report.snapshot_loaded, 0);
        std::fs::write(&snap, snap_bytes).unwrap();

        assert_eq!(via_snapshot.len(), via_replay.len());
        let probes: Vec<String> = (0..25)
            .map(|i| format!("identity subject {i}"))
            .chain(["a follow-up question".to_string()])
            .collect();
        let mut via_snapshot = via_snapshot;
        let mut via_replay = via_replay;
        for q in &probes {
            let ctx = ["identity subject 3".to_string()];
            assert_eq!(
                via_snapshot.lookup(q, &ctx),
                via_replay.lookup(q, &ctx),
                "lookup({q}) diverged between snapshot and replay restore"
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn dimension_mismatch_is_reported_when_compression_changes() {
        let path = temp_path("mismatch");
        let mut cache = fresh_cache();
        cache.insert("a cached query", "a response", &[]).unwrap();
        save_cache(&cache, &path).unwrap();

        // Template whose encoder now compresses to 8 dimensions: the stored
        // 48-d embeddings no longer fit its index.
        let mut encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let corpus: Vec<String> = (0..30).map(|i| format!("corpus query {i}")).collect();
        encoder.fit_pca(&corpus, 8, 1).unwrap();
        let template =
            MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        assert!(load_cache(template, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
