//! Persistence of the local cache across application restarts.
//!
//! The paper's implementation keeps the user's cache on disk with the
//! DiskCache library so responses survive restarts. Here the cache contents
//! are written to `mc-store`'s append-only [`DiskStore`] and reloaded into a
//! fresh [`MeanCache`] built around the same encoder.
//!
//! The entry log is **index-agnostic**: it stores raw `f32` embeddings (the
//! binary layout's `[u32 dims][f32 * dims]` payload), and loading re-inserts
//! them into whatever [`mc_store::VectorIndex`] backend the target cache's
//! configuration selects (an IVF-backed cache re-clusters as it refills).
//! [`save_cache_with_config`] / [`load_cache_with_config`] additionally
//! round-trip the [`MeanCacheConfig`] — including its
//! [`mc_store::IndexKind`], and therefore the row codec
//! ([`mc_store::Quantization`]) — through a JSON sidecar, so a deployment
//! can restore a cache without hard-coding which backend wrote it.
//!
//! **SQ8 caches round-trip with bit-identical codes.** The sidecar restores
//! the SQ8 [`mc_store::IndexKind`]; the raw-`f32` log is the codec's exact
//! input, and `QuantizedVec::quantize` is deterministic, so replaying the
//! log reproduces every row's codes and scale/min constants bit-for-bit
//! (asserted by `sq8_cache_round_trips_with_bit_identical_codes`). Keeping
//! the log at full precision — rather than persisting the codes themselves —
//! also means the store's context-chain embeddings stay exact, and a
//! deployment can flip codecs (or back) on an existing log with nothing but
//! a config change.
//!
//! **Sharded caches** persist as one entry log per shard plus the shared
//! config sidecar ([`save_sharded_cache_with_config`] /
//! [`load_sharded_cache_with_config`]): the sidecar's
//! [`MeanCacheConfig::shards`] and [`MeanCacheConfig::routing`] guarantee a
//! reload reassembles the exact same query → shard assignment. Under
//! [`crate::RoutingMode::Centroid`] the learned routing centroids ride in a
//! third sidecar (`<path>.routing.json`) with their `f32` components stored
//! as raw bit patterns, so reloaded routing is bit-identical to what was
//! saved; the root pin table is *not* persisted — the per-shard logs **are**
//! the root → shard assignment, and the loader rebuilds the pins from them.
//!
//! **Resharding.** A save records its shard count and routing mode, and
//! loading with [`load_sharded_cache_with_config`] reproduces them exactly
//! (public-id stability depends on it). To reload under a *different*
//! shard count or [`crate::RoutingMode`], go through
//! [`reshard_saved_cache`], which restores the save faithfully and then
//! replays every entry through fresh routing via [`crate::reshard`]:
//!
//! ```
//! use mc_embedder::{ModelProfile, QueryEncoder};
//! use meancache::persist::{reshard_saved_cache, save_sharded_cache_with_config};
//! use meancache::{MeanCacheConfig, RoutingMode, SemanticCache, ShardedCache};
//!
//! let dir = std::env::temp_dir().join(format!("mc_persist_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("cache.log");
//!
//! let encoder = QueryEncoder::new(ModelProfile::tiny(), 7).unwrap();
//! let config = MeanCacheConfig::default().with_threshold(0.6).with_shards(3);
//! let mut cache = ShardedCache::new(encoder.clone(), config.clone()).unwrap();
//! cache.insert("what is federated learning", "On-device training.", &[]).unwrap();
//! save_sharded_cache_with_config(&cache, &path).unwrap();
//!
//! // Reload as a 2-shard scatter-gather cache: same contents, new routing.
//! let resharded = reshard_saved_cache(
//!     encoder,
//!     &path,
//!     config.with_shards(2).with_routing(RoutingMode::ScatterGather),
//! )
//! .unwrap();
//! assert_eq!(resharded.shard_count(), 2);
//! assert!(resharded.probe("what is federated learning", &[]).is_hit());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::path::{Path, PathBuf};

use mc_embedder::QueryEncoder;
use mc_store::{DiskStore, RecoveryStats};
use serde::{Deserialize, Serialize};

use crate::shard::RoutingMode;
use crate::{CacheError, MeanCache, MeanCacheConfig, Result, ShardedCache};

/// Writes every cached entry to the disk store at `path` (replacing existing
/// contents) and compacts the log.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_cache(cache: &MeanCache, path: &Path) -> Result<()> {
    // Start from a clean log so the file reflects exactly the current cache.
    if path.exists() {
        std::fs::remove_file(path).map_err(mc_store::StoreError::from)?;
    }
    let mut disk = DiskStore::open_with_policy(path, cache.config().fsync)?;
    // Insert parents before children so a partially-written log never holds a
    // dangling parent reference.
    let mut entries: Vec<_> = cache.entries().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        disk.insert(entry)?;
    }
    disk.compact()?;
    Ok(())
}

/// Loads a previously saved cache from `path` into a fresh [`MeanCache`]
/// configured like `template` (same encoder, same configuration).
///
/// # Errors
/// Propagates storage/IO failures and dimension mismatches (e.g. when the
/// encoder's compression setting changed since the cache was saved).
pub fn load_cache(template: MeanCache, path: &Path) -> Result<MeanCache> {
    Ok(load_cache_with_report(template, path)?.0)
}

/// [`load_cache`], additionally reporting what crash recovery found while
/// replaying the entry log (checksummed records replayed, torn/corrupt
/// tail bytes truncated off the file).
///
/// # Errors
/// See [`load_cache`].
pub fn load_cache_with_report(
    template: MeanCache,
    path: &Path,
) -> Result<(MeanCache, RecoveryStats)> {
    let mut cache = template;
    let recovery = replay_log_into(&mut cache, path)?;
    Ok((cache, recovery))
}

/// Replays the entry log at `path` into `cache` (parents before children, so
/// a partially written log never leaves a dangling reference), returning the
/// log's crash-recovery stats.
fn replay_log_into(cache: &mut MeanCache, path: &Path) -> Result<RecoveryStats> {
    let disk = DiskStore::open(path)?;
    let mut entries: Vec<_> = disk.iter().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        cache.restore_entry(entry)?;
    }
    Ok(disk.recovery_stats())
}

/// Path of the JSON configuration sidecar for the log at `path`.
fn config_sidecar(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".config.json");
    PathBuf::from(name)
}

/// Saves the cache contents to `path` *and* its [`MeanCacheConfig`] (index
/// backend included) to a `<path>.config.json` sidecar, so the cache can be
/// restored without out-of-band knowledge of how it was configured.
///
/// The sidecar's `shards` field is normalised to `1`: what is being
/// persisted *is* a single unsharded log, even when the `MeanCache` was
/// built from a config whose (ignored) `shards` knob said otherwise — a
/// sidecar claiming more shards than there are logs would make the reload
/// path reject or, worse, misread the save.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_cache_with_config(cache: &MeanCache, path: &Path) -> Result<()> {
    save_cache(cache, path)?;
    let json = serde_json::to_string(&cache.config().clone().with_shards(1))
        .map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(config_sidecar(path), json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores a cache saved by [`save_cache_with_config`]: reads the config
/// sidecar, builds a fresh [`MeanCache`] (with the persisted index backend)
/// around `encoder`, and replays the entry log into it.
///
/// # Errors
/// Propagates storage/IO failures, a missing or malformed sidecar, and
/// dimension mismatches. A sidecar recording more than one shard is
/// rejected: that save has per-shard logs and must go through
/// [`load_sharded_cache_with_config`] — opening the (absent) base-path log
/// here would silently present an empty cache as the loaded result.
pub fn load_cache_with_config(encoder: QueryEncoder, path: &Path) -> Result<MeanCache> {
    let config = read_config_sidecar(path)?;
    if config.effective_shards() > 1 {
        return Err(CacheError::InvalidConfig(format!(
            "cache at {} was saved with {} shards: load it with \
             load_sharded_cache_with_config",
            path.display(),
            config.effective_shards()
        )));
    }
    load_cache(MeanCache::new(encoder, config)?, path)
}

/// Reads and parses the `<path>.config.json` sidecar.
fn read_config_sidecar(path: &Path) -> Result<MeanCacheConfig> {
    let json = std::fs::read_to_string(config_sidecar(path)).map_err(mc_store::StoreError::from)?;
    serde_json::from_str(&json).map_err(|e| CacheError::InvalidConfig(e.to_string()))
}

/// Path of shard `i`'s entry log for the sharded cache rooted at `path`.
fn shard_log_path(path: &Path, shard: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// Path of the routing-state sidecar (centroids) for the save at `path`.
fn routing_sidecar(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".routing.json");
    PathBuf::from(name)
}

/// On-disk form of the centroid router state. `f32` centroid components
/// are stored as raw bit patterns (`u32`), because routing must survive a
/// save/load cycle *bit-identically* — a decimal round-trip that perturbed
/// one component could silently re-route a query family.
#[derive(Debug, Serialize, Deserialize)]
struct RoutingSidecar {
    /// One centroid per shard, components as `f32::to_bits`.
    centroid_bits: Vec<Vec<u32>>,
    /// Roots absorbed per centroid (the incremental update's schedule).
    counts: Vec<u64>,
}

/// Writes (or removes, when `cache` has no centroids) the routing sidecar.
fn save_routing_sidecar(cache: &ShardedCache, path: &Path) -> Result<()> {
    let (centroids, counts) = cache.centroid_state();
    let sidecar_path = routing_sidecar(path);
    if centroids.is_empty() {
        if sidecar_path.exists() {
            std::fs::remove_file(&sidecar_path).map_err(mc_store::StoreError::from)?;
        }
        return Ok(());
    }
    let sidecar = RoutingSidecar {
        centroid_bits: centroids
            .iter()
            .map(|c| c.iter().map(|x| x.to_bits()).collect())
            .collect(),
        counts,
    };
    let json =
        serde_json::to_string(&sidecar).map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(sidecar_path, json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores the routing sidecar into `cache`, if one exists.
fn load_routing_sidecar(cache: &mut ShardedCache, path: &Path) -> Result<()> {
    let sidecar_path = routing_sidecar(path);
    if !sidecar_path.exists() {
        return Ok(());
    }
    let json = std::fs::read_to_string(&sidecar_path).map_err(mc_store::StoreError::from)?;
    let sidecar: RoutingSidecar =
        serde_json::from_str(&json).map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    let centroids: Vec<Vec<f32>> = sidecar
        .centroid_bits
        .iter()
        .map(|c| c.iter().map(|&bits| f32::from_bits(bits)).collect())
        .collect();
    cache.restore_centroid_state(centroids, sidecar.counts)
}

/// Persists a [`ShardedCache`]: one entry log per shard
/// (`<path>.shard0`, `<path>.shard1`, …) plus a single
/// `<path>.config.json` sidecar recording the [`MeanCacheConfig`] —
/// including the shard count, which [`load_sharded_cache_with_config`]
/// needs to reassemble the same routing. Stale shard logs beyond the live
/// shard count are removed so a re-save with fewer shards cannot leave
/// orphaned entries behind.
///
/// Shard logs keep **shard-local** entry ids; because routing is a fixed
/// hash of the query/conversation-root text and the shard count is restored
/// from the sidecar, a reload reassembles exactly the same entry → shard
/// assignment and therefore the same public (namespaced) ids.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_sharded_cache_with_config(cache: &ShardedCache, path: &Path) -> Result<()> {
    for shard in 0..cache.shard_count() {
        cache.with_shard(shard, |inner| {
            save_cache(inner, &shard_log_path(path, shard))
        })?;
    }
    // Clean up logs from a previous save with a higher shard count, and a
    // base-path log from a previous *unsharded* save — either would be
    // stale data sitting next to the sidecar about to be written.
    let mut stale = cache.shard_count();
    while shard_log_path(path, stale).exists() {
        std::fs::remove_file(shard_log_path(path, stale)).map_err(mc_store::StoreError::from)?;
        stale += 1;
    }
    if path.exists() {
        std::fs::remove_file(path).map_err(mc_store::StoreError::from)?;
    }
    save_routing_sidecar(cache, path)?;
    let json = serde_json::to_string(cache.config())
        .map_err(|e| CacheError::InvalidConfig(e.to_string()))?;
    std::fs::write(config_sidecar(path), json).map_err(mc_store::StoreError::from)?;
    Ok(())
}

/// Restores a cache saved by [`save_sharded_cache_with_config`]: reads the
/// sidecar, builds a fresh [`ShardedCache`] with the persisted shard count
/// around `encoder`, and replays each shard's log into its shard.
///
/// # Errors
/// Propagates storage/IO failures, a missing or malformed sidecar, and
/// dimension mismatches. A missing shard log is an error, not an empty
/// shard: the save path writes every shard's log (empty shards included),
/// so absence means a truncated save or a log written by the *unsharded*
/// [`save_cache_with_config`] — silently loading the survivors would
/// present a partial cache as complete.
pub fn load_sharded_cache_with_config(encoder: QueryEncoder, path: &Path) -> Result<ShardedCache> {
    Ok(load_sharded_cache_with_report(encoder, path)?.0)
}

/// [`load_sharded_cache_with_config`], additionally aggregating the crash
/// recovery stats across every shard's entry log (records replayed, torn
/// tail bytes truncated) so callers — the serve layer in particular — can
/// surface what a restart recovered.
///
/// # Errors
/// See [`load_sharded_cache_with_config`].
pub fn load_sharded_cache_with_report(
    encoder: QueryEncoder,
    path: &Path,
) -> Result<(ShardedCache, RecoveryStats)> {
    let config = read_config_sidecar(path)?;
    let mut cache = ShardedCache::new(encoder, config)?;
    load_routing_sidecar(&mut cache, path)?;
    let mut recovery = RecoveryStats::default();
    for shard in 0..cache.shard_count() {
        let log = shard_log_path(path, shard);
        if !log.exists() {
            return Err(CacheError::InvalidConfig(format!(
                "sharded cache at {} is missing shard log {}: the save was \
                 incomplete or written by the unsharded persistence path",
                path.display(),
                log.display()
            )));
        }
        recovery.merge(replay_log_into(cache.shard_cache_mut(shard), &log)?);
    }
    if cache.routing() != RoutingMode::Hash {
        // The logs are the root → shard assignment; rebuild the pin table
        // so exact repeats and follow-ups keep routing to their entries.
        cache.rebuild_pins();
    }
    Ok((cache, recovery))
}

/// Restores a save written by [`save_sharded_cache_with_config`] and then
/// replays it through **fresh routing** under `new_config` (a different
/// shard count and/or [`crate::RoutingMode`]) via [`crate::reshard`].
///
/// This is the supported way to change the topology of a persisted cache:
/// loading with the original sidecar keeps public ids stable, so any change
/// to `shards` or `routing` must go through an explicit reshard — public
/// ids are reassigned, contents and decisions are preserved. Save the
/// result back with [`save_sharded_cache_with_config`] to make the new
/// topology the persisted one.
///
/// # Errors
/// Propagates load failures (missing logs/sidecar) and
/// [`crate::CacheError::InvalidConfig`] for an invalid `new_config`.
pub fn reshard_saved_cache(
    encoder: QueryEncoder,
    path: &Path,
    new_config: MeanCacheConfig,
) -> Result<ShardedCache> {
    let restored = load_sharded_cache_with_config(encoder, path)?;
    crate::reshard(&restored, new_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeanCacheConfig, SemanticCache};
    use mc_embedder::{ModelProfile, QueryEncoder};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meancache_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{name}_{}_{}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn fresh_cache() -> MeanCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap()
    }

    #[test]
    fn save_and_reload_preserves_hits_and_context_chains() {
        let path = temp_path("roundtrip");
        let mut cache = fresh_cache();
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red'.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        cache
            .insert("what is federated learning", "On-device training.", &[])
            .unwrap();
        save_cache(&cache, &path).unwrap();

        // Simulate a restart: a brand-new cache around the same encoder.
        let mut restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 3);
        assert!(restored.lookup("what is federated learning", &[]).is_hit());
        // Context chains survive: the follow-up still requires its parent.
        assert!(restored
            .lookup(
                "change the color to red",
                &["draw a line plot in python".to_string()]
            )
            .is_hit());
        assert!(restored
            .lookup(
                "change the color to red",
                &["write a short poem about the sea".to_string()]
            )
            .is_miss());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saving_replaces_previous_contents() {
        let path = temp_path("replace");
        let mut first = fresh_cache();
        first.insert("old query", "old response", &[]).unwrap();
        save_cache(&first, &path).unwrap();

        let mut second = fresh_cache();
        second.insert("new query", "new response", &[]).unwrap();
        save_cache(&second, &path).unwrap();

        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 1);
        assert!(restored.entries().any(|e| e.query == "new query"));
        assert!(!restored.entries().any(|e| e.query == "old query"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loading_an_empty_store_yields_an_empty_cache() {
        let path = temp_path("empty");
        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert!(restored.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn both_index_backends_round_trip_through_the_log() {
        use mc_store::IndexKind;
        for kind in [IndexKind::flat(), IndexKind::ivf()] {
            let path = temp_path(&format!("kind_{}", kind.name()));
            let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
            let config = MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(kind.clone());
            let mut cache = MeanCache::new(encoder.clone(), config.clone()).unwrap();
            for i in 0..30 {
                cache
                    .insert(
                        &format!("unique query number {i}"),
                        &format!("answer {i}"),
                        &[],
                    )
                    .unwrap();
            }
            save_cache(&cache, &path).unwrap();
            let template = MeanCache::new(encoder, config).unwrap();
            let mut restored = load_cache(template, &path).unwrap();
            assert_eq!(restored.len(), 30);
            assert_eq!(restored.index_kind(), kind.name());
            assert!(restored.lookup("unique query number 17", &[]).is_hit());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn config_sidecar_restores_the_index_backend_automatically() {
        use mc_store::IndexKind;
        let path = temp_path("sidecar");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = MeanCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.55)
                .with_index(IndexKind::ivf()),
        )
        .unwrap();
        cache
            .insert("what is federated learning", "On-device.", &[])
            .unwrap();
        save_cache_with_config(&cache, &path).unwrap();

        // No template: the sidecar supplies the config, including the
        // IVF backend and the tuned threshold.
        let mut restored = load_cache_with_config(encoder.clone(), &path).unwrap();
        assert_eq!(restored.index_kind(), "ivf");
        assert!((restored.threshold() - 0.55).abs() < 1e-6);
        assert!(restored.lookup("what is federated learning", &[]).is_hit());

        // A missing sidecar is an error, not a silent default.
        let bare = temp_path("no_sidecar");
        save_cache(&cache, &bare).unwrap();
        assert!(load_cache_with_config(encoder, &bare).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(config_sidecar(&path)).ok();
        std::fs::remove_file(&bare).ok();
    }

    #[test]
    fn both_sq8_backends_round_trip_through_the_log() {
        use mc_store::IndexKind;
        for kind in [IndexKind::flat_sq8(), IndexKind::ivf_sq8()] {
            let path = temp_path(&format!("kind_{}", kind.name()));
            let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
            let config = MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(kind.clone());
            let mut cache = MeanCache::new(encoder.clone(), config.clone()).unwrap();
            for i in 0..30 {
                cache
                    .insert(
                        &format!("unique query number {i}"),
                        &format!("answer {i}"),
                        &[],
                    )
                    .unwrap();
            }
            save_cache(&cache, &path).unwrap();
            let template = MeanCache::new(encoder, config).unwrap();
            let mut restored = load_cache(template, &path).unwrap();
            assert_eq!(restored.len(), 30);
            assert_eq!(restored.index_kind(), kind.name());
            assert!(restored.lookup("unique query number 17", &[]).is_hit());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn sq8_cache_round_trips_with_bit_identical_codes() {
        use mc_store::{AnyIndex, IndexKind};
        let path = temp_path("sq8_codes");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = MeanCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_index(IndexKind::flat_sq8()),
        )
        .unwrap();
        let ids: Vec<u64> = (0..25)
            .map(|i| {
                cache
                    .insert(&format!("distinct topic number {i}"), "resp", &[])
                    .unwrap()
            })
            .collect();
        save_cache_with_config(&cache, &path).unwrap();

        // No template: the sidecar alone must restore the SQ8 codec, and the
        // raw-f32 log + deterministic quantiser must reproduce every row's
        // stored codes and constants bit-for-bit.
        let restored = load_cache_with_config(encoder, &path).unwrap();
        assert_eq!(restored.index_kind(), "flat-sq8");
        let (AnyIndex::Flat(before), AnyIndex::Flat(after)) = (cache.index(), restored.index())
        else {
            panic!("both caches are flat-backed")
        };
        for &id in &ids {
            let (codes_a, scale_a, min_a) = before.sq8_row(id).expect("row saved");
            let (codes_b, scale_b, min_b) = after.sq8_row(id).expect("row restored");
            assert_eq!(
                codes_a, codes_b,
                "codes for entry {id} must be bit-identical"
            );
            assert_eq!(scale_a.to_bits(), scale_b.to_bits());
            assert_eq!(min_a.to_bits(), min_b.to_bits());
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(config_sidecar(&path)).ok();
    }

    #[test]
    fn centroid_routing_round_trips_bit_identically() {
        use crate::{RoutingMode, SemanticCache, ShardedCache};
        let path = temp_path("routing");
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let mut cache = ShardedCache::new(
            encoder.clone(),
            MeanCacheConfig::default()
                .with_threshold(0.6)
                .with_shards(3)
                .with_routing(RoutingMode::Centroid),
        )
        .unwrap();
        let queries: Vec<String> = (0..18)
            .map(|i| format!("distinct persisted subject number {i}"))
            .collect();
        cache.seed_centroids_from_texts(&queries).unwrap();
        for q in &queries {
            cache.insert(q, "resp", &[]).unwrap();
        }
        save_sharded_cache_with_config(&cache, &path).unwrap();

        let restored = crate::persist::load_sharded_cache_with_config(encoder, &path).unwrap();
        assert_eq!(restored.routing(), RoutingMode::Centroid);
        assert!(restored.centroids_seeded());
        // Bit-identical centroids and rebuilt pins ⇒ identical routing:
        // every query (and every paraphrase-shaped fresh root) maps to the
        // same shard before and after the reload.
        for q in &queries {
            assert_eq!(
                cache.shard_of(q, &[]),
                restored.shard_of(q, &[]),
                "{q} re-routed after reload"
            );
            assert_eq!(cache.probe(q, &[]), restored.probe(q, &[]));
        }
        assert_eq!(restored.root_pin_count(), queries.len());
        for i in 0..40 {
            let fresh = format!("never inserted fresh root {i}");
            assert_eq!(
                cache.shard_of(&fresh, &[]),
                restored.shard_of(&fresh, &[]),
                "fresh root {i} re-routed after reload"
            );
        }
        // Cleanup (including the routing sidecar).
        for shard in 0..3 {
            std::fs::remove_file(shard_log_path(&path, shard)).ok();
        }
        std::fs::remove_file(config_sidecar(&path)).ok();
        std::fs::remove_file(routing_sidecar(&path)).ok();
    }

    #[test]
    fn dimension_mismatch_is_reported_when_compression_changes() {
        let path = temp_path("mismatch");
        let mut cache = fresh_cache();
        cache.insert("a cached query", "a response", &[]).unwrap();
        save_cache(&cache, &path).unwrap();

        // Template whose encoder now compresses to 8 dimensions: the stored
        // 48-d embeddings no longer fit its index.
        let mut encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let corpus: Vec<String> = (0..30).map(|i| format!("corpus query {i}")).collect();
        encoder.fit_pca(&corpus, 8, 1).unwrap();
        let template =
            MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        assert!(load_cache(template, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
