//! Persistence of the local cache across application restarts.
//!
//! The paper's implementation keeps the user's cache on disk with the
//! DiskCache library so responses survive restarts. Here the cache contents
//! are written to `mc-store`'s append-only [`DiskStore`] and reloaded into a
//! fresh [`MeanCache`] built around the same encoder.

use std::path::Path;

use mc_store::DiskStore;

use crate::{MeanCache, Result};

/// Writes every cached entry to the disk store at `path` (replacing existing
/// contents) and compacts the log.
///
/// # Errors
/// Propagates storage/IO failures.
pub fn save_cache(cache: &MeanCache, path: &Path) -> Result<()> {
    // Start from a clean log so the file reflects exactly the current cache.
    if path.exists() {
        std::fs::remove_file(path).map_err(mc_store::StoreError::from)?;
    }
    let mut disk = DiskStore::open(path)?;
    // Insert parents before children so a partially-written log never holds a
    // dangling parent reference.
    let mut entries: Vec<_> = cache.entries().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        disk.insert(entry)?;
    }
    disk.compact()?;
    Ok(())
}

/// Loads a previously saved cache from `path` into a fresh [`MeanCache`]
/// configured like `template` (same encoder, same configuration).
///
/// # Errors
/// Propagates storage/IO failures and dimension mismatches (e.g. when the
/// encoder's compression setting changed since the cache was saved).
pub fn load_cache(template: MeanCache, path: &Path) -> Result<MeanCache> {
    let disk = DiskStore::open(path)?;
    let mut cache = template;
    let mut entries: Vec<_> = disk.iter().cloned().collect();
    entries.sort_by_key(|e| (e.parent.is_some(), e.id));
    for entry in entries {
        cache.restore_entry(entry)?;
    }
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeanCacheConfig, SemanticCache};
    use mc_embedder::{ModelProfile, QueryEncoder};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("meancache_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{name}_{}_{}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn fresh_cache() -> MeanCache {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap()
    }

    #[test]
    fn save_and_reload_preserves_hits_and_context_chains() {
        let path = temp_path("roundtrip");
        let mut cache = fresh_cache();
        cache
            .insert("draw a line plot in python", "Use plt.plot.", &[])
            .unwrap();
        cache
            .insert(
                "change the color to red",
                "Pass color='red'.",
                &["draw a line plot in python".to_string()],
            )
            .unwrap();
        cache
            .insert("what is federated learning", "On-device training.", &[])
            .unwrap();
        save_cache(&cache, &path).unwrap();

        // Simulate a restart: a brand-new cache around the same encoder.
        let mut restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 3);
        assert!(restored
            .lookup("what is federated learning", &[])
            .is_hit());
        // Context chains survive: the follow-up still requires its parent.
        assert!(restored
            .lookup(
                "change the color to red",
                &["draw a line plot in python".to_string()]
            )
            .is_hit());
        assert!(restored
            .lookup(
                "change the color to red",
                &["write a short poem about the sea".to_string()]
            )
            .is_miss());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saving_replaces_previous_contents() {
        let path = temp_path("replace");
        let mut first = fresh_cache();
        first.insert("old query", "old response", &[]).unwrap();
        save_cache(&first, &path).unwrap();

        let mut second = fresh_cache();
        second.insert("new query", "new response", &[]).unwrap();
        save_cache(&second, &path).unwrap();

        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert_eq!(restored.len(), 1);
        assert!(restored.entries().any(|e| e.query == "new query"));
        assert!(!restored.entries().any(|e| e.query == "old query"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loading_an_empty_store_yields_an_empty_cache() {
        let path = temp_path("empty");
        let restored = load_cache(fresh_cache(), &path).unwrap();
        assert!(restored.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimension_mismatch_is_reported_when_compression_changes() {
        let path = temp_path("mismatch");
        let mut cache = fresh_cache();
        cache.insert("a cached query", "a response", &[]).unwrap();
        save_cache(&cache, &path).unwrap();

        // Template whose encoder now compresses to 8 dimensions: the stored
        // 48-d embeddings no longer fit its index.
        let mut encoder = QueryEncoder::new(ModelProfile::tiny(), 11).unwrap();
        let corpus: Vec<String> = (0..30).map(|i| format!("corpus query {i}")).collect();
        encoder.fit_pca(&corpus, 8, 1).unwrap();
        let template =
            MeanCache::new(encoder, MeanCacheConfig::default().with_threshold(0.6)).unwrap();
        assert!(load_cache(template, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
