//! Server-side aggregation: FedAvg (Eq. 1 of the paper), threshold
//! averaging, and aggregation-method selection.

use mc_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::{client::ClientUpdate, FlError, Result};

/// Which aggregation rule the server applies to client updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregationMethod {
    /// Sample-count-weighted averaging (McMahan et al.), the paper's choice.
    #[default]
    FedAvg,
    /// Unweighted averaging — every client counts equally regardless of how
    /// much data it holds (useful as an ablation when client sizes are very
    /// skewed).
    UniformAverage,
}

/// FedAvg: `W_global = Σ_k (n_k / n) * w_k` (Eq. 1).
///
/// # Errors
/// * [`FlError::NoClients`] when `updates` is empty.
/// * [`FlError::ShapeMismatch`] when parameter vectors disagree in length.
pub fn fedavg(updates: &[ClientUpdate]) -> Result<Vector> {
    weighted_average(updates, |u| u.num_samples as f32)
}

/// Unweighted parameter average.
///
/// # Errors
/// Same as [`fedavg`].
pub fn uniform_average(updates: &[ClientUpdate]) -> Result<Vector> {
    weighted_average(updates, |_| 1.0)
}

/// Aggregates with the selected method.
///
/// # Errors
/// Same as [`fedavg`].
pub fn aggregate(method: AggregationMethod, updates: &[ClientUpdate]) -> Result<Vector> {
    match method {
        AggregationMethod::FedAvg => fedavg(updates),
        AggregationMethod::UniformAverage => uniform_average(updates),
    }
}

fn weighted_average(
    updates: &[ClientUpdate],
    weight_of: impl Fn(&ClientUpdate) -> f32,
) -> Result<Vector> {
    let first = updates
        .first()
        .ok_or_else(|| FlError::NoClients("aggregate received no updates".into()))?;
    let dim = first.parameters.len();
    let mut total_weight = 0.0f32;
    let mut acc = Vector::zeros(dim);
    for u in updates {
        if u.parameters.len() != dim {
            return Err(FlError::ShapeMismatch(format!(
                "client {} sent {} parameters, expected {dim}",
                u.client_id,
                u.parameters.len()
            )));
        }
        let w = weight_of(u).max(0.0);
        total_weight += w;
        acc.axpy(w, &u.parameters).map_err(FlError::from)?;
    }
    if total_weight <= 0.0 {
        return Err(FlError::NoClients(
            "aggregate received only zero-weight updates".into(),
        ));
    }
    acc.scale(1.0 / total_weight);
    Ok(acc)
}

/// Mean of the clients' locally-optimal thresholds, weighted by sample count
/// — the global threshold `τ_global` that bootstraps new users
/// (Section III-A3).
///
/// # Errors
/// Returns [`FlError::NoClients`] when `updates` is empty.
pub fn mean_threshold(updates: &[ClientUpdate]) -> Result<f32> {
    if updates.is_empty() {
        return Err(FlError::NoClients(
            "mean_threshold received no updates".into(),
        ));
    }
    let total: f32 = updates.iter().map(|u| u.num_samples as f32).sum();
    if total <= 0.0 {
        // All clients are empty: fall back to an unweighted mean.
        let sum: f32 = updates.iter().map(|u| u.optimal_threshold).sum();
        return Ok(sum / updates.len() as f32);
    }
    Ok(updates
        .iter()
        .map(|u| u.optimal_threshold * u.num_samples as f32 / total)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::TrainingStats;

    fn update(id: usize, params: Vec<f32>, n: usize, tau: f32) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            parameters: Vector::from_vec(params),
            num_samples: n,
            optimal_threshold: tau,
            stats: TrainingStats::default(),
        }
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let updates = vec![
            update(0, vec![1.0, 0.0], 30, 0.8),
            update(1, vec![0.0, 1.0], 10, 0.6),
        ];
        let agg = fedavg(&updates).unwrap();
        assert!((agg[0] - 0.75).abs() < 1e-6);
        assert!((agg[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn uniform_average_ignores_sample_counts() {
        let updates = vec![
            update(0, vec![1.0, 0.0], 1000, 0.8),
            update(1, vec![0.0, 1.0], 1, 0.6),
        ];
        let agg = uniform_average(&updates).unwrap();
        assert!((agg[0] - 0.5).abs() < 1e-6);
        assert!((agg[1] - 0.5).abs() < 1e-6);
        // The dispatcher picks the right rule.
        let via_dispatch = aggregate(AggregationMethod::UniformAverage, &updates).unwrap();
        assert_eq!(via_dispatch, agg);
        assert_ne!(aggregate(AggregationMethod::FedAvg, &updates).unwrap(), agg);
    }

    #[test]
    fn fedavg_of_identical_models_is_identity() {
        let updates = vec![
            update(0, vec![0.5, -0.25, 1.0], 5, 0.7),
            update(1, vec![0.5, -0.25, 1.0], 50, 0.7),
        ];
        let agg = fedavg(&updates).unwrap();
        for (got, want) in agg.as_slice().iter().zip(&[0.5f32, -0.25, 1.0]) {
            assert!((got - want).abs() < 1e-5, "got={got} want={want}");
        }
    }

    #[test]
    fn aggregation_result_stays_within_client_convex_hull() {
        // Every coordinate of the FedAvg result must lie between the min and
        // max of the client values (convex combination).
        let updates = vec![
            update(0, vec![-1.0, 2.0, 0.3], 3, 0.5),
            update(1, vec![1.0, 4.0, 0.1], 9, 0.9),
            update(2, vec![0.0, 3.0, 0.2], 6, 0.7),
        ];
        let agg = fedavg(&updates).unwrap();
        for i in 0..3 {
            let vals: Vec<f32> = updates.iter().map(|u| u.parameters[i]).collect();
            let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert!(agg[i] >= lo - 1e-6 && agg[i] <= hi + 1e-6);
        }
    }

    #[test]
    fn errors_on_empty_or_mismatched_updates() {
        assert!(matches!(fedavg(&[]), Err(FlError::NoClients(_))));
        let updates = vec![
            update(0, vec![1.0, 2.0], 5, 0.5),
            update(1, vec![1.0], 5, 0.5),
        ];
        assert!(matches!(fedavg(&updates), Err(FlError::ShapeMismatch(_))));
        let zero_weight = vec![update(0, vec![1.0], 0, 0.5)];
        assert!(matches!(fedavg(&zero_weight), Err(FlError::NoClients(_))));
    }

    #[test]
    fn mean_threshold_is_weighted_and_bounded() {
        let updates = vec![update(0, vec![0.0], 30, 0.9), update(1, vec![0.0], 10, 0.5)];
        let tau = mean_threshold(&updates).unwrap();
        assert!((tau - 0.8).abs() < 1e-6);
        assert!(matches!(mean_threshold(&[]), Err(FlError::NoClients(_))));
        // Zero-sample clients fall back to an unweighted mean.
        let empty_clients = vec![update(0, vec![0.0], 0, 0.4), update(1, vec![0.0], 0, 0.8)];
        assert!((mean_threshold(&empty_clients).unwrap() - 0.6).abs() < 1e-6);
    }
}
