//! Federated clients: local training plus threshold search.

use mc_embedder::{
    optimal_cache_threshold, LocalTrainer, QueryEncoder, TrainerConfig, TrainingStats,
};
use mc_tensor::Vector;
use mc_text::PairDataset;
use serde::{Deserialize, Serialize};

use crate::{FlError, Result};

/// Hyper-parameters the server ships to clients each round (Figure 2, step 1
/// mentions learning rate, batch size and epochs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Number of local epochs.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the local optimiser.
    pub learning_rate: f32,
    /// FedProx proximal coefficient μ (0 disables the proximal pull toward
    /// the global model).
    pub proximal_mu: f32,
    /// Number of threshold steps for the local optimal-threshold search.
    pub threshold_steps: usize,
    /// Fβ weight used by the threshold search.
    pub beta: f64,
    /// Base seed for the round (clients derive per-client streams from it).
    pub seed: u64,
}

impl Default for RoundConfig {
    fn default() -> Self {
        Self {
            local_epochs: 2,
            batch_size: 32,
            learning_rate: 0.01,
            proximal_mu: 0.0,
            threshold_steps: 100,
            beta: 1.0,
            seed: 0,
        }
    }
}

/// What a client sends back to the server after local training
/// (Figure 2, step 3).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// The client's identifier.
    pub client_id: usize,
    /// Updated model parameters (flattened).
    pub parameters: Vector,
    /// Number of local training samples (FedAvg weight `n_k`).
    pub num_samples: usize,
    /// The client's locally-optimal cosine threshold τ_k.
    pub optimal_threshold: f32,
    /// Local training statistics.
    pub stats: TrainingStats,
}

/// A participant in federated training.
pub trait FlClient: Send {
    /// Stable identifier of this client.
    fn id(&self) -> usize;

    /// Number of local training samples (the FedAvg weight).
    fn num_samples(&self) -> usize;

    /// Runs one round of local training starting from the global parameters
    /// and returns the update to send to the server.
    ///
    /// # Errors
    /// Returns [`FlError`] when local training fails.
    fn train_round(&mut self, global: &Vector, config: &RoundConfig) -> Result<ClientUpdate>;
}

/// The concrete client used by MeanCache: wraps an encoder and the user's
/// local labelled query pairs.
#[derive(Debug, Clone)]
pub struct EmbeddingClient {
    id: usize,
    encoder: QueryEncoder,
    train_data: PairDataset,
    validation_data: PairDataset,
}

impl EmbeddingClient {
    /// Creates a client with its own (never shared) training/validation data.
    pub fn new(
        id: usize,
        encoder: QueryEncoder,
        train_data: PairDataset,
        validation_data: PairDataset,
    ) -> Self {
        Self {
            id,
            encoder,
            train_data,
            validation_data,
        }
    }

    /// Borrow the client's encoder (e.g. to deploy it into a local cache
    /// after training finishes).
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// Borrow the client's local training data.
    pub fn train_data(&self) -> &PairDataset {
        &self.train_data
    }

    /// Borrow the client's local validation data.
    pub fn validation_data(&self) -> &PairDataset {
        &self.validation_data
    }
}

impl FlClient for EmbeddingClient {
    fn id(&self) -> usize {
        self.id
    }

    fn num_samples(&self) -> usize {
        self.train_data.len()
    }

    fn train_round(&mut self, global: &Vector, config: &RoundConfig) -> Result<ClientUpdate> {
        // Step 2 of Figure 2: replace local weights with the global model.
        self.encoder
            .set_parameters(global)
            .map_err(|e| FlError::ShapeMismatch(e.to_string()))?;

        let trainer = LocalTrainer::new(TrainerConfig {
            learning_rate: config.learning_rate,
            batch_size: config.batch_size,
            epochs: config.local_epochs,
            seed: mc_tensor::rng::derive_seed(config.seed, self.id as u64),
            ..TrainerConfig::default()
        });
        let stats = trainer.train(&mut self.encoder, &self.train_data)?;

        // FedProx-style proximal pull toward the global model: keeps client
        // drift bounded on highly heterogeneous local data.
        if config.proximal_mu > 0.0 {
            let mut params = self.encoder.parameters();
            // params <- params - mu * (params - global) = (1-mu)*params + mu*global
            params.scale(1.0 - config.proximal_mu);
            params
                .axpy(config.proximal_mu, global)
                .map_err(FlError::from)?;
            self.encoder
                .set_parameters(&params)
                .map_err(|e| FlError::ShapeMismatch(e.to_string()))?;
        }

        // Local optimal threshold on the validation split, calibrated the way
        // the deployed cache will use it (Section III-A2).
        let tau = optimal_cache_threshold(
            &self.encoder,
            &self.validation_data,
            config.threshold_steps,
            config.beta,
        );

        Ok(ClientUpdate {
            client_id: self.id,
            parameters: self.encoder.parameters(),
            num_samples: self.train_data.len(),
            optimal_threshold: tau,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::ModelProfile;
    use mc_text::QueryPair;

    fn dataset() -> PairDataset {
        PairDataset::new(vec![
            QueryPair::new("plot a line in python", "draw a line chart in python", true),
            QueryPair::new(
                "increase phone battery",
                "extend smartphone battery life",
                true,
            ),
            QueryPair::new(
                "capital of france",
                "what is the capital city of france",
                true,
            ),
            QueryPair::new("plot a line in python", "best pizza dough recipe", false),
            QueryPair::new("increase phone battery", "capital of france", false),
            QueryPair::new("what is rust ownership", "explain ownership in rust", true),
        ])
    }

    fn client(id: usize) -> EmbeddingClient {
        let encoder = QueryEncoder::new(ModelProfile::tiny(), 77).unwrap();
        EmbeddingClient::new(id, encoder, dataset(), dataset())
    }

    #[test]
    fn train_round_returns_consistent_update() {
        let mut c = client(3);
        let global = c.encoder().parameters();
        let update = c
            .train_round(
                &global,
                &RoundConfig {
                    local_epochs: 2,
                    ..RoundConfig::default()
                },
            )
            .unwrap();
        assert_eq!(update.client_id, 3);
        assert_eq!(update.num_samples, 6);
        assert_eq!(update.parameters.len(), global.len());
        assert!((0.0..=1.0).contains(&update.optimal_threshold));
        assert_eq!(update.stats.epoch_losses.len(), 2);
        // Training must actually move the parameters.
        assert_ne!(update.parameters, global);
    }

    #[test]
    fn train_round_rejects_mismatched_global_parameters() {
        let mut c = client(0);
        assert!(c
            .train_round(&Vector::zeros(10), &RoundConfig::default())
            .is_err());
    }

    #[test]
    fn proximal_term_keeps_client_closer_to_global() {
        let global = client(0).encoder().parameters();
        let cfg_free = RoundConfig {
            local_epochs: 3,
            proximal_mu: 0.0,
            seed: 9,
            ..RoundConfig::default()
        };
        let cfg_prox = RoundConfig {
            proximal_mu: 0.5,
            ..cfg_free.clone()
        };
        let drift =
            |update: &ClientUpdate| -> f32 { update.parameters.sub(&global).unwrap().norm() };
        let mut free_client = client(1);
        let free = free_client.train_round(&global, &cfg_free).unwrap();
        let mut prox_client = client(1);
        let prox = prox_client.train_round(&global, &cfg_prox).unwrap();
        assert!(
            drift(&prox) < drift(&free),
            "proximal update must stay closer to the global model"
        );
    }

    #[test]
    fn clients_with_same_seed_and_data_produce_identical_updates() {
        let global = client(0).encoder().parameters();
        let cfg = RoundConfig {
            seed: 5,
            ..RoundConfig::default()
        };
        let mut a = client(2);
        let mut b = client(2);
        let ua = a.train_round(&global, &cfg).unwrap();
        let ub = b.train_round(&global, &cfg).unwrap();
        assert_eq!(ua.parameters, ub.parameters);
        assert_eq!(ua.optimal_threshold, ub.optimal_threshold);
    }

    #[test]
    fn accessors_expose_local_data() {
        let c = client(4);
        assert_eq!(c.id(), 4);
        assert_eq!(c.num_samples(), 6);
        assert_eq!(c.train_data().len(), 6);
        assert_eq!(c.validation_data().len(), 6);
    }
}
