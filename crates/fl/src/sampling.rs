//! Per-round client selection strategies.
//!
//! The paper samples 4 of 20 clients per round uniformly at random; it also
//! notes that deployments may select clients by battery level, bandwidth, or
//! past performance. Both strategies are provided.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strategy for choosing which clients participate in a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientSampler {
    /// Every client participates every round.
    All,
    /// A fixed number of clients chosen uniformly at random without
    /// replacement (the paper's setting: 4 of 20).
    RandomCount(usize),
    /// A fixed fraction of clients (rounded up, at least 1).
    RandomFraction(f32),
    /// The `count` clients with the highest capability score participate;
    /// scores model battery/bandwidth/performance (Section III-A, step 1).
    TopCapability {
        /// Number of clients to select.
        count: usize,
        /// Per-client capability scores (indexed by position in the client
        /// list; missing entries default to 0).
        scores: Vec<f32>,
    },
}

impl ClientSampler {
    /// Selects client *indices* (positions in the client list) for a round.
    /// The result is sorted ascending and free of duplicates.
    pub fn sample(&self, num_clients: usize, rng: &mut StdRng) -> Vec<usize> {
        if num_clients == 0 {
            return Vec::new();
        }
        match self {
            ClientSampler::All => (0..num_clients).collect(),
            ClientSampler::RandomCount(count) => {
                let k = (*count).clamp(1, num_clients);
                sample_without_replacement(num_clients, k, rng)
            }
            ClientSampler::RandomFraction(frac) => {
                let k = ((num_clients as f32 * frac.clamp(0.0, 1.0)).ceil() as usize)
                    .clamp(1, num_clients);
                sample_without_replacement(num_clients, k, rng)
            }
            ClientSampler::TopCapability { count, scores } => {
                let k = (*count).clamp(1, num_clients);
                let mut indexed: Vec<(usize, f32)> = (0..num_clients)
                    .map(|i| (i, scores.get(i).copied().unwrap_or(0.0)))
                    .collect();
                indexed.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let mut out: Vec<usize> = indexed.into_iter().take(k).map(|(i, _)| i).collect();
                out.sort_unstable();
                out
            }
        }
    }
}

fn sample_without_replacement(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    // Partial Fisher–Yates: O(n) memory, O(k) swaps.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    let mut out = idx[..k].to_vec();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_tensor::rng::seeded;

    #[test]
    fn all_selects_everyone() {
        let mut rng = seeded(1);
        assert_eq!(ClientSampler::All.sample(5, &mut rng), vec![0, 1, 2, 3, 4]);
        assert!(ClientSampler::All.sample(0, &mut rng).is_empty());
    }

    #[test]
    fn random_count_selects_exactly_k_unique_clients() {
        let mut rng = seeded(2);
        for _ in 0..20 {
            let s = ClientSampler::RandomCount(4).sample(20, &mut rng);
            assert_eq!(s.len(), 4);
            let mut dedup = s.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 4);
            assert!(s.iter().all(|&i| i < 20));
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn random_count_is_clamped_to_population() {
        let mut rng = seeded(3);
        assert_eq!(ClientSampler::RandomCount(50).sample(5, &mut rng).len(), 5);
        assert_eq!(ClientSampler::RandomCount(0).sample(5, &mut rng).len(), 1);
    }

    #[test]
    fn random_fraction_scales_with_population() {
        let mut rng = seeded(4);
        assert_eq!(
            ClientSampler::RandomFraction(0.2)
                .sample(20, &mut rng)
                .len(),
            4
        );
        assert_eq!(
            ClientSampler::RandomFraction(0.0)
                .sample(20, &mut rng)
                .len(),
            1
        );
        assert_eq!(
            ClientSampler::RandomFraction(1.0).sample(7, &mut rng).len(),
            7
        );
    }

    #[test]
    fn sampling_covers_all_clients_over_many_rounds() {
        let mut rng = seeded(5);
        let mut seen = vec![false; 20];
        for _ in 0..200 {
            for i in ClientSampler::RandomCount(4).sample(20, &mut rng) {
                seen[i] = true;
            }
        }
        assert!(
            seen.into_iter().all(|x| x),
            "every client must eventually be sampled"
        );
    }

    #[test]
    fn top_capability_prefers_high_scores() {
        let mut rng = seeded(6);
        let sampler = ClientSampler::TopCapability {
            count: 2,
            scores: vec![0.1, 0.9, 0.5, 0.95],
        };
        assert_eq!(sampler.sample(4, &mut rng), vec![1, 3]);
        // Missing scores default to zero.
        let sampler = ClientSampler::TopCapability {
            count: 2,
            scores: vec![0.1],
        };
        let s = sampler.sample(3, &mut rng);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = ClientSampler::RandomCount(4).sample(20, &mut seeded(9));
        let b = ClientSampler::RandomCount(4).sample(20, &mut seeded(9));
        assert_eq!(a, b);
    }
}
