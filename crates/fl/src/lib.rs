//! # mc-fl
//!
//! Federated-learning framework for the MeanCache reproduction (the role the
//! Flower framework plays in the paper's artifact).
//!
//! The paper trains the query-embedding model *collaboratively without
//! centralising user data* (Section III-A, Figure 2): every round the server
//! ships the global model and global cosine threshold to a sampled subset of
//! clients; each client fine-tunes the model on its local query pairs, finds
//! its own optimal threshold on its validation data, and sends both back; the
//! server aggregates the weights with FedAvg (Eq. 1) and averages the
//! thresholds.
//!
//! This crate provides that whole loop:
//!
//! * [`client`] — the [`FlClient`] trait and the [`EmbeddingClient`] that
//!   wraps a `mc-embedder` encoder, its local dataset, and local training.
//! * [`aggregate`] — FedAvg weighted averaging, threshold aggregation, and a
//!   FedProx-style proximal option.
//! * [`sampling`] — per-round client selection strategies.
//! * [`partition`] — IID and skewed data partitioning across clients.
//! * [`server`] — the [`FlServer`] holding the global model/threshold and the
//!   per-round history used to reproduce Figures 11 and 12.
//! * [`simulation`] — a driver that runs clients in parallel on the rayon
//!   pool, mirroring the paper's simulated 20-client setup.

pub mod aggregate;
pub mod client;
pub mod partition;
pub mod sampling;
pub mod server;
pub mod simulation;

pub use aggregate::{fedavg, mean_threshold, AggregationMethod};
pub use client::{ClientUpdate, EmbeddingClient, FlClient, RoundConfig};
pub use partition::{partition_iid, partition_power_law};
pub use sampling::ClientSampler;
pub use server::{FlServer, RoundRecord, ServerConfig};
pub use simulation::{FlSimulation, SimulationConfig, SimulationOutcome};

/// Errors surfaced by the federated-learning framework.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// No clients were available/sampled for a round.
    NoClients(String),
    /// Parameter vectors from clients disagree in length.
    ShapeMismatch(String),
    /// Underlying training failure.
    Training(String),
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlError::NoClients(m) => write!(f, "no clients: {m}"),
            FlError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            FlError::Training(m) => write!(f, "training error: {m}"),
            FlError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for FlError {}

impl From<mc_embedder::EmbedderError> for FlError {
    fn from(e: mc_embedder::EmbedderError) -> Self {
        FlError::Training(e.to_string())
    }
}

impl From<mc_tensor::TensorError> for FlError {
    fn from(e: mc_tensor::TensorError) -> Self {
        FlError::ShapeMismatch(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(FlError::NoClients("round 3".into())
            .to_string()
            .contains("round 3"));
        let e: FlError = mc_embedder::EmbedderError::InvalidConfig("x".into()).into();
        assert!(matches!(e, FlError::Training(_)));
        let e: FlError = mc_tensor::TensorError::Empty("y".into()).into();
        assert!(matches!(e, FlError::ShapeMismatch(_)));
        assert!(FlError::InvalidConfig("lr".into())
            .to_string()
            .contains("lr"));
    }
}
