//! Data partitioning across federated clients.
//!
//! The paper randomly distributes the training and validation splits among
//! its 20 simulated clients with non-overlapping data points (Section
//! IV-A1). Besides that IID partition this module provides a power-law
//! (quantity-skewed) partition so the ablation benches can study what
//! happens when some users have far more queries than others — the shape the
//! real user study in Figure 4 exhibits.

use mc_text::{PairDataset, QueryPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// IID partition: a seeded shuffle dealt round-robin to `clients` shards.
/// Shard sizes differ by at most one.
pub fn partition_iid(dataset: &PairDataset, clients: usize, seed: u64) -> Vec<PairDataset> {
    dataset.partition(clients, seed)
}

/// Quantity-skewed partition: client `k` receives a share proportional to
/// `1 / (k+1)^alpha` (after a seeded shuffle), so low-index clients hold much
/// more data than high-index ones. `alpha = 0` reduces to a balanced split.
pub fn partition_power_law(
    dataset: &PairDataset,
    clients: usize,
    alpha: f32,
    seed: u64,
) -> Vec<PairDataset> {
    if clients == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled: Vec<QueryPair> = dataset.pairs.clone();
    for i in (1..shuffled.len()).rev() {
        let j = rng.random_range(0..=i);
        shuffled.swap(i, j);
    }

    // Normalised power-law shares.
    let weights: Vec<f64> = (0..clients)
        .map(|k| 1.0 / ((k + 1) as f64).powf(alpha as f64))
        .collect();
    let total: f64 = weights.iter().sum();
    let n = shuffled.len();

    // Largest-remainder apportionment so every pair is assigned exactly once.
    let exact: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = exact
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e - e.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = 0;
    while assigned < n {
        counts[remainders[r % clients].0] += 1;
        assigned += 1;
        r += 1;
    }

    let mut shards = Vec::with_capacity(clients);
    let mut offset = 0;
    for count in counts {
        let end = (offset + count).min(n);
        shards.push(PairDataset::new(shuffled[offset..end].to_vec()));
        offset = end;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> PairDataset {
        PairDataset::new(
            (0..n)
                .map(|i| QueryPair::new(format!("q{i}"), format!("p{i}"), i % 2 == 0))
                .collect(),
        )
    }

    #[test]
    fn iid_partition_is_balanced_and_complete() {
        let ds = dataset(103);
        let shards = partition_iid(&ds, 20, 1);
        assert_eq!(shards.len(), 20);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 103);
        let max = shards.iter().map(|s| s.len()).max().unwrap();
        let min = shards.iter().map(|s| s.len()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn power_law_partition_is_complete_and_skewed() {
        let ds = dataset(200);
        let shards = partition_power_law(&ds, 10, 1.2, 3);
        assert_eq!(shards.len(), 10);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 200);
        // First client holds several times more than the last.
        assert!(
            shards[0].len() >= 3 * shards[9].len().max(1),
            "first={} last={}",
            shards[0].len(),
            shards[9].len()
        );
    }

    #[test]
    fn power_law_with_zero_alpha_is_roughly_balanced() {
        let ds = dataset(100);
        let shards = partition_power_law(&ds, 10, 0.0, 4);
        let max = shards.iter().map(|s| s.len()).max().unwrap();
        let min = shards.iter().map(|s| s.len()).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn no_pair_is_duplicated_across_shards() {
        let ds = dataset(97);
        let shards = partition_power_law(&ds, 7, 0.8, 5);
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            for p in &shard.pairs {
                assert!(
                    seen.insert(p.query_a.clone()),
                    "duplicate assignment of {}",
                    p.query_a
                );
            }
        }
        assert_eq!(seen.len(), 97);
    }

    #[test]
    fn zero_clients_yields_empty_partitions() {
        let ds = dataset(10);
        assert!(partition_iid(&ds, 0, 1).is_empty());
        assert!(partition_power_law(&ds, 0, 1.0, 1).is_empty());
    }

    #[test]
    fn partitions_are_deterministic_per_seed() {
        let ds = dataset(60);
        let a = partition_power_law(&ds, 5, 1.0, 9);
        let b = partition_power_law(&ds, 5, 1.0, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pairs, y.pairs);
        }
    }
}
