//! The federated server: global model state, aggregation, round history.

use mc_metrics::MetricSummary;
use mc_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregate::{aggregate, mean_threshold, AggregationMethod};
use crate::client::{ClientUpdate, RoundConfig};
use crate::sampling::ClientSampler;
use crate::Result;

/// Server-side configuration of a federated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Total number of federated rounds (the paper runs 50).
    pub rounds: usize,
    /// Hyper-parameters shipped to clients each round.
    pub round_config: RoundConfig,
    /// Aggregation rule.
    pub aggregation: AggregationMethod,
    /// Client-selection strategy (the paper samples 4 of 20 per round).
    pub sampler: ClientSampler,
    /// Seed driving client sampling.
    pub seed: u64,
    /// Evaluate the global model on the server-side test split every
    /// `eval_every` rounds (0 disables evaluation; 1 evaluates every round
    /// as Figures 11/12 require).
    pub eval_every: usize,
    /// Fβ weight used when reporting evaluation metrics.
    pub eval_beta: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            rounds: 10,
            round_config: RoundConfig::default(),
            aggregation: AggregationMethod::FedAvg,
            sampler: ClientSampler::RandomCount(4),
            seed: 0,
            eval_every: 1,
            eval_beta: 1.0,
        }
    }
}

/// What the server records about each completed round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (1-based, matching the paper's figures).
    pub round: usize,
    /// IDs of the clients that participated.
    pub participants: Vec<usize>,
    /// Mean final local-training loss across participants.
    pub mean_client_loss: f32,
    /// Global threshold after aggregating this round's client optima.
    pub global_threshold: f32,
    /// Metrics of the aggregated global model on the server's held-out test
    /// set (when evaluation ran this round).
    pub eval: Option<MetricSummary>,
}

/// The central server: holds the global model parameters and threshold, and
/// aggregates client updates round by round.
#[derive(Debug, Clone)]
pub struct FlServer {
    global_parameters: Vector,
    global_threshold: f32,
    history: Vec<RoundRecord>,
}

impl FlServer {
    /// Creates a server with initial global parameters and threshold.
    pub fn new(initial_parameters: Vector, initial_threshold: f32) -> Self {
        Self {
            global_parameters: initial_parameters,
            global_threshold: initial_threshold.clamp(0.0, 1.0),
            history: Vec::new(),
        }
    }

    /// Current global model parameters (what step 1 of Figure 2 ships).
    pub fn global_parameters(&self) -> &Vector {
        &self.global_parameters
    }

    /// Current global cosine threshold τ_global.
    pub fn global_threshold(&self) -> f32 {
        self.global_threshold
    }

    /// Completed-round history.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Aggregates one round of client updates (Figure 2, step 4): FedAvg for
    /// the weights, sample-weighted mean for the threshold. Records the round
    /// in the history and returns the record.
    ///
    /// # Errors
    /// Returns [`crate::FlError`] when `updates` is empty or inconsistent.
    pub fn aggregate_round(
        &mut self,
        round: usize,
        updates: &[ClientUpdate],
        method: AggregationMethod,
        eval: Option<MetricSummary>,
    ) -> Result<RoundRecord> {
        let new_global = aggregate(method, updates)?;
        let new_threshold = mean_threshold(updates)?;
        self.global_parameters = new_global;
        self.global_threshold = new_threshold.clamp(0.0, 1.0);

        let mean_loss = if updates.is_empty() {
            0.0
        } else {
            updates.iter().map(|u| u.stats.final_loss()).sum::<f32>() / updates.len() as f32
        };
        let record = RoundRecord {
            round,
            participants: updates.iter().map(|u| u.client_id).collect(),
            mean_client_loss: mean_loss,
            global_threshold: self.global_threshold,
            eval,
        };
        self.history.push(record.clone());
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_embedder::TrainingStats;

    fn update(id: usize, params: Vec<f32>, n: usize, tau: f32, loss: f32) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            parameters: Vector::from_vec(params),
            num_samples: n,
            optimal_threshold: tau,
            stats: TrainingStats {
                epoch_losses: vec![loss],
                contrastive_losses: vec![loss],
                mnr_losses: vec![0.0],
                pairs_per_epoch: n,
            },
        }
    }

    #[test]
    fn aggregate_round_updates_global_state_and_history() {
        let mut server = FlServer::new(Vector::from_vec(vec![0.0, 0.0]), 0.5);
        let updates = vec![
            update(0, vec![1.0, 1.0], 10, 0.9, 0.5),
            update(1, vec![0.0, 2.0], 10, 0.7, 0.3),
        ];
        let record = server
            .aggregate_round(1, &updates, AggregationMethod::FedAvg, None)
            .unwrap();
        assert_eq!(server.global_parameters().as_slice(), &[0.5, 1.5]);
        assert!((server.global_threshold() - 0.8).abs() < 1e-6);
        assert_eq!(record.participants, vec![0, 1]);
        assert!((record.mean_client_loss - 0.4).abs() < 1e-6);
        assert_eq!(server.history().len(), 1);
    }

    #[test]
    fn aggregate_round_with_no_updates_fails_and_preserves_state() {
        let mut server = FlServer::new(Vector::from_vec(vec![1.0]), 0.6);
        assert!(server
            .aggregate_round(1, &[], AggregationMethod::FedAvg, None)
            .is_err());
        assert_eq!(server.global_parameters().as_slice(), &[1.0]);
        assert_eq!(server.global_threshold(), 0.6);
        assert!(server.history().is_empty());
    }

    #[test]
    fn threshold_is_clamped_to_unit_interval() {
        let server = FlServer::new(Vector::zeros(1), 3.0);
        assert_eq!(server.global_threshold(), 1.0);
        let server = FlServer::new(Vector::zeros(1), -0.2);
        assert_eq!(server.global_threshold(), 0.0);
    }

    #[test]
    fn successive_rounds_accumulate_history() {
        let mut server = FlServer::new(Vector::from_vec(vec![0.0]), 0.5);
        for round in 1..=5 {
            let updates = vec![update(0, vec![round as f32], 5, 0.8, 1.0 / round as f32)];
            server
                .aggregate_round(round, &updates, AggregationMethod::FedAvg, None)
                .unwrap();
        }
        assert_eq!(server.history().len(), 5);
        assert_eq!(server.history()[4].round, 5);
        assert_eq!(server.global_parameters().as_slice(), &[5.0]);
        // Client loss trend recorded per round is decreasing in this setup.
        let losses: Vec<f32> = server
            .history()
            .iter()
            .map(|r| r.mean_client_loss)
            .collect();
        assert!(losses.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn default_config_matches_paper_style_settings() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.sampler, ClientSampler::RandomCount(4));
        assert_eq!(cfg.aggregation, AggregationMethod::FedAvg);
        assert!(cfg.eval_every >= 1);
        let _ = &cfg.round_config;
    }
}
