//! End-to-end federated-training simulation.
//!
//! Mirrors the paper's experimental setup (Section IV-E): 20 clients holding
//! disjoint shards of the pair dataset, 4 sampled per round, 50 rounds, with
//! the aggregated global model evaluated on a held-out test set after every
//! round — the series plotted in Figures 11 and 12.
//!
//! Sampled clients train **in parallel** on the rayon thread pool; each
//! client's local training is already deterministic given the round seed, so
//! parallel execution does not change results.

use mc_embedder::{evaluate_pairs, QueryEncoder};
use mc_metrics::MetricSummary;
use mc_tensor::rng;
use mc_text::PairDataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::client::{FlClient, RoundConfig};
use crate::sampling::ClientSampler;
use crate::server::{FlServer, RoundRecord};
use crate::{AggregationMethod, FlError, Result};

/// Configuration of a complete simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Per-round client hyper-parameters.
    pub round_config: RoundConfig,
    /// Aggregation rule (FedAvg by default).
    pub aggregation: AggregationMethod,
    /// Client-selection strategy.
    pub sampler: ClientSampler,
    /// Seed for client sampling (round seeds are derived from it).
    pub seed: u64,
    /// Evaluate the global model every `eval_every` rounds (0 = never).
    pub eval_every: usize,
    /// Fβ weight for evaluation summaries.
    pub eval_beta: f64,
    /// Threshold used when evaluating the global model; `None` evaluates at
    /// the server's current global threshold (the deployment behaviour).
    pub eval_threshold: Option<f32>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            round_config: RoundConfig::default(),
            aggregation: AggregationMethod::FedAvg,
            sampler: ClientSampler::RandomCount(4),
            seed: 0,
            eval_every: 1,
            eval_beta: 1.0,
            eval_threshold: None,
        }
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Final global model parameters.
    pub final_parameters: mc_tensor::Vector,
    /// Final global threshold.
    pub final_threshold: f32,
    /// Per-round records (participants, losses, evaluation metrics).
    pub history: Vec<RoundRecord>,
}

impl SimulationOutcome {
    /// Evaluation series (round, metrics) for rounds where evaluation ran —
    /// the data behind Figures 11 and 12.
    pub fn eval_series(&self) -> Vec<(usize, MetricSummary)> {
        self.history
            .iter()
            .filter_map(|r| r.eval.map(|m| (r.round, m)))
            .collect()
    }
}

/// Drives federated training over a set of clients.
pub struct FlSimulation<C: FlClient> {
    clients: Vec<C>,
    server: FlServer,
    config: SimulationConfig,
    /// Template encoder + test set used to evaluate the global model
    /// server-side (the paper keeps the test split at the server for a fair
    /// comparison with GPTCache).
    evaluation: Option<(QueryEncoder, PairDataset)>,
}

impl<C: FlClient> FlSimulation<C> {
    /// Creates a simulation. `initial_encoder_parameters` seeds the global
    /// model; `initial_threshold` seeds τ_global.
    ///
    /// # Errors
    /// Returns [`FlError::NoClients`] when `clients` is empty and
    /// [`FlError::InvalidConfig`] for a zero-round configuration.
    pub fn new(
        clients: Vec<C>,
        initial_parameters: mc_tensor::Vector,
        initial_threshold: f32,
        config: SimulationConfig,
    ) -> Result<Self> {
        if clients.is_empty() {
            return Err(FlError::NoClients(
                "simulation needs at least one client".into(),
            ));
        }
        if config.rounds == 0 {
            return Err(FlError::InvalidConfig("rounds must be >= 1".into()));
        }
        Ok(Self {
            clients,
            server: FlServer::new(initial_parameters, initial_threshold),
            config,
            evaluation: None,
        })
    }

    /// Attaches a server-side evaluation set: after aggregation the global
    /// parameters are loaded into `template` and evaluated on `test_data`.
    pub fn with_evaluation(mut self, template: QueryEncoder, test_data: PairDataset) -> Self {
        self.evaluation = Some((template, test_data));
        self
    }

    /// Borrow the server (global state and history).
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// Borrow the clients.
    pub fn clients(&self) -> &[C] {
        &self.clients
    }

    /// Runs all configured rounds and returns the outcome.
    ///
    /// # Errors
    /// Propagates client-training and aggregation errors.
    pub fn run(&mut self) -> Result<SimulationOutcome> {
        for round in 1..=self.config.rounds {
            self.run_round(round)?;
        }
        Ok(SimulationOutcome {
            final_parameters: self.server.global_parameters().clone(),
            final_threshold: self.server.global_threshold(),
            history: self.server.history().to_vec(),
        })
    }

    /// Runs a single round: sample → parallel local training → aggregate →
    /// (optionally) evaluate.
    ///
    /// # Errors
    /// Propagates client-training and aggregation errors.
    pub fn run_round(&mut self, round: usize) -> Result<RoundRecord> {
        let mut sample_rng = rng::seeded(rng::derive_seed(self.config.seed, round as u64));
        let selected = self
            .config
            .sampler
            .sample(self.clients.len(), &mut sample_rng);
        if selected.is_empty() {
            return Err(FlError::NoClients(format!(
                "round {round} sampled no clients"
            )));
        }

        let global = self.server.global_parameters().clone();
        let mut round_config = self.config.round_config.clone();
        round_config.seed = rng::derive_seed(self.config.seed, (round as u64) << 16);

        // Split off the selected clients as mutable references and train them
        // in parallel on the rayon pool.
        let selected_set: std::collections::HashSet<usize> = selected.iter().copied().collect();
        let mut participants: Vec<&mut C> = self
            .clients
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| selected_set.contains(i))
            .map(|(_, c)| c)
            .collect();

        let updates: Vec<_> = participants
            .par_iter_mut()
            .map(|client| client.train_round(&global, &round_config))
            .collect::<Vec<_>>()
            .into_iter()
            .collect::<Result<Vec<_>>>()?;

        // Optional server-side evaluation of the *aggregated* model.
        let new_global = crate::aggregate::aggregate(self.config.aggregation, &updates)?;
        let eval = if self.config.eval_every > 0 && round.is_multiple_of(self.config.eval_every) {
            self.evaluate_global(&new_global, crate::aggregate::mean_threshold(&updates)?)
        } else {
            None
        };

        self.server
            .aggregate_round(round, &updates, self.config.aggregation, eval)
    }

    fn evaluate_global(
        &mut self,
        global: &mc_tensor::Vector,
        threshold: f32,
    ) -> Option<MetricSummary> {
        let (template, test_data) = self.evaluation.as_mut()?;
        if template.set_parameters(global).is_err() {
            return None;
        }
        let tau = self
            .config
            .eval_threshold
            .unwrap_or(threshold)
            .clamp(0.0, 1.0);
        let report = evaluate_pairs(template, test_data, tau, self.config.eval_beta);
        Some(report.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::EmbeddingClient;
    use crate::partition_iid;
    use mc_embedder::ModelProfile;
    use mc_text::QueryPair;

    /// Builds a small but learnable duplicate-pair dataset.
    fn corpus() -> PairDataset {
        let topics = [
            (
                "plot a line chart in python",
                "draw a line graph using python",
            ),
            (
                "increase smartphone battery life",
                "extend my phone battery duration",
            ),
            ("what is federated learning", "explain federated learning"),
            (
                "convert celsius to fahrenheit",
                "change celsius into fahrenheit",
            ),
            ("capital of france", "what is the capital city of france"),
            ("install rust on linux", "how to set up rust on linux"),
            (
                "bake sourdough bread",
                "how do I make sourdough bread at home",
            ),
            ("reset my wifi router", "how to reboot a wifi router"),
        ];
        let mut pairs = Vec::new();
        for (a, b) in topics {
            pairs.push(QueryPair::new(a, b, true));
        }
        for i in 0..topics.len() {
            let j = (i + 3) % topics.len();
            pairs.push(QueryPair::new(topics[i].0, topics[j].1, false));
        }
        PairDataset::new(pairs)
    }

    fn build_clients(n: usize) -> (Vec<EmbeddingClient>, QueryEncoder, PairDataset) {
        let ds = corpus();
        let shards = partition_iid(&ds, n, 7);
        let template = QueryEncoder::new(ModelProfile::tiny(), 123).unwrap();
        let clients = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                EmbeddingClient::new(
                    i,
                    QueryEncoder::new(ModelProfile::tiny(), 123).unwrap(),
                    shard.clone(),
                    shard,
                )
            })
            .collect();
        (clients, template, ds)
    }

    #[test]
    fn simulation_runs_all_rounds_and_records_history() {
        let (clients, template, test) = build_clients(4);
        let initial = template.parameters();
        let config = SimulationConfig {
            rounds: 3,
            sampler: ClientSampler::RandomCount(2),
            round_config: RoundConfig {
                local_epochs: 1,
                batch_size: 4,
                learning_rate: 0.02,
                ..RoundConfig::default()
            },
            ..SimulationConfig::default()
        };
        let mut sim = FlSimulation::new(clients, initial.clone(), 0.5, config)
            .unwrap()
            .with_evaluation(template, test);
        let outcome = sim.run().unwrap();
        assert_eq!(outcome.history.len(), 3);
        assert_eq!(outcome.final_parameters.len(), initial.len());
        assert_ne!(
            outcome.final_parameters, initial,
            "training must move the global model"
        );
        assert!((0.0..=1.0).contains(&outcome.final_threshold));
        assert_eq!(outcome.eval_series().len(), 3);
        for record in &outcome.history {
            assert_eq!(record.participants.len(), 2);
        }
    }

    #[test]
    fn federated_training_produces_a_usable_global_model() {
        let (clients, template, test) = build_clients(4);
        let initial = template.parameters();
        let config = SimulationConfig {
            rounds: 6,
            sampler: ClientSampler::All,
            round_config: RoundConfig {
                local_epochs: 2,
                batch_size: 4,
                learning_rate: 0.02,
                ..RoundConfig::default()
            },
            // Evaluate at the learned global threshold, as a deployment would.
            eval_threshold: None,
            ..SimulationConfig::default()
        };
        let mut sim = FlSimulation::new(clients, initial, 0.5, config)
            .unwrap()
            .with_evaluation(template, test);
        let outcome = sim.run().unwrap();
        let series = outcome.eval_series();
        let final_f1 = series.last().unwrap().1.f1;
        assert!(
            final_f1 >= 0.7,
            "aggregated global model must classify duplicates well at the learned threshold, got F1={final_f1:.3}"
        );
        // The learned global threshold must separate better than chance.
        assert!(outcome.final_threshold > 0.0 && outcome.final_threshold < 1.0);
    }

    #[test]
    fn simulation_is_deterministic_given_a_seed() {
        let run = || {
            let (clients, template, test) = build_clients(3);
            let initial = template.parameters();
            let config = SimulationConfig {
                rounds: 2,
                seed: 42,
                sampler: ClientSampler::RandomCount(2),
                round_config: RoundConfig {
                    local_epochs: 1,
                    batch_size: 4,
                    ..RoundConfig::default()
                },
                ..SimulationConfig::default()
            };
            let mut sim = FlSimulation::new(clients, initial, 0.5, config)
                .unwrap()
                .with_evaluation(template, test);
            sim.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_parameters, b.final_parameters);
        assert_eq!(a.final_threshold, b.final_threshold);
        assert_eq!(
            a.history
                .iter()
                .map(|r| r.participants.clone())
                .collect::<Vec<_>>(),
            b.history
                .iter()
                .map(|r| r.participants.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (clients, template, _) = build_clients(2);
        let initial = template.parameters();
        assert!(matches!(
            FlSimulation::<EmbeddingClient>::new(
                vec![],
                initial.clone(),
                0.5,
                SimulationConfig::default()
            ),
            Err(FlError::NoClients(_))
        ));
        assert!(matches!(
            FlSimulation::new(
                clients,
                initial,
                0.5,
                SimulationConfig {
                    rounds: 0,
                    ..SimulationConfig::default()
                }
            ),
            Err(FlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn threshold_aggregation_tracks_client_optima() {
        let (clients, template, test) = build_clients(3);
        let initial = template.parameters();
        let config = SimulationConfig {
            rounds: 2,
            sampler: ClientSampler::All,
            round_config: RoundConfig {
                local_epochs: 1,
                batch_size: 4,
                threshold_steps: 20,
                ..RoundConfig::default()
            },
            ..SimulationConfig::default()
        };
        let mut sim = FlSimulation::new(clients, initial, 0.5, config)
            .unwrap()
            .with_evaluation(template, test);
        let outcome = sim.run().unwrap();
        for record in &outcome.history {
            assert!((0.0..=1.0).contains(&record.global_threshold));
        }
    }
}
