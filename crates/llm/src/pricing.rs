//! Pricing and quota accounting for the LLM web service.
//!
//! One of MeanCache's motivations is that server-side caches still charge the
//! user for every query and count it against their rate limit (Section I).
//! The cost model here lets the experiments quantify how much a user-side
//! cache saves.

use serde::{Deserialize, Serialize};

use crate::{LlmError, Result};

/// Per-token pricing of the LLM web service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price per 1000 input (prompt) tokens, in US dollars.
    pub usd_per_1k_input_tokens: f64,
    /// Price per 1000 output (completion) tokens, in US dollars.
    pub usd_per_1k_output_tokens: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Ballpark public API pricing for a mid-size chat model.
        Self {
            usd_per_1k_input_tokens: 0.0005,
            usd_per_1k_output_tokens: 0.0015,
        }
    }
}

impl CostModel {
    /// Cost of one request in US dollars.
    pub fn cost_usd(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        self.usd_per_1k_input_tokens * input_tokens as f64 / 1000.0
            + self.usd_per_1k_output_tokens * output_tokens as f64 / 1000.0
    }
}

/// Tracks how many queries a user has issued against a provider quota and
/// how much they have spent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuotaTracker {
    /// Maximum number of billable queries allowed (provider rate limit).
    pub limit: u64,
    used: u64,
    spent_usd: f64,
    saved_queries: u64,
    saved_usd: f64,
}

impl QuotaTracker {
    /// Creates a tracker with the given query limit.
    pub fn new(limit: u64) -> Self {
        Self {
            limit,
            used: 0,
            spent_usd: 0.0,
            saved_queries: 0,
            saved_usd: 0.0,
        }
    }

    /// Number of billable queries consumed.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining quota.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// Total spend in US dollars.
    pub fn spent_usd(&self) -> f64 {
        self.spent_usd
    }

    /// Queries that were answered from the local cache instead of the
    /// provider.
    pub fn saved_queries(&self) -> u64 {
        self.saved_queries
    }

    /// Estimated spend avoided thanks to the local cache.
    pub fn saved_usd(&self) -> f64 {
        self.saved_usd
    }

    /// Records a billable query.
    ///
    /// # Errors
    /// Returns [`crate::LlmError::QuotaExceeded`] once the limit is reached; the
    /// query is *not* recorded in that case.
    pub fn record_billable(&mut self, cost_usd: f64) -> Result<()> {
        if self.used >= self.limit {
            return Err(LlmError::QuotaExceeded {
                used: self.used,
                limit: self.limit,
            });
        }
        self.used += 1;
        self.spent_usd += cost_usd;
        Ok(())
    }

    /// Records a query served locally (no charge, no quota use).
    pub fn record_saved(&mut self, avoided_cost_usd: f64) {
        self.saved_queries += 1;
        self.saved_usd += avoided_cost_usd;
    }

    /// Fraction of all queries that were served without billing.
    pub fn saving_ratio(&self) -> f64 {
        let total = self.used + self.saved_queries;
        if total == 0 {
            0.0
        } else {
            self.saved_queries as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_charges_per_token() {
        let m = CostModel::default();
        let c = m.cost_usd(1000, 1000);
        assert!((c - (0.0005 + 0.0015)).abs() < 1e-12);
        assert_eq!(m.cost_usd(0, 0), 0.0);
        assert!(m.cost_usd(10, 50) > m.cost_usd(10, 10));
    }

    #[test]
    fn quota_blocks_after_limit() {
        let mut q = QuotaTracker::new(2);
        q.record_billable(0.01).unwrap();
        q.record_billable(0.01).unwrap();
        let err = q.record_billable(0.01).unwrap_err();
        assert!(matches!(err, LlmError::QuotaExceeded { used: 2, limit: 2 }));
        assert_eq!(q.used(), 2);
        assert_eq!(q.remaining(), 0);
        assert!((q.spent_usd() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn savings_are_tracked_separately_from_spend() {
        let mut q = QuotaTracker::new(10);
        q.record_billable(0.02).unwrap();
        q.record_saved(0.02);
        q.record_saved(0.02);
        assert_eq!(q.saved_queries(), 2);
        assert!((q.saved_usd() - 0.04).abs() < 1e-12);
        assert!((q.saving_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.remaining(), 9);
    }

    #[test]
    fn empty_tracker_has_zero_ratio() {
        let q = QuotaTracker::new(5);
        assert_eq!(q.saving_ratio(), 0.0);
        assert_eq!(q.remaining(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let mut q = QuotaTracker::new(5);
        q.record_billable(0.1).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuotaTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
