//! # mc-llm
//!
//! LLM web-service simulator.
//!
//! The paper measures end-to-end response times against a local Llama-2
//! service with responses capped at 50 tokens (Figure 5), charges per query
//! (Section I's motivation), and rate-limits users. Reproducing those
//! experiments does not require a real LLM — only a service with the same
//! externally-observable behaviour:
//!
//! * deterministic response text for a given query (so cached responses can
//!   be checked for correctness),
//! * a latency model composed of network RTT plus per-token generation time
//!   with bounded jitter (so "no cache" vs "cache hit" latency gaps match the
//!   paper's shape), and
//! * a pricing / quota model (so the cost-saving claims can be quantified).
//!
//! [`SimulatedLlm`] provides all three behind the [`LlmService`] trait; the
//! deployment driver in the `meancache` crate talks only to the trait, so a
//! real HTTP-backed client could be swapped in without touching the cache.

pub mod latency;
pub mod pricing;
pub mod service;

pub use latency::LatencyModel;
pub use pricing::{CostModel, QuotaTracker};
pub use service::{LlmRequest, LlmResponse, LlmService, SimulatedLlm, SimulatedLlmConfig};

/// Errors surfaced by the LLM service simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The caller exhausted its query quota (the paper notes providers
    /// rate-limit and charge per query).
    QuotaExceeded {
        /// Queries consumed so far.
        used: u64,
        /// Configured quota.
        limit: u64,
    },
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::QuotaExceeded { used, limit } => {
                write!(f, "quota exceeded: {used}/{limit} queries used")
            }
            LlmError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for LlmError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LlmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LlmError::QuotaExceeded { used: 10, limit: 5 };
        assert!(e.to_string().contains("10/5"));
        assert!(LlmError::InvalidConfig("rtt".into())
            .to_string()
            .contains("rtt"));
    }
}
