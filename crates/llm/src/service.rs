//! The LLM web-service interface and its simulator.

use serde::{Deserialize, Serialize};

use crate::{CostModel, LatencyModel, Result};

/// A request to the LLM web service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmRequest {
    /// The user's query text.
    pub query: String,
    /// Conversation history preceding the query (oldest first), used for
    /// contextual queries.
    pub context: Vec<String>,
    /// Maximum number of response tokens (the paper limits responses to 50
    /// tokens in the latency experiment).
    pub max_tokens: usize,
}

impl LlmRequest {
    /// Creates a standalone request.
    pub fn standalone(query: impl Into<String>, max_tokens: usize) -> Self {
        Self {
            query: query.into(),
            context: Vec::new(),
            max_tokens,
        }
    }

    /// Creates a contextual request carrying conversation history.
    pub fn contextual(query: impl Into<String>, context: Vec<String>, max_tokens: usize) -> Self {
        Self {
            query: query.into(),
            context,
            max_tokens,
        }
    }

    /// Rough token count of the prompt (query + context), using the common
    /// ~4-characters-per-token heuristic.
    pub fn input_tokens(&self) -> usize {
        let chars: usize = self.query.len() + self.context.iter().map(|c| c.len()).sum::<usize>();
        (chars / 4).max(1)
    }
}

/// A response from the LLM web service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmResponse {
    /// Generated response text.
    pub text: String,
    /// Number of generated tokens.
    pub output_tokens: usize,
    /// Simulated wall-clock latency of the call, in seconds.
    pub latency_s: f64,
    /// Cost charged for this call, in US dollars.
    pub cost_usd: f64,
}

/// Anything that can answer LLM queries: the simulator here, or a real
/// HTTP-backed client in a deployment.
pub trait LlmService {
    /// Generates a response for the request.
    ///
    /// # Errors
    /// Returns [`crate::LlmError`] e.g. when a quota is exhausted.
    fn generate(&mut self, request: &LlmRequest) -> Result<LlmResponse>;

    /// Total number of requests served so far.
    fn requests_served(&self) -> u64;

    /// Total simulated busy time, in seconds (a proxy for provider load;
    /// the paper's motivation includes reducing service-provider load).
    fn busy_time_s(&self) -> f64;
}

/// Configuration of the [`SimulatedLlm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimulatedLlmConfig {
    /// Latency model of the remote service.
    pub latency: LatencyModel,
    /// Pricing model.
    pub cost: CostModel,
    /// Seed namespace: responses and latencies are deterministic functions of
    /// (seed, query), so experiments are reproducible.
    pub seed: u64,
}

/// Deterministic LLM simulator.
///
/// The response text is a deterministic function of the query and its
/// context, so (a) two semantically identical requests always receive the
/// same response, and (b) a *contextual* query issued under different
/// contexts receives *different* responses — the property the contextual
/// experiments (Section IV-C) rely on to detect wrong cache hits.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    config: SimulatedLlmConfig,
    requests: u64,
    busy_time_s: f64,
}

impl SimulatedLlm {
    /// Creates a simulator.
    ///
    /// # Errors
    /// Returns [`crate::LlmError::InvalidConfig`] when the latency model is invalid.
    pub fn new(config: SimulatedLlmConfig) -> Result<Self> {
        config.latency.validate()?;
        Ok(Self {
            config,
            requests: 0,
            busy_time_s: 0.0,
        })
    }

    /// Creates a simulator with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(SimulatedLlmConfig::default()).expect("default config is valid")
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SimulatedLlmConfig {
        &self.config
    }

    /// Deterministic 64-bit fingerprint of a request (query + context).
    fn fingerprint(&self, request: &LlmRequest) -> u64 {
        let mut h = 0xcbf29ce484222325u64 ^ self.config.seed;
        let mut absorb = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x100000001b3);
        };
        for c in &request.context {
            absorb(c.as_bytes());
        }
        absorb(request.query.as_bytes());
        h
    }

    /// Deterministic response text built from the fingerprint. The text
    /// embeds the fingerprint so tests can verify that (query, context)
    /// uniquely determines the response.
    fn response_text(&self, request: &LlmRequest, fingerprint: u64) -> (String, usize) {
        let vocabulary = [
            "the",
            "model",
            "suggests",
            "using",
            "a",
            "simple",
            "approach",
            "first",
            "then",
            "refining",
            "it",
            "with",
            "more",
            "detail",
            "and",
            "examples",
            "to",
            "cover",
            "edge",
            "cases",
            "finally",
            "validate",
            "results",
            "carefully",
            "before",
            "use",
        ];
        let target_tokens = request.max_tokens.clamp(1, 512);
        let mut words = Vec::with_capacity(target_tokens);
        words.push(format!("[ref:{fingerprint:016x}]"));
        let mut state = fingerprint | 1;
        while words.len() < target_tokens {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % vocabulary.len();
            words.push(vocabulary[idx].to_string());
        }
        let tokens = words.len();
        (words.join(" "), tokens)
    }
}

impl LlmService for SimulatedLlm {
    fn generate(&mut self, request: &LlmRequest) -> Result<LlmResponse> {
        let fingerprint = self.fingerprint(request);
        let (text, output_tokens) = self.response_text(request, fingerprint);
        let latency_s = self
            .config
            .latency
            .sample_latency_s(output_tokens, fingerprint);
        let cost_usd = self
            .config
            .cost
            .cost_usd(request.input_tokens(), output_tokens);
        self.requests += 1;
        self.busy_time_s += latency_s;
        Ok(LlmResponse {
            text,
            output_tokens,
            latency_s,
            cost_usd,
        })
    }

    fn requests_served(&self) -> u64 {
        self.requests
    }

    fn busy_time_s(&self) -> f64 {
        self.busy_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_requests_get_identical_responses() {
        let mut llm = SimulatedLlm::with_defaults();
        let req = LlmRequest::standalone("draw a line plot in python", 50);
        let a = llm.generate(&req).unwrap();
        let b = llm.generate(&req).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.output_tokens, 50);
        assert_eq!(llm.requests_served(), 2);
        assert!(llm.busy_time_s() > 0.0);
    }

    #[test]
    fn different_queries_get_different_responses() {
        let mut llm = SimulatedLlm::with_defaults();
        let a = llm
            .generate(&LlmRequest::standalone("draw a line plot in python", 50))
            .unwrap();
        let b = llm
            .generate(&LlmRequest::standalone("what is the capital of france", 50))
            .unwrap();
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn same_query_under_different_context_gets_different_responses() {
        // The key contextual-query property (Section II): "Change the color
        // to red" must be answered differently depending on what it follows.
        let mut llm = SimulatedLlm::with_defaults();
        let under_line = LlmRequest::contextual(
            "change the color to red",
            vec!["draw a line plot in python".into()],
            50,
        );
        let under_circle =
            LlmRequest::contextual("change the color to red", vec!["draw a circle".into()], 50);
        let a = llm.generate(&under_line).unwrap();
        let b = llm.generate(&under_circle).unwrap();
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn latency_reflects_token_count_and_cost_is_positive() {
        let mut llm = SimulatedLlm::new(SimulatedLlmConfig {
            latency: LatencyModel {
                jitter_sigma: 0.0,
                ..LatencyModel::default()
            },
            ..SimulatedLlmConfig::default()
        })
        .unwrap();
        let short = llm.generate(&LlmRequest::standalone("hello", 10)).unwrap();
        let long = llm.generate(&LlmRequest::standalone("hello", 200)).unwrap();
        assert!(long.latency_s > short.latency_s);
        assert!(long.cost_usd > short.cost_usd);
        assert!(short.cost_usd > 0.0);
    }

    #[test]
    fn max_tokens_is_clamped() {
        let mut llm = SimulatedLlm::with_defaults();
        let r = llm.generate(&LlmRequest::standalone("x", 0)).unwrap();
        assert_eq!(r.output_tokens, 1);
        let r = llm.generate(&LlmRequest::standalone("x", 10_000)).unwrap();
        assert_eq!(r.output_tokens, 512);
    }

    #[test]
    fn input_tokens_counts_query_and_context() {
        let standalone = LlmRequest::standalone("a".repeat(40), 50);
        let contextual = LlmRequest::contextual("a".repeat(40), vec!["b".repeat(80)], 50);
        assert_eq!(standalone.input_tokens(), 10);
        assert_eq!(contextual.input_tokens(), 30);
        assert_eq!(LlmRequest::standalone("", 5).input_tokens(), 1);
    }

    #[test]
    fn invalid_latency_config_is_rejected() {
        let cfg = SimulatedLlmConfig {
            latency: LatencyModel {
                per_token_s: -1.0,
                ..LatencyModel::default()
            },
            ..SimulatedLlmConfig::default()
        };
        assert!(SimulatedLlm::new(cfg).is_err());
    }

    #[test]
    fn different_seeds_change_response_namespace() {
        let mut a = SimulatedLlm::new(SimulatedLlmConfig {
            seed: 1,
            ..SimulatedLlmConfig::default()
        })
        .unwrap();
        let mut b = SimulatedLlm::new(SimulatedLlmConfig {
            seed: 2,
            ..SimulatedLlmConfig::default()
        })
        .unwrap();
        let req = LlmRequest::standalone("same query", 30);
        assert_ne!(
            a.generate(&req).unwrap().text,
            b.generate(&req).unwrap().text
        );
    }
}
