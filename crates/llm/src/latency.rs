//! Latency model for the simulated LLM web service.
//!
//! The response time of a remote LLM call decomposes into a network
//! round-trip plus generation time proportional to the number of output
//! tokens, with multiplicative jitter. The defaults are calibrated so the
//! "no cache" latencies in the Figure 5 reproduction land in the same
//! 0.3–1.0 s range the paper plots for 50-token Llama-2 responses, while a
//! local cache hit costs only the semantic-search time (micro- to
//! milliseconds).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::{LlmError, Result};

/// Parameters of the latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way network + queuing overhead per request, in seconds.
    pub network_rtt_s: f64,
    /// Generation time per output token, in seconds (≈ 1/throughput).
    pub per_token_s: f64,
    /// Sigma of the multiplicative log-normal jitter (0 disables jitter).
    pub jitter_sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            network_rtt_s: 0.08,
            per_token_s: 0.012,
            jitter_sigma: 0.15,
        }
    }
}

impl LatencyModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    /// Returns [`crate::LlmError::InvalidConfig`] for negative values.
    pub fn validate(&self) -> Result<()> {
        if self.network_rtt_s < 0.0 || self.per_token_s < 0.0 || self.jitter_sigma < 0.0 {
            return Err(LlmError::InvalidConfig(format!(
                "latency parameters must be non-negative: {self:?}"
            )));
        }
        Ok(())
    }

    /// Expected (jitter-free) latency for a response of `tokens` tokens.
    pub fn expected_latency_s(&self, tokens: usize) -> f64 {
        self.network_rtt_s + self.per_token_s * tokens as f64
    }

    /// Samples a latency for a response of `tokens` tokens using the
    /// deterministic per-query seed.
    pub fn sample_latency_s(&self, tokens: usize, seed: u64) -> f64 {
        let base = self.expected_latency_s(tokens);
        if self.jitter_sigma <= 0.0 {
            return base;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Log-normal with median 1.0 gives multiplicative jitter around base.
        let dist = LogNormal::new(0.0, self.jitter_sigma).expect("sigma validated non-negative");
        let factor: f64 = dist.sample(&mut rng);
        // Guard against pathological samples so experiment plots stay sane.
        let factor = factor.clamp(0.3, 3.0);
        // Small additive queueing noise keeps ties rare without changing scale.
        let noise: f64 = rng.random_range(0.0..self.network_rtt_s.max(1e-4) * 0.1);
        base * factor + noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_latency_grows_linearly_with_tokens() {
        let m = LatencyModel::default();
        let l10 = m.expected_latency_s(10);
        let l50 = m.expected_latency_s(50);
        assert!(l50 > l10);
        assert!((l50 - (m.network_rtt_s + 50.0 * m.per_token_s)).abs() < 1e-12);
    }

    #[test]
    fn default_fifty_token_latency_matches_paper_scale() {
        // The paper's Figure 5 shows uncached 50-token responses taking
        // roughly 0.3-1.0 seconds.
        let m = LatencyModel::default();
        let expected = m.expected_latency_s(50);
        assert!(expected > 0.3 && expected < 1.2, "expected={expected}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_positive() {
        let m = LatencyModel::default();
        let a = m.sample_latency_s(50, 42);
        let b = m.sample_latency_s(50, 42);
        let c = m.sample_latency_s(50, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a > 0.0);
    }

    #[test]
    fn jitter_stays_within_clamped_bounds() {
        let m = LatencyModel {
            jitter_sigma: 1.5,
            ..LatencyModel::default()
        };
        let base = m.expected_latency_s(50);
        for seed in 0..200 {
            let s = m.sample_latency_s(50, seed);
            assert!(
                s >= base * 0.3 && s <= base * 3.0 + 0.05,
                "sample {s} vs base {base}"
            );
        }
    }

    #[test]
    fn zero_jitter_is_exactly_the_expected_latency() {
        let m = LatencyModel {
            jitter_sigma: 0.0,
            ..LatencyModel::default()
        };
        assert_eq!(m.sample_latency_s(20, 7), m.expected_latency_s(20));
    }

    #[test]
    fn validation_rejects_negative_parameters() {
        let mut m = LatencyModel::default();
        assert!(m.validate().is_ok());
        m.per_token_s = -0.1;
        assert!(m.validate().is_err());
    }
}
