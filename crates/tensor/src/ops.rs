//! Higher-level batched operations used by the embedding model and the
//! semantic-search path: softmax, log-sum-exp, pairwise similarity matrices,
//! and parallel batched cosine scoring.

use rayon::prelude::*;

use crate::{vector, Matrix, Result, TensorError};

/// Numerically-stable softmax over a slice, returning a fresh `Vec`.
///
/// Subtracting the maximum before exponentiating keeps the intermediate
/// values in range even for the large logits the MNR loss produces when the
/// encoder becomes confident.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum <= f32::EPSILON {
        return vec![1.0 / logits.len() as f32; logits.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically-stable `log(sum(exp(x)))`.
pub fn log_sum_exp(logits: &[f32]) -> f32 {
    if logits.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Cosine similarity between every row of `queries` and every row of `keys`,
/// producing a `queries.rows() x keys.rows()` matrix.
///
/// Rows are scored in parallel; this is the kernel behind both the
/// multiple-negatives-ranking loss (in-batch negatives) and the batched
/// evaluation harness.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] when the column counts differ.
pub fn pairwise_cosine(queries: &Matrix, keys: &Matrix) -> Result<Matrix> {
    if queries.cols() != keys.cols() {
        return Err(TensorError::ShapeMismatch(format!(
            "pairwise_cosine: {} vs {} columns",
            queries.cols(),
            keys.cols()
        )));
    }
    let q_rows = queries.rows();
    let k_rows = keys.rows();
    let mut out = Matrix::zeros(q_rows, k_rows);
    out.as_mut_slice()
        .par_chunks_mut(k_rows.max(1))
        .enumerate()
        .for_each(|(qi, out_row)| {
            let q = queries.row(qi);
            for (ki, slot) in out_row.iter_mut().enumerate() {
                *slot = vector::cosine_similarity(q, keys.row(ki));
            }
        });
    Ok(out)
}

/// Scores one query vector against every row of `keys` using the fast
/// normalised-cosine kernel (both sides must already be L2-normalised).
/// Returns one score per key row, computed in parallel for large key sets.
pub fn batch_cosine_normalized(query: &[f32], keys: &Matrix) -> Result<Vec<f32>> {
    if query.len() != keys.cols() {
        return Err(TensorError::ShapeMismatch(format!(
            "batch_cosine_normalized: query {} vs keys {} columns",
            query.len(),
            keys.cols()
        )));
    }
    let cols = keys.cols().max(1);
    if keys.rows() * keys.cols() >= crate::PARALLEL_FLOP_THRESHOLD {
        Ok(keys
            .as_slice()
            .par_chunks(cols)
            .map(|row| vector::cosine_similarity_normalized(query, row))
            .collect())
    } else {
        Ok(keys
            .as_slice()
            .chunks_exact(cols)
            .map(|row| vector::cosine_similarity_normalized(query, row))
            .collect())
    }
}

/// One candidate of a top-k selection. The `Ord` impl ranks by score
/// (higher = greater), breaking ties — and NaN incomparabilities — toward the
/// lower index, so selection stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ranked {
    idx: usize,
    score: f32,
}

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Indices and scores of the `k` largest entries of `scores`, in descending
/// score order. Ties are broken by the lower index for determinism.
///
/// Selection runs through a bounded min-heap of the best `k` candidates seen
/// so far — O(n log k) instead of the O(n log n) full sort, which matters in
/// the index hot path where `n` is a 100k-entry scan and `k` is 5. Candidates
/// that cannot beat the current k-th best are rejected with a single
/// comparison and never touch the heap.
pub fn top_k(scores: &[f32], k: usize) -> Vec<(usize, f32)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    // The heap root is the *worst* of the kept candidates (Reverse flips the
    // max-heap into a min-heap), so each new candidate needs one peek to know
    // whether it displaces anything.
    let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k.min(scores.len()));
    for (idx, &score) in scores.iter().enumerate() {
        let candidate = Ranked { idx, score };
        if heap.len() < k {
            heap.push(Reverse(candidate));
        } else if candidate > heap.peek().expect("heap is non-empty").0 {
            heap.pop();
            heap.push(Reverse(candidate));
        }
    }
    let mut kept: Vec<Ranked> = heap.into_iter().map(|r| r.0).collect();
    kept.sort_by(|a, b| b.cmp(a));
    kept.into_iter().map(|r| (r.idx, r.score)).collect()
}

/// Clips every element of `values` to `[-limit, limit]` in place and returns
/// the number of clipped elements. Gradient clipping keeps the contrastive
/// training numerically stable on small, noisy client datasets.
pub fn clip_in_place(values: &mut [f32], limit: f32) -> usize {
    let mut clipped = 0;
    for v in values.iter_mut() {
        if *v > limit {
            *v = limit;
            clipped += 1;
        } else if *v < -limit {
            *v = -limit;
            clipped += 1;
        }
    }
    clipped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_ordered() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_inputs() {
        let x = [0.1f32, -0.5, 0.7];
        let naive = x.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&x) - naive).abs() < 1e-5);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn pairwise_cosine_diagonal_of_self_is_one() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ])
        .unwrap();
        let sim = pairwise_cosine(&m, &m).unwrap();
        for i in 0..3 {
            assert!((sim.get(i, i) - 1.0).abs() < 1e-5);
        }
        assert!(sim.get(0, 1).abs() < 1e-6);
        assert!((sim.get(0, 2) - (1.0 / 2f32.sqrt())).abs() < 1e-5);
    }

    #[test]
    fn pairwise_cosine_rejects_mismatched_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(pairwise_cosine(&a, &b).is_err());
    }

    #[test]
    fn batch_cosine_matches_pairwise() {
        let mut keys = Matrix::from_rows(&[
            vec![0.3, 0.4, 0.1],
            vec![-0.2, 0.9, 0.5],
            vec![1.0, 0.0, 0.0],
        ])
        .unwrap();
        keys.normalize_rows();
        let mut q = vec![0.5, 0.5, 0.5];
        vector::normalize(&mut q);
        let scores = batch_cosine_normalized(&q, &keys).unwrap();
        for (i, s) in scores.iter().enumerate() {
            let expect = vector::cosine_similarity(&q, keys.row(i));
            assert!((s - expect).abs() < 1e-5);
        }
        assert!(batch_cosine_normalized(&[0.1, 0.2], &keys).is_err());
    }

    #[test]
    fn top_k_orders_descending_and_truncates() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.2];
        let top = top_k(&scores, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 1); // tie broken by lower index
        assert_eq!(top[1].0, 3);
        assert_eq!(top[2].0, 2);
        assert!(top_k(&scores, 100).len() == 5);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn clip_limits_magnitude() {
        let mut v = vec![-5.0, 0.5, 5.0];
        let clipped = clip_in_place(&mut v, 1.0);
        assert_eq!(clipped, 2);
        assert_eq!(v, vec![-1.0, 0.5, 1.0]);
    }
}
