//! Embedding storage accounting and lossy quantisation.
//!
//! The paper's Figure 10 and Figure 15 report the per-query storage cost of
//! embeddings (Llama-2 ≈ 32 KB, MPNet/Albert ≈ 6 KB at 768 dimensions with
//! the SBERT on-disk layout, 64-dimension PCA-compressed vectors ≈ 83% less).
//! This module centralises those byte-accounting rules and additionally
//! provides an optional 8-bit linear quantiser — an extension point beyond
//! the paper that the ablation benches exercise.

use serde::{Deserialize, Serialize};

/// Bytes used by the raw `f32` payload of an embedding of `dims` dimensions.
pub fn f32_embedding_bytes(dims: usize) -> usize {
    dims * std::mem::size_of::<f32>()
}

/// Bytes used to persist an embedding of `dims` dimensions in the cache
/// store, including the fixed per-entry header (dimension count + norm) that
/// `mc-store`'s binary layout writes alongside the payload.
pub fn stored_embedding_bytes(dims: usize) -> usize {
    const HEADER_BYTES: usize = 8; // u32 dimension count + f32 stored norm
    HEADER_BYTES + f32_embedding_bytes(dims)
}

/// Fractional storage saving achieved by shrinking `original_dims` to
/// `compressed_dims` (e.g. 768 → 64 yields ≈ 0.92; the paper reports 83%
/// end-to-end once entry metadata is included).
pub fn storage_saving(original_dims: usize, compressed_dims: usize) -> f32 {
    let orig = stored_embedding_bytes(original_dims) as f32;
    if orig <= 0.0 {
        return 0.0;
    }
    let comp = stored_embedding_bytes(compressed_dims) as f32;
    ((orig - comp) / orig).max(0.0)
}

/// An 8-bit linearly quantised embedding: `value ≈ scale * (code - zero)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVec {
    /// Quantised codes, one byte per dimension.
    pub codes: Vec<u8>,
    /// Dequantisation scale.
    pub scale: f32,
    /// Minimum value of the original vector (the zero point maps onto it).
    pub min: f32,
}

impl QuantizedVec {
    /// Quantises a slice of `f32` values to 8-bit codes.
    pub fn quantize(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self {
                codes: Vec::new(),
                scale: 1.0,
                min: 0.0,
            };
        }
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (max - min).max(f32::EPSILON);
        let scale = range / 255.0;
        let codes = values
            .iter()
            .map(|&v| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8)
            .collect();
        Self { codes, scale, min }
    }

    /// Reconstructs the (lossy) `f32` values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.min + c as f32 * self.scale)
            .collect()
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when there are no dimensions.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Bytes used by the quantised payload plus its dequantisation constants.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + 2 * std::mem::size_of::<f32>()
    }

    /// Maximum absolute reconstruction error against the original values.
    pub fn max_error(&self, original: &[f32]) -> f32 {
        self.dequantize()
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_accounting_matches_paper_scale() {
        // 768-dim f32 ≈ 3 KB payload, 4096-dim ≈ 16 KB payload; the relative
        // ordering (Llama ≫ MPNet) is what the Figure 15 bench reports.
        assert_eq!(f32_embedding_bytes(768), 3072);
        assert_eq!(f32_embedding_bytes(4096), 16384);
        assert!(stored_embedding_bytes(768) > f32_embedding_bytes(768));
    }

    #[test]
    fn compression_saving_is_large_for_768_to_64() {
        let saving = storage_saving(768, 64);
        assert!(saving > 0.8, "saving={saving}");
        assert!(saving < 1.0);
        assert_eq!(storage_saving(0, 0), 0.0);
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let values: Vec<f32> = (0..256).map(|i| (i as f32 / 64.0).sin()).collect();
        let q = QuantizedVec::quantize(&values);
        assert_eq!(q.len(), values.len());
        // Max error is at most half a quantisation step.
        let step = q.scale;
        assert!(q.max_error(&values) <= step * 0.51 + 1e-6);
    }

    #[test]
    fn quantized_storage_is_roughly_quarter_of_f32() {
        let values = vec![0.5f32; 768];
        let q = QuantizedVec::quantize(&values);
        assert!(q.storage_bytes() * 3 < f32_embedding_bytes(768));
    }

    #[test]
    fn quantize_constant_vector() {
        let values = vec![0.25f32; 16];
        let q = QuantizedVec::quantize(&values);
        let back = q.dequantize();
        for v in back {
            assert!((v - 0.25).abs() < 1e-3);
        }
    }

    #[test]
    fn quantize_empty() {
        let q = QuantizedVec::quantize(&[]);
        assert!(q.is_empty());
        assert!(q.dequantize().is_empty());
        assert_eq!(q.storage_bytes(), 8);
    }
}
