//! Embedding storage accounting and lossy quantisation.
//!
//! The paper's Figure 10 and Figure 15 report the per-query storage cost of
//! embeddings (Llama-2 ≈ 32 KB, MPNet/Albert ≈ 6 KB at 768 dimensions with
//! the SBERT on-disk layout, 64-dimension PCA-compressed vectors ≈ 83% less).
//! This module centralises those byte-accounting rules and additionally
//! provides an optional 8-bit linear quantiser — an extension point beyond
//! the paper that the ablation benches exercise.

use serde::{Deserialize, Serialize};

/// Bytes used by the raw `f32` payload of an embedding of `dims` dimensions.
pub fn f32_embedding_bytes(dims: usize) -> usize {
    dims * std::mem::size_of::<f32>()
}

/// Bytes used to persist an embedding of `dims` dimensions in the cache
/// store, including the fixed per-entry header (dimension count + norm) that
/// `mc-store`'s binary layout writes alongside the payload.
pub fn stored_embedding_bytes(dims: usize) -> usize {
    const HEADER_BYTES: usize = 8; // u32 dimension count + f32 stored norm
    HEADER_BYTES + f32_embedding_bytes(dims)
}

/// Fractional storage saving achieved by shrinking `original_dims` to
/// `compressed_dims` (e.g. 768 → 64 yields ≈ 0.92; the paper reports 83%
/// end-to-end once entry metadata is included).
pub fn storage_saving(original_dims: usize, compressed_dims: usize) -> f32 {
    let orig = stored_embedding_bytes(original_dims) as f32;
    if orig <= 0.0 {
        return 0.0;
    }
    let comp = stored_embedding_bytes(compressed_dims) as f32;
    ((orig - comp) / orig).max(0.0)
}

/// An 8-bit linearly quantised embedding: `value ≈ scale * (code - zero)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVec {
    /// Quantised codes, one byte per dimension.
    pub codes: Vec<u8>,
    /// Dequantisation scale.
    pub scale: f32,
    /// Minimum value of the original vector (the zero point maps onto it).
    pub min: f32,
}

impl QuantizedVec {
    /// Quantises a slice of `f32` values to 8-bit codes.
    ///
    /// The mapping is deterministic: the same input slice always yields
    /// bit-identical codes (this is what lets a persisted SQ8 index rebuild
    /// its exact contents from the raw-`f32` entry log).
    ///
    /// **Reconstruction error bound:** for finite inputs, the per-dimension
    /// absolute error of [`Self::dequantize`] is at most `scale / 2` (half a
    /// quantisation step), plus float rounding on the order of
    /// `|min| · ε`. Degenerate inputs keep that bound rather than inflating
    /// it:
    ///
    /// * A **constant vector** gets `scale = 0` and all-zero codes, so
    ///   reconstruction (`min + 0 · 0`) is exact. (Clamping the range to
    ///   `f32::EPSILON` instead — the previous behaviour — manufactures a
    ///   nonzero step for data that has none.)
    /// * **Non-finite inputs never poison the codec**: `min`/`max` are taken
    ///   over the finite values only, `NaN` and `-∞` map to code 0, `+∞`
    ///   maps to code 255, and an all-non-finite vector degrades to zeros
    ///   with `scale = 0`, `min = 0` rather than propagating `NaN`/`∞` into
    ///   the dequantisation constants.
    pub fn quantize(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self {
                codes: Vec::new(),
                scale: 1.0,
                min: 0.0,
            };
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if min > max {
            // No finite value at all: deterministic all-zero codes with
            // harmless constants.
            return Self {
                codes: vec![0; values.len()],
                scale: 0.0,
                min: 0.0,
            };
        }
        let range = max - min;
        if range <= 0.0 {
            // Constant vector: one level suffices and reconstruction is
            // exact.
            return Self {
                codes: vec![0; values.len()],
                scale: 0.0,
                min,
            };
        }
        let scale = range / 255.0;
        let inv_scale = 255.0 / range;
        let codes = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    (((v - min) * inv_scale).round().clamp(0.0, 255.0)) as u8
                } else if v == f32::INFINITY {
                    255
                } else {
                    // NaN and -inf: pin to the bottom of the range.
                    0
                }
            })
            .collect();
        Self { codes, scale, min }
    }

    /// Sum of the codes, widened to `u32` — the per-row constant of the
    /// affine correction in [`Self::dot_quantized`]. O(n); a scan that
    /// scores one row against many should compute each row's sum once up
    /// front rather than per pairing.
    pub fn code_sum(&self) -> u32 {
        self.codes.iter().map(|&c| c as u32).sum()
    }

    /// Dot product of two quantised vectors **in the integer domain**:
    /// one fused widening `u8` multiply-add pass
    /// ([`crate::vector::dot_u8`]) plus the affine scale/zero-point
    /// correction —
    /// `s_a·s_b·Σc_a c_b + s_a·m_b·Σc_a + s_b·m_a·Σc_b + n·m_a·m_b` —
    /// rather than dequantising either side.
    ///
    /// This is the *symmetric* (both sides quantised) companion of the scan
    /// kernel `crate::vector::dot_u8_asym`; the index hot path uses the
    /// asymmetric one (queries stay `f32`). Note this convenience form
    /// recomputes both [`Self::code_sum`]s per call — batch callers should
    /// hoist them.
    ///
    /// # Panics
    /// Panics in debug builds when the lengths differ.
    pub fn dot_quantized(&self, other: &QuantizedVec) -> f32 {
        debug_assert_eq!(self.len(), other.len(), "dot_quantized: length mismatch");
        let n = self.len().min(other.len()) as f32;
        let raw = crate::vector::dot_u8(&self.codes, &other.codes) as f32;
        self.scale * other.scale * raw
            + self.scale * other.min * self.code_sum() as f32
            + other.scale * self.min * other.code_sum() as f32
            + n * self.min * other.min
    }

    /// Reconstructs the (lossy) `f32` values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.min + c as f32 * self.scale)
            .collect()
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when there are no dimensions.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Bytes used by the quantised payload plus its dequantisation constants.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + 2 * std::mem::size_of::<f32>()
    }

    /// Maximum absolute reconstruction error against the original values.
    pub fn max_error(&self, original: &[f32]) -> f32 {
        self.dequantize()
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_accounting_matches_paper_scale() {
        // 768-dim f32 ≈ 3 KB payload, 4096-dim ≈ 16 KB payload; the relative
        // ordering (Llama ≫ MPNet) is what the Figure 15 bench reports.
        assert_eq!(f32_embedding_bytes(768), 3072);
        assert_eq!(f32_embedding_bytes(4096), 16384);
        assert!(stored_embedding_bytes(768) > f32_embedding_bytes(768));
    }

    #[test]
    fn compression_saving_is_large_for_768_to_64() {
        let saving = storage_saving(768, 64);
        assert!(saving > 0.8, "saving={saving}");
        assert!(saving < 1.0);
        assert_eq!(storage_saving(0, 0), 0.0);
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let values: Vec<f32> = (0..256).map(|i| (i as f32 / 64.0).sin()).collect();
        let q = QuantizedVec::quantize(&values);
        assert_eq!(q.len(), values.len());
        // Max error is at most half a quantisation step.
        let step = q.scale;
        assert!(q.max_error(&values) <= step * 0.51 + 1e-6);
    }

    #[test]
    fn quantized_storage_is_roughly_quarter_of_f32() {
        let values = vec![0.5f32; 768];
        let q = QuantizedVec::quantize(&values);
        assert!(q.storage_bytes() * 3 < f32_embedding_bytes(768));
    }

    #[test]
    fn quantize_constant_vector() {
        let values = vec![0.25f32; 16];
        let q = QuantizedVec::quantize(&values);
        // One quantisation level, zero step: reconstruction is *exact*, not
        // merely close (the old EPSILON-clamped range manufactured a step).
        assert_eq!(q.scale, 0.0);
        assert!(q.codes.iter().all(|&c| c == 0));
        for v in q.dequantize() {
            assert_eq!(v, 0.25);
        }
        assert_eq!(q.max_error(&values), 0.0);
        // Large-magnitude constants stay exact too.
        let big = vec![3.0e8f32; 8];
        let q = QuantizedVec::quantize(&big);
        assert_eq!(q.max_error(&big), 0.0);
    }

    #[test]
    fn quantize_is_deterministic() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 * 0.71).cos()).collect();
        let a = QuantizedVec::quantize(&values);
        let b = QuantizedVec::quantize(&values);
        assert_eq!(a, b, "same input must yield bit-identical codes");
    }

    #[test]
    fn non_finite_inputs_do_not_poison_codes() {
        let values = [1.0, f32::NAN, -2.0, f32::INFINITY, 0.5, f32::NEG_INFINITY];
        let q = QuantizedVec::quantize(&values);
        assert!(q.scale.is_finite());
        assert!(q.min.is_finite());
        let back = q.dequantize();
        assert!(back.iter().all(|v| v.is_finite()));
        // Finite dimensions still reconstruct within half a step.
        assert!((back[0] - 1.0).abs() <= q.scale * 0.5 + 1e-6);
        assert!((back[2] + 2.0).abs() <= q.scale * 0.5 + 1e-6);
        assert!((back[4] - 0.5).abs() <= q.scale * 0.5 + 1e-6);
        // +inf pins to the top of the finite range, NaN / -inf to the bottom.
        assert_eq!(q.codes[3], 255);
        assert_eq!(q.codes[1], 0);
        assert_eq!(q.codes[5], 0);
        // All-non-finite degrades to zeros instead of NaN constants.
        let q = QuantizedVec::quantize(&[f32::NAN, f32::NAN]);
        assert_eq!(q.codes, vec![0, 0]);
        assert_eq!(q.dequantize(), vec![0.0, 0.0]);
    }

    #[test]
    fn dot_quantized_matches_dequantized_dot() {
        let a: Vec<f32> = (0..96).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..96)
            .map(|i| (i as f32 * 0.29).cos() * 0.7 + 0.1)
            .collect();
        let qa = QuantizedVec::quantize(&a);
        let qb = QuantizedVec::quantize(&b);
        let reference = crate::vector::dot(&qa.dequantize(), &qb.dequantize());
        let fused = qa.dot_quantized(&qb);
        assert!(
            (fused - reference).abs() < 1e-3,
            "fused={fused} reference={reference}"
        );
        assert_eq!(qa.code_sum(), qa.codes.iter().map(|&c| c as u32).sum());
    }

    #[test]
    fn quantize_empty() {
        let q = QuantizedVec::quantize(&[]);
        assert!(q.is_empty());
        assert!(q.dequantize().is_empty());
        assert_eq!(q.storage_bytes(), 8);
    }
}
