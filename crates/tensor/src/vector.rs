//! Owned dense `f32` vectors and the slice-level kernels they wrap.
//!
//! The semantic cache spends most of its time computing cosine similarities
//! between a freshly-encoded query embedding and every cached embedding, so
//! the kernels here are deliberately branch-free inner loops over slices.
//! The free functions ([`dot`], [`norm`], [`cosine_similarity`], …) operate on
//! `&[f32]` so hot paths can work on borrowed storage without copying; the
//! [`Vector`] type is a thin owned wrapper that adds shape checking and
//! serde support for persistence.

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// Dot product of two equal-length slices.
///
/// The loop is written with four independent accumulators so the compiler can
/// keep multiple FMA chains in flight; this roughly doubles throughput on
/// typical x86-64 targets compared to a single accumulator.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length is used (callers are expected to validate shapes at the
/// API boundary via [`Vector`] or [`crate::Matrix`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in (chunks * 4)..n {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Squared Euclidean (L2) norm of a slice.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Cosine similarity between two equal-length slices, as defined in Eq. (2)
/// of the paper: `cos(a, b) = a·b / (||a|| ||b||)`.
///
/// Returns `0.0` when either vector has zero norm, which is the conservative
/// choice for a cache: a degenerate embedding never produces a hit.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine similarity for vectors that are already L2-normalised.
///
/// The encoder in `mc-embedder` always L2-normalises its outputs, so the
/// cache's inner search loop can skip the two norm computations and clamp.
#[inline]
pub fn cosine_similarity_normalized(a: &[f32], b: &[f32]) -> f32 {
    dot(a, b).clamp(-1.0, 1.0)
}

/// In-place L2 normalisation. Vectors with a norm below `f32::EPSILON` are
/// left untouched (normalising them would produce NaNs).
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > f32::EPSILON {
        let inv = 1.0 / n;
        for x in a.iter_mut() {
            *x *= inv;
        }
    }
}

/// `y += alpha * x` (the BLAS AXPY primitive), used by every optimiser step.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `a *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, a: &mut [f32]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Element-wise `a - b` into a freshly allocated `Vec`.
#[inline]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a freshly allocated `Vec`.
#[inline]
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise (Hadamard) product into a freshly allocated `Vec`.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
}

/// Euclidean distance between two slices.
#[inline]
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "euclidean_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Index and value of the maximum element, or `None` for an empty slice.
#[inline]
pub fn argmax(a: &[f32]) -> Option<(usize, f32)> {
    a.iter()
        .copied()
        .enumerate()
        .fold(None, |acc, (i, v)| match acc {
            None => Some((i, v)),
            Some((_, best)) if v > best => Some((i, v)),
            other => other,
        })
}

/// An owned dense `f32` vector with shape-checked arithmetic.
///
/// `Vector` is the unit of exchange between the embedding model and the
/// cache: every query embedding is a `Vector`, every cached embedding is a
/// `Vector`, and the FL client/server exchange flattened parameter `Vector`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a vector from owned data.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Creates a zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f32) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the vector and return its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "dot")?;
        Ok(dot(&self.data, &other.data))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        norm(&self.data)
    }

    /// Cosine similarity with another vector (Eq. 2 of the paper).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn cosine_similarity(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "cosine_similarity")?;
        Ok(cosine_similarity(&self.data, &other.data))
    }

    /// Returns an L2-normalised copy of this vector.
    pub fn normalized(&self) -> Vector {
        let mut v = self.clone();
        normalize(&mut v.data);
        v
    }

    /// L2-normalises this vector in place.
    pub fn normalize_in_place(&mut self) {
        normalize(&mut self.data);
    }

    /// `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &Vector) -> Result<()> {
        self.check_same_len(other, "axpy")?;
        axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        scale(alpha, &mut self.data);
    }

    /// Element-wise sum into a new vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "add")?;
        Ok(Vector::from_vec(add(&self.data, &other.data)))
    }

    /// Element-wise difference into a new vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "sub")?;
        Ok(Vector::from_vec(sub(&self.data, &other.data)))
    }

    /// Euclidean distance to another vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn euclidean_distance(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "euclidean_distance")?;
        Ok(euclidean_distance(&self.data, &other.data))
    }

    /// Arithmetic mean of the elements, or `0.0` for an empty vector.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Storage footprint in bytes of the raw `f32` payload (used by the
    /// Figure 10 / Figure 15 storage experiments).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    fn check_same_len(&self, other: &Vector, op: &str) -> Result<()> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch(format!(
                "{op}: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        Ok(())
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector::from_vec(v)
    }
}

impl From<&[f32]> for Vector {
    fn from(v: &[f32]) -> Self {
        Vector::from_vec(v.to_vec())
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 - 10.0) * 0.25).collect();
        let naive: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let a = vec![0.3, -0.7, 1.2, 0.05];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![-1.0, -2.0, -3.0];
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 5.0];
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut a = vec![3.0, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
        assert!((a[0] - 0.6).abs() < 1e-6);
        assert!((a[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_leaves_zero_vector_untouched() {
        let mut a = vec![0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 11.0, 11.5]);
    }

    #[test]
    fn argmax_finds_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some((1, 0.9)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn vector_shape_mismatch_is_reported() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.dot(&b), Err(TensorError::ShapeMismatch(_))));
        assert!(matches!(
            a.cosine_similarity(&b),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn vector_mean_and_storage() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((v.mean() - 2.5).abs() < 1e-6);
        assert_eq!(v.storage_bytes(), 16);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn vector_serde_round_trip() {
        let v = Vector::from_vec(vec![0.25, -1.5, 3.0]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Vector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn normalized_cosine_matches_general_cosine() {
        let a = Vector::from_vec(vec![0.2, 0.5, -0.3, 0.9]).normalized();
        let b = Vector::from_vec(vec![-0.1, 0.4, 0.8, 0.2]).normalized();
        let general = cosine_similarity(a.as_slice(), b.as_slice());
        let fast = cosine_similarity_normalized(a.as_slice(), b.as_slice());
        assert!((general - fast).abs() < 1e-5);
    }

    #[test]
    fn euclidean_distance_basic() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn index_and_mutation() {
        let mut v = Vector::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        assert_eq!(v.as_slice(), &[0.0, 7.0, 0.0]);
    }
}
