//! Owned dense `f32` vectors and the slice-level kernels they wrap.
//!
//! The semantic cache spends most of its time computing cosine similarities
//! between a freshly-encoded query embedding and every cached embedding, so
//! the kernels here are deliberately branch-free inner loops over slices.
//! The free functions ([`dot`], [`norm`], [`cosine_similarity`], …) operate on
//! `&[f32]` so hot paths can work on borrowed storage without copying; the
//! [`Vector`] type is a thin owned wrapper that adds shape checking and
//! serde support for persistence.

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// Dot product of two equal-length slices.
///
/// The loop is written with four independent accumulators so the compiler can
/// keep multiple FMA chains in flight; this roughly doubles throughput on
/// typical x86-64 targets compared to a single accumulator.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length is used (callers are expected to validate shapes at the
/// API boundary via [`Vector`] or [`crate::Matrix`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0f32;
    for j in (chunks * 4)..n {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

/// Widening dot product of two `i8` slices, accumulated in `i32`.
///
/// The integer companion of [`dot`]: four independent `i32` accumulators so
/// multiple multiply-add chains stay in flight, with each `i8 × i8` product
/// widened before accumulation. Safe for any slice up to ~130k elements per
/// accumulator lane (`i32::MAX / 127²`), far beyond embedding sizes.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length is used.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] as i32 * b[j] as i32;
        s1 += a[j + 1] as i32 * b[j + 1] as i32;
        s2 += a[j + 2] as i32 * b[j + 2] as i32;
        s3 += a[j + 3] as i32 * b[j + 3] as i32;
    }
    let mut tail = 0i32;
    for j in (chunks * 4)..n {
        tail += a[j] as i32 * b[j] as i32;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Widening dot product of two `u8` code slices, accumulated in `u32`.
///
/// This is the integer core of the symmetric SQ8 × SQ8 similarity: callers
/// apply the affine scale/zero-point correction once per row (see
/// `mc_tensor::quant::QuantizedVec::dot_quantized`). Each `u32` accumulator
/// lane holds ~66k products of `255 × 255` before overflow, so any realistic
/// embedding dimensionality is safe.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length is used.
#[inline]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "dot_u8: length mismatch");
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32, 0u32);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] as u32 * b[j] as u32;
        s1 += a[j + 1] as u32 * b[j + 1] as u32;
        s2 += a[j + 2] as u32 * b[j + 2] as u32;
        s3 += a[j + 3] as u32 * b[j + 3] as u32;
    }
    let mut tail = 0u32;
    for j in (chunks * 4)..n {
        tail += a[j] as u32 * b[j] as u32;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Asymmetric fused dot product: full-precision `f32` query × SQ8 row.
///
/// Computes `dot(query, dequantize(codes))` for a row stored as
/// `value_j ≈ min + codes_j * scale` **without materialising the dequantised
/// row**: the inner loop accumulates `Σ query_j · codes_j` with eight
/// independent widening lanes (one `u8 → f32` convert + FMA per element),
/// and the affine correction `scale · Σ q·c + min · Σ q` is applied once at
/// the end. `query_sum` is `Σ query_j`, hoisted out so a scan over many rows
/// computes it once per query rather than once per row.
///
/// The loop body is a fixed-width `chunks_exact` zip rather than the indexed
/// 4-lane shape of [`dot`]: the bounds-check-free fixed windows are what
/// lets the compiler emit packed `u8 → f32` widening conversions, which
/// measures ~3× faster than the indexed form — enough for the scan to
/// realise the 4× memory-bandwidth advantage of byte rows instead of being
/// convert-bound.
///
/// Queries are never quantised on this path, which keeps the score error at
/// one quantisation step of the *stored* row rather than two.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release builds
/// the shorter length is used.
#[inline]
pub fn dot_u8_asym(query: &[f32], codes: &[u8], scale: f32, min: f32, query_sum: f32) -> f32 {
    debug_assert_eq!(query.len(), codes.len(), "dot_u8_asym: length mismatch");
    const WIDTH: usize = 8;
    let n = query.len().min(codes.len());
    let mut lanes = [0.0f32; WIDTH];
    let query_chunks = query[..n].chunks_exact(WIDTH);
    let code_chunks = codes[..n].chunks_exact(WIDTH);
    let query_rem = query_chunks.remainder();
    let code_rem = code_chunks.remainder();
    for (q, c) in query_chunks.zip(code_chunks) {
        for k in 0..WIDTH {
            lanes[k] += q[k] * c[k] as f32;
        }
    }
    let mut tail = 0.0f32;
    for (q, &c) in query_rem.iter().zip(code_rem.iter()) {
        tail += q * c as f32;
    }
    scale * (lanes.iter().sum::<f32>() + tail) + min * query_sum
}

/// Sum of the elements of a slice, with the same four-accumulator shape as
/// [`dot`] (used to hoist the `Σ query` correction term of
/// [`dot_u8_asym`] out of row scans).
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j];
        s1 += a[j + 1];
        s2 += a[j + 2];
        s3 += a[j + 3];
    }
    let mut tail = 0.0f32;
    for &x in &a[chunks * 4..] {
        tail += x;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Squared Euclidean (L2) norm of a slice.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Cosine similarity between two equal-length slices, as defined in Eq. (2)
/// of the paper: `cos(a, b) = a·b / (||a|| ||b||)`.
///
/// Returns `0.0` when either vector has zero norm, which is the conservative
/// choice for a cache: a degenerate embedding never produces a hit.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine similarity for vectors that are already L2-normalised.
///
/// The encoder in `mc-embedder` always L2-normalises its outputs, so the
/// cache's inner search loop can skip the two norm computations and clamp.
#[inline]
pub fn cosine_similarity_normalized(a: &[f32], b: &[f32]) -> f32 {
    dot(a, b).clamp(-1.0, 1.0)
}

/// In-place L2 normalisation. Vectors with a norm below `f32::EPSILON` are
/// left untouched (normalising them would produce NaNs).
///
/// The norm is the 4-lane [`dot`]; the rescale loop is unrolled to the same
/// width so four independent multiplies stay in flight per iteration.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > f32::EPSILON {
        let inv = 1.0 / n;
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let j = i * 4;
            a[j] *= inv;
            a[j + 1] *= inv;
            a[j + 2] *= inv;
            a[j + 3] *= inv;
        }
        for x in &mut a[chunks * 4..] {
            *x *= inv;
        }
    }
}

/// `y += alpha * x` (the BLAS AXPY primitive), used by every optimiser step.
///
/// Unrolled four-wide like [`dot`]: the four fused multiply-adds per
/// iteration are independent, so the optimiser-step hot loop (every layer of
/// every federated client round goes through here) is no longer latency-bound
/// on a single chain.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n = x.len().min(y.len());
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        y[j] += alpha * x[j];
        y[j + 1] += alpha * x[j + 1];
        y[j + 2] += alpha * x[j + 2];
        y[j + 3] += alpha * x[j + 3];
    }
    for j in (chunks * 4)..n {
        y[j] += alpha * x[j];
    }
}

/// `a *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, a: &mut [f32]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Element-wise `a - b` into a freshly allocated `Vec`.
#[inline]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a freshly allocated `Vec`.
#[inline]
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise (Hadamard) product into a freshly allocated `Vec`.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
}

/// Euclidean distance between two slices.
#[inline]
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "euclidean_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Index and value of the maximum element, or `None` for an empty slice.
#[inline]
pub fn argmax(a: &[f32]) -> Option<(usize, f32)> {
    a.iter()
        .copied()
        .enumerate()
        .fold(None, |acc, (i, v)| match acc {
            None => Some((i, v)),
            Some((_, best)) if v > best => Some((i, v)),
            other => other,
        })
}

/// An owned dense `f32` vector with shape-checked arithmetic.
///
/// `Vector` is the unit of exchange between the embedding model and the
/// cache: every query embedding is a `Vector`, every cached embedding is a
/// `Vector`, and the FL client/server exchange flattened parameter `Vector`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a vector from owned data.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Creates a zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f32) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the vector and return its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "dot")?;
        Ok(dot(&self.data, &other.data))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        norm(&self.data)
    }

    /// Cosine similarity with another vector (Eq. 2 of the paper).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn cosine_similarity(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "cosine_similarity")?;
        Ok(cosine_similarity(&self.data, &other.data))
    }

    /// Returns an L2-normalised copy of this vector.
    pub fn normalized(&self) -> Vector {
        let mut v = self.clone();
        normalize(&mut v.data);
        v
    }

    /// L2-normalises this vector in place.
    pub fn normalize_in_place(&mut self) {
        normalize(&mut self.data);
    }

    /// `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &Vector) -> Result<()> {
        self.check_same_len(other, "axpy")?;
        axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        scale(alpha, &mut self.data);
    }

    /// Element-wise sum into a new vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "add")?;
        Ok(Vector::from_vec(add(&self.data, &other.data)))
    }

    /// Element-wise difference into a new vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len(other, "sub")?;
        Ok(Vector::from_vec(sub(&self.data, &other.data)))
    }

    /// Euclidean distance to another vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when lengths differ.
    pub fn euclidean_distance(&self, other: &Vector) -> Result<f32> {
        self.check_same_len(other, "euclidean_distance")?;
        Ok(euclidean_distance(&self.data, &other.data))
    }

    /// Arithmetic mean of the elements, or `0.0` for an empty vector.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Storage footprint in bytes of the raw `f32` payload (used by the
    /// Figure 10 / Figure 15 storage experiments).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    fn check_same_len(&self, other: &Vector, op: &str) -> Result<()> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch(format!(
                "{op}: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        Ok(())
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector::from_vec(v)
    }
}

impl From<&[f32]> for Vector {
    fn from(v: &[f32]) -> Self {
        Vector::from_vec(v.to_vec())
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 - 10.0) * 0.25).collect();
        let naive: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn dot_i8_matches_widened_naive() {
        let a: Vec<i8> = (0..37).map(|i| (i * 7 % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| (i * 13 % 255 - 127) as i8).collect();
        let naive: i32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| x as i32 * y as i32)
            .sum();
        assert_eq!(dot_i8(&a, &b), naive);
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn dot_u8_matches_widened_naive() {
        let a: Vec<u8> = (0..41).map(|i| (i * 17 % 256) as u8).collect();
        let b: Vec<u8> = (0..41).map(|i| (i * 29 % 256) as u8).collect();
        let naive: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| x as u32 * y as u32)
            .sum();
        assert_eq!(dot_u8(&a, &b), naive);
        // Extreme codes do not overflow the 4-lane u32 accumulation at
        // realistic dimensionalities.
        let maxed = vec![255u8; 4096];
        assert_eq!(dot_u8(&maxed, &maxed), 4096 * 255 * 255);
    }

    #[test]
    fn dot_u8_asym_matches_dequantized_dot() {
        // Row values ≈ min + code * scale; the fused kernel must agree with
        // dequantise-then-dot to float tolerance.
        let scale = 0.0125f32;
        let min = -1.6f32;
        let codes: Vec<u8> = (0..67).map(|i| (i * 31 % 256) as u8).collect();
        let row: Vec<f32> = codes.iter().map(|&c| min + c as f32 * scale).collect();
        let query: Vec<f32> = (0..67).map(|i| ((i as f32) * 0.37).sin()).collect();
        let fused = dot_u8_asym(&query, &codes, scale, min, sum(&query));
        let reference = dot(&query, &row);
        assert!(
            (fused - reference).abs() < 1e-3,
            "fused={fused} reference={reference}"
        );
    }

    #[test]
    fn sum_matches_naive() {
        let a: Vec<f32> = (0..23).map(|i| i as f32 * 0.3 - 2.0).collect();
        let naive: f32 = a.iter().sum();
        assert!((sum(&a) - naive).abs() < 1e-4);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let a = vec![0.3, -0.7, 1.2, 0.05];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![-1.0, -2.0, -3.0];
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 5.0];
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut a = vec![3.0, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
        assert!((a[0] - 0.6).abs() < 1e-6);
        assert!((a[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_leaves_zero_vector_untouched() {
        let mut a = vec![0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 11.0, 11.5]);
    }

    #[test]
    fn argmax_finds_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some((1, 0.9)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn vector_shape_mismatch_is_reported() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.dot(&b), Err(TensorError::ShapeMismatch(_))));
        assert!(matches!(
            a.cosine_similarity(&b),
            Err(TensorError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn vector_mean_and_storage() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((v.mean() - 2.5).abs() < 1e-6);
        assert_eq!(v.storage_bytes(), 16);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn vector_serde_round_trip() {
        let v = Vector::from_vec(vec![0.25, -1.5, 3.0]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Vector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn normalized_cosine_matches_general_cosine() {
        let a = Vector::from_vec(vec![0.2, 0.5, -0.3, 0.9]).normalized();
        let b = Vector::from_vec(vec![-0.1, 0.4, 0.8, 0.2]).normalized();
        let general = cosine_similarity(a.as_slice(), b.as_slice());
        let fast = cosine_similarity_normalized(a.as_slice(), b.as_slice());
        assert!((general - fast).abs() < 1e-5);
    }

    #[test]
    fn euclidean_distance_basic() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn index_and_mutation() {
        let mut v = Vector::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        assert_eq!(v.as_slice(), &[0.0, 7.0, 0.0]);
    }
}
