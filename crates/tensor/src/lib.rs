//! # mc-tensor
//!
//! Dense linear-algebra substrate for the MeanCache reproduction.
//!
//! The crate provides the numeric kernels every higher layer builds on:
//!
//! * [`Vector`] — an owned, contiguous `f32` vector with the operations the
//!   semantic cache needs (dot products, L2 norms, cosine similarity,
//!   normalisation, AXPY updates).
//! * [`Matrix`] — a row-major `f32` matrix with sequential and
//!   [rayon](https://docs.rs/rayon)-parallel multiplication kernels,
//!   transposes, reductions and in-place update primitives used by the
//!   neural-network substrate (`mc-nn`).
//! * [`rng`] — seeded random initialisers (Xavier/He/uniform/normal) so every
//!   experiment in the benchmark harness is reproducible.
//! * [`stats`] — mean/covariance computations used by the PCA compression
//!   stage of `mc-embedder`.
//! * [`quant`] — storage-size accounting and lossy quantisation helpers used
//!   by the storage experiments (Figure 10 / Figure 15 of the paper).
//!
//! All kernels are written against plain slices where possible so callers can
//! avoid allocation in hot loops (see the Rust Performance Book guidance on
//! reusing buffers), and the parallel variants only split work when the
//! problem is large enough for the fork/join overhead to pay off.

pub mod matrix;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use vector::Vector;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes. Carries a human-readable
    /// description of the mismatch.
    ShapeMismatch(String),
    /// An operation that requires a non-empty tensor received an empty one.
    Empty(String),
    /// A numeric argument was outside its valid domain.
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::Empty(msg) => write!(f, "empty tensor: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias for tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Problem size (in multiply-accumulate operations) above which the parallel
/// kernels split work across the rayon thread pool. Below this the
/// sequential kernels are faster because they avoid fork/join overhead.
pub const PARALLEL_FLOP_THRESHOLD: usize = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::ShapeMismatch("2x3 vs 4x5".into());
        assert!(e.to_string().contains("2x3 vs 4x5"));
        let e = TensorError::Empty("vector".into());
        assert!(e.to_string().contains("empty"));
        let e = TensorError::InvalidArgument("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            TensorError::Empty("x".into()),
            TensorError::Empty("x".into())
        );
        assert_ne!(
            TensorError::Empty("x".into()),
            TensorError::Empty("y".into())
        );
    }
}
