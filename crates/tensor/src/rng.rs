//! Seeded random initialisation helpers.
//!
//! Every stochastic component in the reproduction (weight init, data
//! partitioning, client sampling, workload generation) is driven by an
//! explicit seed so that `cargo test` and the experiment binaries are fully
//! deterministic run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index using
/// SplitMix64-style mixing. Lets independent components (clients, layers,
/// workload generators) get decorrelated streams from one experiment seed.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a matrix with entries uniform in `[-limit, limit]`.
pub fn uniform_matrix(rows: usize, cols: usize, limit: f32, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("uniform_matrix: shape is consistent by construction")
}

/// Xavier/Glorot uniform initialisation for a dense layer mapping
/// `fan_in -> fan_out`: entries uniform in `±sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_matrix(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform_matrix(fan_in, fan_out, limit, rng)
}

/// He/Kaiming-style initialisation (scaled normal) for ReLU stacks.
pub fn he_matrix(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| sample_standard_normal(rng) * std_dev)
        .collect();
    Matrix::from_vec(fan_in, fan_out, data).expect("he_matrix: shape is consistent by construction")
}

/// Samples a vector with entries uniform in `[-limit, limit]`.
pub fn uniform_vec(n: usize, limit: f32, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(-limit..=limit)).collect()
}

/// Samples a standard-normal value using the Box–Muller transform. Keeping
/// this local avoids depending on `rand_distr` in the low-level crate.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.random::<f32>();
        let u2: f32 = rng.random::<f32>();
        if u1 > f32::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

/// Fisher–Yates shuffle of indices `0..n`, returning the permutation.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<f32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random::<f32>()).collect()
        };
        let b: Vec<f32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random::<f32>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
        // Deterministic.
        assert_eq!(derive_seed(7, 1), s2);
    }

    #[test]
    fn xavier_limits_are_respected() {
        let mut rng = seeded(1);
        let m = xavier_matrix(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt() + 1e-6;
        assert!(m.as_slice().iter().all(|x| x.abs() <= limit));
        assert_eq!(m.shape(), (100, 50));
    }

    #[test]
    fn he_matrix_has_reasonable_spread() {
        let mut rng = seeded(2);
        let m = he_matrix(256, 64, &mut rng);
        let mean = m.mean();
        assert!(mean.abs() < 0.02, "mean={mean}");
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        // Expected variance 2/256 ≈ 0.0078.
        assert!((var - 2.0 / 256.0).abs() < 0.004, "var={var}");
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = seeded(3);
        let samples: Vec<f32> = (0..20_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = seeded(4);
        let p = permutation(100, &mut rng);
        let mut seen = vec![false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|x| x));
        assert!(permutation(0, &mut rng).is_empty());
    }

    #[test]
    fn uniform_vec_respects_limit() {
        let mut rng = seeded(5);
        let v = uniform_vec(1000, 0.25, &mut rng);
        assert!(v.iter().all(|x| x.abs() <= 0.25 + 1e-6));
    }
}
