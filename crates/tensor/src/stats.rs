//! Statistical reductions over sets of embedding vectors.
//!
//! The PCA compression stage (`mc-embedder::pca`) fits its projection on the
//! covariance matrix of all training-query embeddings (Figure 3-a of the
//! paper); the kernels here compute that covariance in parallel and provide
//! the scalar summaries the benchmark reports use.

use rayon::prelude::*;

use crate::{vector, Matrix, Result, TensorError};

/// Column-wise mean of a matrix whose rows are observations.
///
/// # Errors
/// Returns [`TensorError::Empty`] for a matrix with zero rows.
pub fn column_mean(data: &Matrix) -> Result<Vec<f32>> {
    if data.rows() == 0 {
        return Err(TensorError::Empty("column_mean: no rows".into()));
    }
    let mut mean = vec![0.0f32; data.cols()];
    for r in 0..data.rows() {
        vector::axpy(1.0, data.row(r), &mut mean);
    }
    let inv = 1.0 / data.rows() as f32;
    vector::scale(inv, &mut mean);
    Ok(mean)
}

/// Centers the rows of `data` by subtracting the column mean, returning the
/// centered matrix and the mean that was removed.
///
/// # Errors
/// Returns [`TensorError::Empty`] for a matrix with zero rows.
pub fn center_rows(data: &Matrix) -> Result<(Matrix, Vec<f32>)> {
    let mean = column_mean(data)?;
    let mut centered = data.clone();
    let cols = data.cols().max(1);
    centered
        .as_mut_slice()
        .chunks_exact_mut(cols)
        .for_each(|row| {
            for (x, m) in row.iter_mut().zip(mean.iter()) {
                *x -= m;
            }
        });
    Ok((centered, mean))
}

/// Sample covariance matrix (`cols x cols`) of a matrix whose rows are
/// observations. Uses the unbiased `1/(n-1)` normaliser when `n > 1`.
///
/// The accumulation is parallelised over observation chunks and merged, so
/// fitting PCA on a few thousand 768-dimensional embeddings stays fast.
///
/// # Errors
/// Returns [`TensorError::Empty`] for a matrix with zero rows.
pub fn covariance(data: &Matrix) -> Result<Matrix> {
    let (centered, _mean) = center_rows(data)?;
    let n = data.rows();
    let d = data.cols();
    let normaliser = if n > 1 { (n - 1) as f32 } else { 1.0 };

    // Split rows into chunks, accumulate X_chunk^T * X_chunk per chunk, merge.
    let chunk_rows = 128;
    let partials: Vec<Matrix> = centered
        .as_slice()
        .par_chunks(chunk_rows * d.max(1))
        .map(|chunk| {
            let rows = chunk.len() / d.max(1);
            let mut acc = Matrix::zeros(d, d);
            for r in 0..rows {
                let row = &chunk[r * d..(r + 1) * d];
                // acc += row^T * row
                acc.add_outer(1.0, row, row)
                    .expect("covariance: outer product shapes are consistent");
            }
            acc
        })
        .collect();

    let mut cov = Matrix::zeros(d, d);
    for p in partials {
        cov.add_scaled(1.0, &p)?;
    }
    cov.scale(1.0 / normaliser);
    Ok(cov)
}

/// Scalar mean of a slice (`0.0` for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Sample variance of a slice (`0.0` for fewer than two elements).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// `p`-th percentile (0..=100) of a slice using linear interpolation between
/// closest ranks. Returns `0.0` for an empty slice.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f32;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Fraction of explained variance captured by keeping the `k` largest of the
/// provided eigenvalues (assumed non-negative, any order).
pub fn explained_variance_ratio(eigenvalues: &[f32], k: usize) -> f32 {
    if eigenvalues.is_empty() || k == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f32> = eigenvalues.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let total: f32 = sorted.iter().sum();
    if total <= f32::EPSILON {
        return 0.0;
    }
    let kept: f32 = sorted.iter().take(k).sum();
    kept / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn column_mean_basic() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mu = column_mean(&m).unwrap();
        assert_eq!(mu, vec![3.0, 4.0]);
        assert!(column_mean(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn centering_removes_the_mean() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        let (centered, mean) = center_rows(&m).unwrap();
        assert_eq!(mean, vec![2.0, 20.0]);
        let remaining = column_mean(&centered).unwrap();
        assert!(remaining.iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated columns.
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
            vec![4.0, 8.0],
        ])
        .unwrap();
        let cov = covariance(&m).unwrap();
        // var(x) for 1..4 = 5/3, cov(x,2x) = 2*var(x), var(2x) = 4*var(x).
        let var_x = 5.0 / 3.0;
        assert!((cov.get(0, 0) - var_x).abs() < 1e-4);
        assert!((cov.get(0, 1) - 2.0 * var_x).abs() < 1e-4);
        assert!((cov.get(1, 0) - 2.0 * var_x).abs() < 1e-4);
        assert!((cov.get(1, 1) - 4.0 * var_x).abs() < 1e-4);
    }

    #[test]
    fn covariance_is_symmetric_on_random_data() {
        let mut rng = crate::rng::seeded(11);
        let m = crate::rng::uniform_matrix(200, 16, 1.0, &mut rng);
        let cov = covariance(&m).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                assert!((cov.get(i, j) - cov.get(j, i)).abs() < 1e-4);
            }
            assert!(cov.get(i, i) >= -1e-6, "diagonal must be non-negative");
        }
    }

    #[test]
    fn scalar_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-5);
        assert!((std_dev(&xs) - (32.0f32 / 7.0).sqrt()).abs() < 1e-5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-6);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn explained_variance_ratio_behaviour() {
        let eig = [4.0, 3.0, 2.0, 1.0];
        assert!((explained_variance_ratio(&eig, 2) - 0.7).abs() < 1e-6);
        assert_eq!(explained_variance_ratio(&eig, 0), 0.0);
        assert!((explained_variance_ratio(&eig, 10) - 1.0).abs() < 1e-6);
        assert_eq!(explained_variance_ratio(&[], 3), 0.0);
        assert_eq!(explained_variance_ratio(&[0.0, 0.0], 1), 0.0);
    }
}
