//! Row-major dense `f32` matrices with sequential and rayon-parallel kernels.
//!
//! The neural-network substrate (`mc-nn`) stores layer weights as [`Matrix`]
//! values and drives training through `matmul` / `matvec` / rank-1 updates.
//! Batched forward/backward passes over a mini-batch are the dominant cost of
//! federated training, so [`Matrix::matmul`] switches to a row-parallel
//! implementation once the problem is large enough to amortise rayon's
//! fork/join overhead (see [`crate::PARALLEL_FLOP_THRESHOLD`]).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{vector, Result, TensorError, Vector, PARALLEL_FLOP_THRESHOLD};

/// A dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(format!(
                "from_vec: expected {} elements for {}x{}, got {}",
                rows * cols,
                rows,
                cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix whose rows are the given equal-length slices.
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] for an empty row set and
    /// [`TensorError::ShapeMismatch`] if row lengths differ.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::Empty("from_rows: no rows".into()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch(format!(
                    "from_rows: row {i} has length {}, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copy column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterate over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Uses a cache-friendly i-k-j loop ordering; when the multiply-accumulate
    /// count exceeds [`PARALLEL_FLOP_THRESHOLD`] the output rows are computed
    /// in parallel on the rayon thread pool.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops >= PARALLEL_FLOP_THRESHOLD && self.rows > 1 {
            out.data
                .par_chunks_mut(other.cols)
                .enumerate()
                .for_each(|(i, out_row)| {
                    Self::matmul_row(self.row(i), other, out_row);
                });
        } else {
            for i in 0..self.rows {
                let (a_row, out_row) = (
                    self.row(i),
                    &mut out.data[i * other.cols..(i + 1) * other.cols],
                );
                Self::matmul_row(a_row, other, out_row);
            }
        }
        Ok(out)
    }

    /// Computes one output row of a matmul: `out_row = a_row * b`.
    #[inline]
    fn matmul_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
        for (k, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            vector::axpy(a_val, b_row, out_row);
        }
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when `x.len() != self.cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "matvec: {}x{} * {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let flops = self.rows * self.cols;
        if flops >= PARALLEL_FLOP_THRESHOLD && self.rows > 1 {
            Ok(self
                .data
                .par_chunks(self.cols)
                .map(|row| vector::dot(row, x))
                .collect())
        } else {
            Ok(self
                .data
                .chunks_exact(self.cols)
                .map(|row| vector::dot(row, x))
                .collect())
        }
    }

    /// Vector–matrix product `x^T * self` (length-`cols` result).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when `x.len() != self.rows`.
    pub fn vecmat(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "vecmat: {} * {}x{}",
                x.len(),
                self.rows,
                self.cols
            )));
        }
        let mut out = vec![0.0f32; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            vector::axpy(xv, self.row(r), &mut out);
        }
        Ok(out)
    }

    /// In-place element-wise `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch(format!(
                "add_scaled: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        vector::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f32) {
        vector::scale(alpha, &mut self.data);
    }

    /// Adds the rank-1 update `alpha * x * y^T` to this matrix
    /// (`x.len() == rows`, `y.len() == cols`). This is the gradient of a dense
    /// layer's weight matrix for a single sample.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] on dimension mismatch.
    pub fn add_outer(&mut self, alpha: f32, x: &[f32], y: &[f32]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "add_outer: x={} y={} for {}x{}",
                x.len(),
                y.len(),
                self.rows,
                self.cols
            )));
        }
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            vector::axpy(alpha * xv, y, self.row_mut(r));
        }
        Ok(())
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f32 {
        vector::norm(&self.data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (`0.0` for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Storage footprint in bytes of the raw `f32` payload.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Returns the matrix flattened into a [`Vector`] (row-major order).
    /// Used to ship model parameters between FL clients and the server.
    pub fn flatten(&self) -> Vector {
        Vector::from_vec(self.data.clone())
    }

    /// Reconstructs a matrix from a flat row-major vector.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the element count differs.
    pub fn from_flat(rows: usize, cols: usize, flat: &Vector) -> Result<Matrix> {
        Matrix::from_vec(rows, cols, flat.as_slice().to_vec())
    }

    /// L2-normalises every row in place (used for batched embedding outputs).
    pub fn normalize_rows(&mut self) {
        let cols = self.cols.max(1);
        self.data.chunks_exact_mut(cols).for_each(vector::normalize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    fn sample_b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap()
    }

    #[test]
    fn matmul_small_matches_hand_computation() {
        let c = sample_a().matmul(&sample_b()).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch(_))));
    }

    #[test]
    fn parallel_matmul_matches_sequential() {
        // Large enough to trigger the parallel path.
        let n = 96;
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect(),
        )
        .unwrap();
        let b = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect(),
        )
        .unwrap();
        let par = a.matmul(&b).unwrap();
        // Sequential reference.
        let mut seq = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let av = a.get(i, k);
                for j in 0..n {
                    seq.set(i, j, seq.get(i, j) + av * b.get(k, j));
                }
            }
        }
        for (x, y) in par.as_slice().iter().zip(seq.as_slice()) {
            assert!((x - y).abs() < 1e-3, "parallel={x} sequential={y}");
        }
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = sample_a();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample_a();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = sample_a();
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn add_outer_matches_manual_rank1_update() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 4.0, 6.0, -2.0, -4.0, -6.0]);
        assert!(m.add_outer(1.0, &[1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = sample_a();
        let b = sample_a();
        a.add_scaled(0.5, &b).unwrap();
        assert_eq!(a.get(1, 2), 9.0);
        a.scale(2.0);
        assert_eq!(a.get(0, 0), 3.0);
        assert!(a.add_scaled(1.0, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn from_rows_validates_lengths() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn flatten_round_trip() {
        let a = sample_a();
        let flat = a.flatten();
        let back = Matrix::from_flat(2, 3, &flat).unwrap();
        assert_eq!(a, back);
        assert!(Matrix::from_flat(4, 4, &flat).is_err());
    }

    #[test]
    fn normalize_rows_gives_unit_rows() {
        let mut m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        m.normalize_rows();
        assert!((vector::norm(m.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let a = sample_a();
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert!((a.frobenius_norm() - 91.0f32.sqrt()).abs() < 1e-4);
        assert_eq!(a.storage_bytes(), 24);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn col_extraction() {
        let a = sample_a();
        assert_eq!(a.col(1), vec![2.0, 5.0]);
    }
}
