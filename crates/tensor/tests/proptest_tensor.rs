//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic invariants the higher layers rely on: cosine
//! similarity bounds and symmetry, normalisation producing unit vectors,
//! matmul distributing over addition, and quantisation error bounds.

use mc_tensor::{matrix::Matrix, ops, quant::QuantizedVec, vector};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cosine_similarity_is_bounded_and_symmetric(
        a in finite_vec(1..64),
        b in finite_vec(1..64),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ab = vector::cosine_similarity(a, b);
        let ba = vector::cosine_similarity(b, a);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn cosine_is_scale_invariant(a in finite_vec(2..32), scale in 0.01f32..50.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * scale).collect();
        let sim = vector::cosine_similarity(&a, &scaled);
        // Unless the vector is (numerically) zero, scaling must not change direction.
        if vector::norm(&a) > 1e-3 {
            prop_assert!((sim - 1.0).abs() < 1e-3, "sim={sim}");
        }
    }

    #[test]
    fn normalization_yields_unit_norm(mut a in finite_vec(1..128)) {
        vector::normalize(&mut a);
        let n = vector::norm(&a);
        // Either it was a zero vector (left untouched) or it is unit length.
        prop_assert!(n < 1e-3 || (n - 1.0).abs() < 1e-3);
    }

    #[test]
    fn dot_is_commutative(a in finite_vec(1..64), b in finite_vec(1..64)) {
        let n = a.len().min(b.len());
        let d1 = vector::dot(&a[..n], &b[..n]);
        let d2 = vector::dot(&b[..n], &a[..n]);
        prop_assert!((d1 - d2).abs() < 1e-2 * (1.0 + d1.abs()));
    }

    #[test]
    fn matvec_distributes_over_vector_addition(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = mc_tensor::rng::seeded(seed);
        let m = mc_tensor::rng::uniform_matrix(rows, cols, 1.0, &mut rng);
        let x = mc_tensor::rng::uniform_vec(cols, 1.0, &mut rng);
        let y = mc_tensor::rng::uniform_vec(cols, 1.0, &mut rng);
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&xy).unwrap();
        let mx = m.matvec(&x).unwrap();
        let my = m.matvec(&y).unwrap();
        for i in 0..rows {
            prop_assert!((lhs[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = mc_tensor::rng::seeded(seed);
        let m = mc_tensor::rng::uniform_matrix(rows, cols, 2.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn softmax_is_a_probability_distribution(logits in finite_vec(1..32)) {
        let p = ops::softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn top_k_returns_sorted_prefix(scores in finite_vec(1..64), k in 1usize..16) {
        let top = ops::top_k(&scores, k);
        prop_assert!(top.len() <= k.min(scores.len()));
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // The first element must be the global maximum.
        if let Some((_, best)) = vector::argmax(&scores) {
            prop_assert!((top[0].1 - best).abs() < 1e-6);
        }
    }

    #[test]
    fn quantization_error_is_within_one_step(values in finite_vec(1..256)) {
        let q = QuantizedVec::quantize(&values);
        prop_assert!(q.max_error(&values) <= q.scale * 0.51 + 1e-5);
        prop_assert_eq!(q.len(), values.len());
    }

    #[test]
    fn row_normalised_matrix_has_unit_rows(rows in 1usize..10, cols in 1usize..16, seed in 0u64..500) {
        let mut rng = mc_tensor::rng::seeded(seed);
        let mut m = mc_tensor::rng::uniform_matrix(rows, cols, 3.0, &mut rng);
        m.normalize_rows();
        for r in 0..rows {
            let n = vector::norm(m.row(r));
            prop_assert!(n < 1e-3 || (n - 1.0).abs() < 1e-3);
        }
    }
}

#[test]
fn pairwise_cosine_against_batch_cosine() {
    let mut rng = mc_tensor::rng::seeded(99);
    let mut queries = mc_tensor::rng::uniform_matrix(5, 12, 1.0, &mut rng);
    let mut keys = mc_tensor::rng::uniform_matrix(7, 12, 1.0, &mut rng);
    queries.normalize_rows();
    keys.normalize_rows();
    let pair = ops::pairwise_cosine(&queries, &keys).unwrap();
    for q in 0..5 {
        let scores = ops::batch_cosine_normalized(queries.row(q), &keys).unwrap();
        for (k, &score) in scores.iter().enumerate() {
            assert!((pair.get(q, k) - score).abs() < 1e-4);
        }
    }
}

#[test]
fn covariance_matches_reference_on_fixed_matrix() {
    let data = Matrix::from_rows(&[
        vec![2.0, 0.0, 1.0],
        vec![4.0, 2.0, 1.0],
        vec![6.0, 4.0, 1.0],
    ])
    .unwrap();
    let cov = mc_tensor::stats::covariance(&data).unwrap();
    // Column 0 variance = 4, col1 variance = 4, cov(0,1) = 4, col2 constant.
    assert!((cov.get(0, 0) - 4.0).abs() < 1e-4);
    assert!((cov.get(1, 1) - 4.0).abs() < 1e-4);
    assert!((cov.get(0, 1) - 4.0).abs() < 1e-4);
    assert!(cov.get(2, 2).abs() < 1e-5);
}
