//! Offline stand-in for the `serde` crate.
//!
//! Real serde is a zero-copy serialisation *framework*; this shim collapses
//! it to the subset the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on non-generic structs/enums, round-tripped through an owned JSON-like
//! [`Value`] tree which `serde_json` prints and parses. The derive macros are
//! re-exported from `serde_derive`, so `use serde::{Serialize, Deserialize}`
//! imports the trait and the macro under one name, exactly like serde with
//! the `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-like data model all (de)serialisation passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for ids and counters).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object; lookups are linear, which is fine for the
    /// small structs this workspace serialises.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field lookup in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised by deserialisation (and by `serde_json` parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", got.type_name()))
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(unexpected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range for i64")))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

/// Map keys serialisable as JSON object keys (strings).
pub trait MapKey: Sized + Ord {
    fn to_key_string(&self) -> String;
    fn from_key_string(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn from_key_string(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
            fn from_key_string(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error(format!("invalid map key `{key}`")))
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort keys so serialisation is deterministic run-to-run.
        let mut fields: Vec<(&K, &V)> = self.iter().collect();
        fields.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_key_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let fields = value.as_object().ok_or_else(|| unexpected("map", value))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key_string(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let fields = value.as_object().ok_or_else(|| unexpected("map", value))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key_string(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let items = value
                    .as_array()
                    .ok_or_else(|| unexpected("tuple array", value))?;
                if items.len() != ARITY {
                    return Err(Error(format!(
                        "expected tuple of {ARITY} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize_value(&7u64.serialize_value()).unwrap(), 7);
        assert_eq!(
            i64::deserialize_value(&(-3i64).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            f32::deserialize_value(&1.25f32.serialize_value()).unwrap(),
            1.25
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::deserialize_value(&s.serialize_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(
            Vec::<f32>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
        let opt: Option<u64> = None;
        assert_eq!(
            Option::<u64>::deserialize_value(&opt.serialize_value()).unwrap(),
            None
        );
        let pair = (3u64, "x".to_string());
        assert_eq!(
            <(u64, String)>::deserialize_value(&pair.serialize_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::deserialize_value(&Value::Str("x".into())).is_err());
        assert!(u8::deserialize_value(&Value::UInt(300)).is_err());
        assert!(bool::deserialize_value(&Value::Null).is_err());
        let err = String::deserialize_value(&Value::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("string"));
    }
}
