//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the disk log uses: [`BytesMut`] as a growable write
//! buffer with little-endian `put_*` accessors, [`Bytes`] as a cheaply
//! advance-able read view with `get_*`/`split_to`, and the [`Buf`]/[`BufMut`]
//! traits those accessors live on. Unlike the real crate, `Bytes` owns its
//! storage (no refcounted slabs) — `split_to` copies, which is fine at the
//! record sizes the cache log writes.

use std::ops::Deref;

/// Read-side accessors over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write-side accessors over a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// Owned, advance-able read view of bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    offset: usize,
}

impl Bytes {
    /// Splits off and returns the first `n` unread bytes, advancing `self`
    /// past them.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let front = self.data[self.offset..self.offset + n].to_vec();
        self.offset += n;
        Bytes {
            data: front,
            offset: 0,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, offset: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.offset..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance out of bounds");
        self.offset += n;
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.25);
        buf.put_slice(b"tail");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 3);
        assert_eq!(bytes.get_f32_le(), -1.25);
        assert_eq!(&bytes[..], b"tail");
        assert_eq!(bytes.remaining(), 4);
    }

    #[test]
    fn split_to_and_advance_track_the_cursor() {
        let mut bytes = Bytes::from(vec![1, 2, 3, 4, 5, 6]);
        let head = bytes.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(bytes.remaining(), 4);
        bytes.advance(1);
        assert_eq!(&bytes[..], &[4, 5, 6]);
        assert_eq!(bytes.to_vec(), vec![4, 5, 6]);
    }

    #[test]
    fn slice_buf_impl_reads_without_consuming_the_owner() {
        let backing = [0x2A, 0, 0, 0, 9];
        let value = (&backing[..4]).get_u32_le();
        assert_eq!(value, 42);
        assert_eq!(backing.len(), 5);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut bytes = Bytes::from(vec![1]);
        let _ = bytes.split_to(2);
    }
}
