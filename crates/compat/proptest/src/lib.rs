//! Offline stand-in for `proptest`.
//!
//! Supports the property-test subset this workspace writes: the `proptest!`
//! macro with `#![proptest_config(..)]`, range strategies over numeric
//! primitives, `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//! Inputs are generated from a deterministic per-test seed (derived from the
//! test's name), so failures reproduce run-to-run. There is **no shrinking**:
//! a failing case reports the case index so it can be replayed under a
//! debugger, which is a deliberate simplification over the real crate.

use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Builds the generator for one (test, case) pair. Seeds depend only on
    /// the test's name and the case index, so runs are reproducible.
    pub fn from_case(case: u64, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Gen {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (gen.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (gen.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident => $f:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$f.generate(gen),)*)
            }
        }
    };
}

impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The `prop::` namespace re-created for `use proptest::prelude::*` callers.
pub mod prop {
    pub mod bool {
        use crate::{Gen, Strategy};

        /// Strategy producing both booleans with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The `prop::bool::ANY` strategy from the real crate.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, gen: &mut Gen) -> bool {
                gen.next_u64() & 1 == 1
            }
        }
    }

    pub mod collection {
        use crate::{Gen, Strategy};
        use std::ops::Range;

        /// Strategy producing `Vec`s with length drawn from `len` and
        /// elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let n = self.len.generate(gen);
                (0..n).map(|_| self.element.generate(gen)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                for case in 0..u64::from(config.cases) {
                    let mut generator = $crate::Gen::from_case(case, stringify!($name));
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut generator);)*
                    // The closure gives every case its own scope; a panic
                    // inside carries the case index via the wrapping message.
                    let mut run = move || $body;
                    let _ = &mut run;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_floats_stay_in_range(x in -3.0f32..3.0) {
            prop_assert!((-3.0..3.0).contains(&x));
        }

        #[test]
        fn generated_vecs_respect_length(v in prop::collection::vec(0u64..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0.0f32..1.0, 1..4)) {
            v.push(0.5);
            prop_assert_eq!(v.last().copied(), Some(0.5));
        }

        #[test]
        fn tuple_strategies_compose(ops in prop::collection::vec((0usize..3, prop::bool::ANY, 0u8..8), 1..20)) {
            prop_assert!(!ops.is_empty());
            prop_assert!(ops.iter().all(|&(t, _, k)| t < 3 && k < 8));
        }
    }

    mod without_header {
        proptest! {
            #[test]
            fn default_config_applies(x in 0usize..5) {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn seeds_are_deterministic_per_test_name() {
        let mut a = crate::Gen::from_case(3, "some_test");
        let mut b = crate::Gen::from_case(3, "some_test");
        let mut c = crate::Gen::from_case(3, "other_test");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
