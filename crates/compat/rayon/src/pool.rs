//! Persistent worker pool: fixed OS threads pulling boxed jobs off a shared
//! `std::sync::mpsc` queue.
//!
//! Two consumers share this type:
//!
//! * The rayon shim's parallel iterators dispatch their blocks to the
//!   process-wide [`global_pool`] (one pool of `available_parallelism`
//!   threads, started on first use) instead of spawning fresh threads per
//!   call — a parallel call now costs a queue push and a wakeup rather than
//!   thread creation × core count.
//! * The `mc-serve` serving subsystem instantiates its own pools for
//!   connection handling, where the bounded thread count doubles as the
//!   connection-admission limit.
//!
//! ## Scoped execution without deadlocks
//!
//! [`WorkerPool::scope_run`] runs `n` borrowed closure invocations to
//! completion before returning — the primitive the shim's `par_iter` family
//! is built on. Fixed pools that *wait* for their own sub-tasks can deadlock
//! under nesting (every worker blocked waiting on tasks that no free worker
//! can run), so scope tasks here are **claim-based**: the task holds an
//! atomic cursor over `0..n`, worker threads and the *calling thread itself*
//! race to claim indices, and the caller keeps claiming until the cursor is
//! exhausted. The caller therefore always makes progress on its own work —
//! with zero free workers the scope simply degenerates to a sequential loop
//! on the calling thread, never a deadlock.
//!
//! ## Shutdown
//!
//! [`WorkerPool::shutdown`] is graceful: the job sender is dropped, workers
//! drain every job already queued (std mpsc delivers buffered messages after
//! the sender hangs up), then exit and are joined. The global pool is never
//! shut down — it lives for the process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A unit of work queued on a pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size persistent thread pool with an mpsc job queue.
#[derive(Debug)]
pub struct WorkerPool {
    /// `Some` while the pool accepts jobs; dropped by [`WorkerPool::shutdown`].
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    /// Worker join handles, taken by [`WorkerPool::shutdown`].
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkerPool {
    /// Starts a pool of `threads` workers (clamped to at least one). The
    /// `name` seeds worker thread names for debuggability.
    pub fn new(name: &str, threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("worker pool thread spawn failed")
            })
            .collect();
        Self {
            sender: Mutex::new(Some(sender)),
            handles: Mutex::new(handles),
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues a job. Panics if the pool has been shut down (callers own
    /// their pool's lifecycle, so spawning after shutdown is a bug).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let guard = self.sender.lock().expect("pool sender lock poisoned");
        guard
            .as_ref()
            .expect("spawn on a shut-down WorkerPool")
            .send(Box::new(job))
            .expect("worker pool queue disconnected");
    }

    /// Graceful shutdown: stops accepting jobs, lets workers drain the queue,
    /// and joins them. Idempotent; safe to call through a shared reference.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the queue once workers drain it.
        drop(
            self.sender
                .lock()
                .expect("pool sender lock poisoned")
                .take(),
        );
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("pool handles lock poisoned"));
        for handle in handles {
            handle.join().expect("worker pool thread panicked");
        }
    }

    /// Runs `run_block(0) .. run_block(n - 1)` to completion, using idle pool
    /// workers as helpers, and returns only when every invocation has
    /// finished. Panics (after all blocks finish or unwind) if any block
    /// panicked. See the module docs for the no-deadlock claim protocol.
    pub fn scope_run<F>(&self, n: usize, run_block: &F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let task = ScopeTask::new(n, run_block);
        if n == 1 {
            task.work();
            task.wait();
            return;
        }
        let task = Arc::new(task);
        // One helper per worker, capped at n - 1 (the caller claims too).
        // Helpers that arrive after the cursor is exhausted claim nothing
        // and return immediately.
        for _ in 0..self.threads.min(n - 1) {
            let task = Arc::clone(&task);
            self.spawn(move || task.work());
        }
        task.work();
        task.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Best-effort graceful drain for pools dropped without an explicit
        // shutdown (the global pool is static and never dropped).
        if self.sender.lock().map(|s| s.is_some()).unwrap_or(false) {
            self.shutdown();
        }
    }
}

fn worker_loop(receiver: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver.lock().expect("pool receiver lock poisoned");
            guard.recv()
        };
        match job {
            // A panicking job must not take the worker down with it: scope
            // tasks already catch their own panics (and re-raise them on the
            // calling thread); a stray panic from a plain `spawn` job is
            // reported and the worker keeps serving.
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    eprintln!("worker pool job panicked (worker kept alive)");
                }
            }
            Err(mpsc::RecvError) => break,
        }
    }
}

/// Completion state of a [`ScopeTask`], guarded by its mutex.
#[derive(Debug)]
struct ScopeState {
    finished: usize,
    panicked: bool,
}

/// A scoped fan-out: `n` invocations of a borrowed closure, claimed
/// index-by-index by whichever threads participate.
struct ScopeTask {
    /// Type-erased pointer to the caller's `F` closure.
    data: *const (),
    /// Monomorphised trampoline that restores `data` to `&F` and calls it.
    invoke: unsafe fn(*const (), usize),
    n: usize,
    /// Next unclaimed index; claims race via `fetch_add`.
    cursor: AtomicUsize,
    state: Mutex<ScopeState>,
    all_finished: Condvar,
}

// SAFETY: `data` points at an `F: Fn(usize) + Sync` owned by the thread
// inside `scope_run`, which does not return before `state.finished == n`
// (see `wait`). Every dereference of `data` happens inside a claimed block,
// and a block can only be claimed while `finished < n`, so the pointee is
// live for every dereference. `F: Sync` makes the shared calls themselves
// sound. Stale helper jobs that arrive after completion fail their claim
// (`cursor >= n`) and never touch `data`.
unsafe impl Send for ScopeTask {}
unsafe impl Sync for ScopeTask {}

impl ScopeTask {
    fn new<F: Fn(usize) + Sync>(n: usize, f: &F) -> Self {
        unsafe fn invoke<F: Fn(usize) + Sync>(data: *const (), block: usize) {
            // SAFETY: guaranteed live and `Sync` by the ScopeTask protocol
            // (see the impl-level SAFETY comment).
            let f = unsafe { &*data.cast::<F>() };
            f(block);
        }
        Self {
            data: std::ptr::from_ref(f).cast(),
            invoke: invoke::<F>,
            n,
            cursor: AtomicUsize::new(0),
            state: Mutex::new(ScopeState {
                finished: 0,
                panicked: false,
            }),
            all_finished: Condvar::new(),
        }
    }

    /// Claims and runs blocks until the cursor is exhausted. Called by the
    /// scope's owner thread and by pool helpers alike.
    fn work(&self) {
        loop {
            let block = self.cursor.fetch_add(1, Ordering::Relaxed);
            if block >= self.n {
                break;
            }
            // SAFETY: a successful claim implies `finished < n`, so the
            // caller of `scope_run` is still parked in `wait` and the
            // closure behind `data` is live (impl-level SAFETY comment).
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                (self.invoke)(self.data, block)
            }));
            let mut state = self.state.lock().expect("scope state lock poisoned");
            state.finished += 1;
            if outcome.is_err() {
                state.panicked = true;
            }
            if state.finished == self.n {
                self.all_finished.notify_all();
            }
        }
    }

    /// Blocks until all `n` blocks finished; re-raises any block panic.
    fn wait(&self) {
        let mut state = self.state.lock().expect("scope state lock poisoned");
        while state.finished < self.n {
            state = self
                .all_finished
                .wait(state)
                .expect("scope state lock poisoned");
        }
        if state.panicked {
            drop(state);
            panic!("rayon shim worker panicked");
        }
    }
}

/// The process-wide pool behind the shim's parallel iterators: one worker
/// per available core, started on first parallel call, never shut down.
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new("rayon-shim", cores)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawned_jobs_all_run_and_shutdown_drains() {
        let pool = WorkerPool::new("t-spawn", 2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Graceful shutdown must run every queued job before joining.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_run_covers_every_block_exactly_once() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new("t-scope", threads);
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            pool.scope_run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "every block runs exactly once with {threads} workers"
            );
            pool.shutdown();
        }
    }

    #[test]
    fn nested_scopes_complete_without_deadlock() {
        // Outer blocks each start an inner scope on the same single-worker
        // pool: with wait-based scheduling this deadlocks; with claim-based
        // scheduling the callers do the inner work themselves.
        let pool = WorkerPool::new("t-nested", 1);
        let total = AtomicU64::new(0);
        pool.scope_run(4, &|_| {
            pool.scope_run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
        pool.shutdown();
    }

    #[test]
    fn scope_run_propagates_panics_after_completion() {
        let pool = WorkerPool::new("t-panic", 2);
        let ran = Arc::new(AtomicU64::new(0));
        let ran_in = Arc::clone(&ran);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_run(8, &|i| {
                ran_in.fetch_add(1, Ordering::Relaxed);
                assert!(i != 3, "block 3 panics on purpose");
            });
        }));
        assert!(result.is_err(), "the panic must reach the caller");
        // All 8 blocks were still claimed and accounted for (no hang, no
        // abandoned work).
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        // The pool survives a panicking scope.
        let after = Arc::new(AtomicU64::new(0));
        let after_in = Arc::clone(&after);
        pool.scope_run(4, &|_| {
            after_in.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
        pool.shutdown();
    }

    #[test]
    fn global_pool_matches_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(global_pool().threads(), cores);
        // And it is usable.
        let n = AtomicU64::new(0);
        global_pool().scope_run(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let pool = WorkerPool::new("t-zero", 0);
        assert_eq!(pool.threads(), 1);
        pool.shutdown();
    }
}
