//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-parallelism subset this workspace uses — `par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, with `map`, `enumerate`,
//! `for_each` and `collect` — on top of `std::thread::scope`. Work is split
//! into one contiguous block per available core; results are concatenated in
//! source order, so `collect` observes exactly the sequential ordering. Small
//! inputs (fewer items than `MIN_ITEMS_PER_THREAD`) run sequentially to
//! avoid spawn overhead.
//!
//! Like real rayon, work executes on a **persistent global worker pool**
//! ([`pool::global_pool`]: one worker per available core, started on first
//! use) — a parallel call costs a queue push and a pool wakeup, not thread
//! creation × core count. The pool type itself ([`pool::WorkerPool`]) is
//! public because the `mc-serve` serving subsystem reuses it for connection
//! handling; see [`pool`] for the claim-based scoped-execution protocol that
//! keeps nested parallel calls deadlock-free on a fixed pool.

use std::sync::Mutex;

pub mod pool;

pub use pool::{global_pool, WorkerPool};

/// Below this many items per would-be thread the shim runs sequentially.
const MIN_ITEMS_PER_THREAD: usize = 2;

fn num_threads() -> usize {
    pool::global_pool().threads()
}

/// The number of worker threads a parallel call will use at most — the
/// global pool's size (one worker per core available at first use), matching
/// what real rayon reports here. Harnesses use this to annotate measurements
/// with the parallelism actually available.
pub fn current_num_threads() -> usize {
    num_threads()
}

/// A pre-split mutable block waiting to be claimed by one scope worker,
/// stored next to the results it produces (see [`MapIterMut::collect`]).
type MutBlockSlot<'a, T, R> = Mutex<(Option<&'a mut [T]>, Vec<R>)>;

/// A pre-split mutable run of chunks (tagged with its first chunk index)
/// waiting to be claimed by one scope worker (see
/// [`EnumerateChunksMut::for_each`]).
type ChunkBlockSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// How many worker blocks to use for `len` items.
fn blocks_for(len: usize) -> usize {
    if len < 2 * MIN_ITEMS_PER_THREAD {
        return 1;
    }
    num_threads().min(len / MIN_ITEMS_PER_THREAD).max(1)
}

pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// `slice.par_chunks(n)` — parallel iterator over contiguous chunks.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// `slice.par_chunks_mut(n)` — parallel iterator over mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// `collection.par_iter()` — parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `collection.par_iter_mut()` — parallel iterator over `&mut T`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapIter<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        MapIter {
            slice: self.slice,
            f,
        }
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapIterMut<'a, T, F>
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
    {
        MapIterMut {
            slice: self.slice,
            f,
        }
    }
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapChunks<'a, T, F>
    where
        F: Fn(&'a [T]) -> R + Sync,
        R: Send,
    {
        MapChunks {
            slice: self.slice,
            chunk_size: self.chunk_size,
            f,
        }
    }

    pub fn enumerate(self) -> EnumerateChunks<'a, T> {
        EnumerateChunks {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(move |(_, chunk)| f(chunk));
    }
}

pub struct MapIter<'a, T, F> {
    slice: &'a [T],
    f: F,
}

pub struct MapIterMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

pub struct MapChunks<'a, T, F> {
    slice: &'a [T],
    chunk_size: usize,
    f: F,
}

pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

pub struct EnumerateChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

pub struct MapEnumerateChunks<'a, T, F> {
    slice: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T: Sync> EnumerateChunks<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapEnumerateChunks<'a, T, F>
    where
        F: Fn((usize, &'a [T])) -> R + Sync,
        R: Send,
    {
        MapEnumerateChunks {
            slice: self.slice,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

impl<'a, T, R, F> MapEnumerateChunks<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a [T])) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n_chunks = self.slice.len().div_ceil(self.chunk_size.max(1));
        let produced = join_blocks(n_chunks, blocks_for(n_chunks), |start, end| {
            (start..end)
                .map(|c| {
                    let lo = c * self.chunk_size;
                    let hi = (lo + self.chunk_size).min(self.slice.len());
                    (self.f)((c, &self.slice[lo..hi]))
                })
                .collect()
        });
        produced.into_iter().collect()
    }
}

/// Runs `produce(start, end)` for each of `blocks` contiguous sub-ranges of
/// `0..len` on the global worker pool and concatenates the results in range
/// order. Each block writes into its own pre-allocated slot (the per-slot
/// mutexes are uncontended — exactly one claimant ever touches a slot), so
/// source ordering survives however the pool schedules the blocks.
fn join_blocks<R, F>(len: usize, blocks: usize, produce: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> Vec<R> + Sync,
{
    if blocks <= 1 || len == 0 {
        return produce(0, len);
    }
    let per_block = len.div_ceil(blocks);
    let n_blocks = len.div_ceil(per_block);
    let slots: Vec<Mutex<Vec<R>>> = (0..n_blocks).map(|_| Mutex::new(Vec::new())).collect();
    pool::global_pool().scope_run(n_blocks, &|b| {
        let start = b * per_block;
        let end = ((b + 1) * per_block).min(len);
        *slots[b].lock().expect("join block slot poisoned") = produce(start, end);
    });
    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("join block slot poisoned"))
        .collect()
}

impl<'a, T, R, F> MapIter<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let len = self.slice.len();
        let produced = join_blocks(len, blocks_for(len), |start, end| {
            self.slice[start..end].iter().map(&self.f).collect()
        });
        produced.into_iter().collect()
    }
}

impl<'a, T, R, F> MapIterMut<'a, T, F>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let len = self.slice.len();
        let blocks = blocks_for(len);
        if blocks <= 1 {
            let f = &self.f;
            return self.slice.iter_mut().map(f).collect();
        }
        // Pre-split into disjoint mutable blocks, each parked in its own
        // slot next to space for its results. Every slot is claimed by
        // exactly one scope block (`take()` moves the `&mut` chunk out), so
        // the mutexes are uncontended and ordering is positional.
        let per_block = len.div_ceil(blocks);
        let f = &self.f;
        let slots: Vec<MutBlockSlot<'_, T, R>> = self
            .slice
            .chunks_mut(per_block)
            .map(|chunk| Mutex::new((Some(chunk), Vec::new())))
            .collect();
        pool::global_pool().scope_run(slots.len(), &|b| {
            let mut slot = slots[b].lock().expect("mut block slot poisoned");
            let chunk = slot.0.take().expect("each block is claimed once");
            slot.1 = chunk.iter_mut().map(f).collect();
        });
        slots
            .into_iter()
            .flat_map(|slot| slot.into_inner().expect("mut block slot poisoned").1)
            .collect()
    }
}

impl<'a, T, R, F> MapChunks<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n_chunks = self.slice.len().div_ceil(self.chunk_size.max(1));
        let produced = join_blocks(n_chunks, blocks_for(n_chunks), |start, end| {
            (start..end)
                .map(|c| {
                    let lo = c * self.chunk_size;
                    let hi = (lo + self.chunk_size).min(self.slice.len());
                    (self.f)(&self.slice[lo..hi])
                })
                .collect()
        });
        produced.into_iter().collect()
    }
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.chunk_size;
        let n_chunks = self.slice.len().div_ceil(chunk_size.max(1));
        let blocks = blocks_for(n_chunks);
        if blocks <= 1 {
            for (i, chunk) in self.slice.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        let chunks_per_block = n_chunks.div_ceil(blocks);
        // Pre-split into per-block slices (whole multiples of `chunk_size`
        // items, so chunk boundaries stay aligned with the sequential
        // layout) and fan them out on the global pool.
        let slots: Vec<ChunkBlockSlot<'_, T>> = self
            .slice
            .chunks_mut(chunks_per_block * chunk_size)
            .enumerate()
            .map(|(b, part)| Mutex::new(Some((b * chunks_per_block, part))))
            .collect();
        pool::global_pool().scope_run(slots.len(), &|b| {
            let (base, part) = slots[b]
                .lock()
                .expect("chunk block slot poisoned")
                .take()
                .expect("each block is claimed once");
            for (i, chunk) in part.chunks_mut(chunk_size).enumerate() {
                f((base + i, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let sums: Vec<f32> = data.par_chunks(10).map(|c| c.iter().sum::<f32>()).collect();
        let expect: Vec<f32> = data.chunks(10).map(|c| c.iter().sum::<f32>()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn par_iter_map_collect_matches_sequential() {
        let data: Vec<u64> = (0..5000).collect();
        let out: Vec<u64> = data.par_iter().map(|x| x * 3 + 1).collect();
        let expect: Vec<u64> = data.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_mut_map_collect_mutates_and_orders() {
        let mut data: Vec<u64> = (0..999).collect();
        let out: Vec<u64> = data
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(out, (1..1000).collect::<Vec<u64>>());
        assert_eq!(data, (1..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn par_chunks_enumerate_map_collect_preserves_indices() {
        let data: Vec<f32> = (0..501).map(|i| i as f32).collect();
        let out: Vec<(usize, f32)> = data
            .par_chunks(7)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum::<f32>()))
            .collect();
        let expect: Vec<(usize, f32)> = data
            .chunks(7)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum::<f32>()))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each_writes_disjoint_chunks() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i));
        for (i, chunk) in data.chunks(10).enumerate() {
            assert!(chunk.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn current_num_threads_reports_at_least_one() {
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn tiny_inputs_run_sequentially() {
        let data = [1.0f32];
        let out: Vec<f32> = data.par_chunks(1).map(|c| c[0] * 2.0).collect();
        assert_eq!(out, vec![2.0]);
        let empty: Vec<f32> = Vec::new();
        let out: Vec<f32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
