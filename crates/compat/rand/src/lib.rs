//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::random_range` over integer and float ranges — the subset this
//! workspace uses. The generator is SplitMix64: statistically fine for
//! simulations and workload synthesis, deterministic for a given seed, and
//! obviously not cryptographic (neither is the use here).

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling interface (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// Samples from the "standard" distribution of `T` (uniform `[0, 1)` for
    /// floats, full-range uniform for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

/// Types with a standard distribution for [`Rng::random`].
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// SplitMix64 generator behind the `StdRng` name.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: u8 = rng.random_range(0..2u8);
            assert!(z < 2);
        }
    }

    #[test]
    fn float_ranges_respect_bounds_and_vary() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let x: f32 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            seen_low |= x < -0.5;
            seen_high |= x > 0.5;
        }
        assert!(seen_low && seen_high, "samples must cover the range");
    }

    #[test]
    fn random_bool_is_biased_by_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| rng.random_bool(0.9)).count();
        assert!(hits > 800);
    }
}
