//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`] and [`LogNormal`] distributions (Box–Muller sampling), which is
//! all the workspace's latency model uses.

use rand::RngCore;

/// Types that can sample values from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid distribution parameter (sigma must be finite and >= 0)"
        )
    }
}

impl std::error::Error for NormalError {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u1 is nudged away from zero so ln() stays finite.
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// # Errors
    /// Returns [`NormalError`] when `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        if sigma < 0.0 || !sigma.is_finite() || !mu.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// # Errors
    /// Returns [`NormalError`] when `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Normal::new(mu, sigma).map(|norm| Self { norm })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn invalid_sigma_is_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, 0.25).is_ok());
    }

    #[test]
    fn normal_samples_center_on_mu() {
        let dist = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let dist = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // E[LogNormal(0, 0.5)] = exp(0.125) ≈ 1.133.
        assert!((mean - 1.133).abs() < 0.1, "mean was {mean}");
    }
}
