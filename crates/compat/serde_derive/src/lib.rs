//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros for the
//! `serde` shim's `Serialize`/`Deserialize` traits. Supports the shapes this
//! workspace actually derives: non-generic named-field structs, unit structs,
//! and enums with unit / newtype / tuple / struct variants, plus the
//! `#[serde(default)]` field attribute (a missing field deserialises via
//! `Default::default()` — how configs stay loadable when new fields are
//! added). Anything else (generics, tuple structs, other `#[serde(...)]`
//! attributes) is rejected with a compile error rather than silently
//! mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing field deserialises via
    /// `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, shape } => serialize_struct(name, shape),
        Input::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = input_name(&parsed);
    wrap_impl(&format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    ))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, shape } => deserialize_struct(name, shape),
        Input::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = input_name(&parsed);
    wrap_impl(&format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    ))
}

fn input_name(input: &Input) -> &str {
    match input {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    }
}

fn wrap_impl(code: &str) -> TokenStream {
    let guarded = format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n{code}"
    );
    guarded
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde_derive shim: tuple struct `{name}` is not supported")
                }
                _ => Shape::Unit,
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let group = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                _ => panic!("serde_derive shim: malformed enum `{name}`"),
            };
            Input::Enum {
                name,
                variants: parse_variants(group.stream()),
            }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// `true` when the attribute group (the `[...]` after `#`) is exactly
/// `serde(default)`.
fn is_serde_default_attr(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(inner.as_slice(),
                [TokenTree::Ident(arg)] if arg.to_string() == "default")
        }
        _ => false,
    }
}

/// Advances past outer attributes and a visibility qualifier like
/// [`skip_attrs_and_vis`], additionally reporting whether a
/// `#[serde(default)]` attribute was among them.
fn skip_attrs_and_vis_noting_default(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) {
                    has_default |= is_serde_default_attr(group);
                }
                *pos += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `pub(crate)` etc.
                }
            }
            _ => return has_default,
        }
    }
}

/// Extracts fields (name + `#[serde(default)]` flag) from the token stream
/// of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs_and_vis_noting_default(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            break;
        };
        let name = id.to_string();
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(token) = tokens.get(pos) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (i, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if i + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|field| {
            let f = &field.name;
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn deserialize_named_fields(type_display: &str, fields: &[Field]) -> String {
    fields
        .iter()
        .map(|field| {
            let f = &field.name;
            let on_missing = if field.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::custom(\n\
                         \"missing field `{f}` in {type_display}\"))"
                )
            };
            format!(
                "{f}: match value.get(\"{f}\") {{\n\
                     Some(field_value) => ::serde::Deserialize::deserialize_value(field_value)?,\n\
                     None => {on_missing},\n\
                 }},"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn serialize_struct(_name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Object(::std::vec![])".to_string(),
        Shape::Named(fields) => serialize_named_fields(fields, "self."),
        Shape::Tuple(_) => unreachable!("tuple structs rejected at parse time"),
    }
}

fn deserialize_struct(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "if value.as_object().is_some() {{\n\
                 ::std::result::Result::Ok({name})\n\
             }} else {{\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\"))\n\
             }}"
        ),
        Shape::Named(fields) => format!(
            "if value.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"expected object for {name}\"));\n\
             }}\n\
             ::std::result::Result::Ok({name} {{\n{}\n}})",
            deserialize_named_fields(name, fields)
        ),
        Shape::Tuple(_) => unreachable!("tuple structs rejected at parse time"),
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                ),
                Shape::Tuple(1) => format!(
                    "{name}::{vname}(field_0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::serialize_value(field_0))]),"
                ),
                Shape::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("field_{i}")).collect();
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Array(::std::vec![{items}]))]),",
                        binds = binders.join(", "),
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inner = serialize_named_fields(fields, "");
                    let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),",
                        binds = binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Tuple(1) => format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),"
                ),
                Shape::Tuple(n) => {
                    let extracts: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                             if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong arity for {name}::{vname}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({extracts}))\n\
                         }}",
                        extracts = extracts.join(", ")
                    )
                }
                Shape::Named(fields) => format!(
                    "\"{vname}\" => {{\n\
                         let value = inner;\n\
                         if value.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected object for {name}::{vname}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{fields}\n}})\n\
                     }}",
                    fields = deserialize_named_fields(&format!("{name}::{vname}"), fields)
                ),
                Shape::Unit => unreachable!("unit variants handled above"),
            }
        })
        .collect();
    format!(
        "match value {{\n\
             ::serde::Value::Str(variant_name) => match variant_name.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (variant_name, inner) = &fields[0];\n\
                 match variant_name.as_str() {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                         \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => ::std::result::Result::Err(::serde::Error::custom(\n\
                 \"expected string or single-key object for {name}\")),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}
