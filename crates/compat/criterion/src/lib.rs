//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/entry-point API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`) so the `benches/` targets compile and
//! run without the real crate. Measurement is simple wall-clock timing:
//! a warm-up, then `sample_size` samples of an adaptively-chosen iteration
//! count, reporting min/median/mean per benchmark to stdout. No statistics
//! engine, no HTML reports — numbers for eyeballing relative cost only.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, &mut f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and size the per-sample iteration count so one sample
        // takes ~2ms, bounding total time while keeping timer noise small.
        let warmup_start = Instant::now();
        black_box(f());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let total = start.elapsed();
            self.samples.push(total / iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "bench {label:<48} min {:>12?}  median {:>12?}  mean {:>12?}",
        min, median, mean
    );
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("constant", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
    }
}
