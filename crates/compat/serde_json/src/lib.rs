//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the `serde` shim's [`Value`] tree as standard JSON.
//! Supports exactly what the workspace uses: [`to_string`] and [`from_str`].
//! Numbers keep their integer/float distinction (`1` vs `1.0`), strings are
//! escaped per RFC 8259, and parsing rejects trailing garbage.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Returns [`Error`] when the value contains a non-finite float (JSON cannot
/// represent NaN/infinity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out)?;
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value)
}

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialise non-finite float".into()));
            }
            // `{:?}` keeps a decimal point / exponent so the value parses
            // back as a float (Rust float formatting round-trips exactly).
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(Error("bad surrogate pair".into()));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error("bad surrogate pair".into()));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape; leaves `pos` on the last hex
    /// digit (the caller advances past it).
    fn parse_hex4(&mut self) -> Result<u32> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn whole_floats_keep_their_floatness() {
        let json = to_string(&2.0f32).unwrap();
        assert_eq!(json, "2.0");
        assert_eq!(from_str::<f32>(&json).unwrap(), 2.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ émoji 🦀".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let v = vec![0.25f32, -1.5, 3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[0.25,-1.5,3.0]");
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), v);
        let none: Option<u64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("9").unwrap(), Some(9));
    }

    #[test]
    fn float_precision_survives_round_trip() {
        for &x in &[f32::MAX, f32::MIN_POSITIVE, 0.1, 1.0 / 3.0, -2.5e-8] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x, "json was {json}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let json = r#" { "a" : [1, 2.5, null], "b": {"c": "d"} } "#;
        let value: serde::Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("d")
        );
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
    }
}
