//! Combinatorial topic bank: canonical queries with paraphrase variants.
//!
//! A *topic* is one user intent (e.g. "sort a list of numbers in python").
//! Every topic carries several paraphrases produced by (a) different surface
//! templates and (b) synonym substitution in the content words, so two
//! variants of the same topic share meaning but not necessarily wording —
//! exactly the situation keyword caches fail on and semantic caches must
//! handle (Section I's "battery life" example).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic user intent and its paraphrase variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topic {
    /// Stable identifier (index into the bank).
    pub id: usize,
    /// Domain label (programming, devices, cooking, ...).
    pub domain: String,
    /// Sibling-group identifier: topics in the same group share their domain
    /// and subject slot (e.g. all the "… a list of numbers in python"
    /// intents) and are therefore lexical near-neighbours of each other.
    /// Workload generators split cached vs held-out topics at group
    /// granularity so a "novel" probe is a genuinely new subject, not a
    /// one-word variation of something already cached.
    pub group: usize,
    /// Paraphrase variants; `variants[0]` is the canonical phrasing. All
    /// variants are distinct strings describing the same intent.
    pub variants: Vec<String>,
}

impl Topic {
    /// The canonical phrasing of the topic.
    pub fn canonical(&self) -> &str {
        &self.variants[0]
    }

    /// A paraphrase different from `avoid` (wrapping around the variant list).
    pub fn paraphrase(&self, index: usize) -> &str {
        &self.variants[index % self.variants.len()]
    }

    /// Number of distinct variants.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }
}

/// A deterministic collection of topics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicBank {
    topics: Vec<Topic>,
}

/// A group of interchangeable phrasings for one slot value; index 0 is the
/// canonical wording.
type Syn = &'static [&'static str];

struct DomainSpec {
    name: &'static str,
    /// Surface templates; `{x}` and `{y}` are replaced by slot values.
    templates: &'static [&'static str],
    /// First slot: synonym groups.
    xs: &'static [Syn],
    /// Second slot: synonym groups.
    ys: &'static [Syn],
}

const PROGRAMMING: DomainSpec = DomainSpec {
    name: "programming",
    templates: &[
        "how do I {x} {y} in python",
        "what is the best way to {x} {y} using python",
        "show me how to {x} {y} with python",
        "python code to {x} {y}",
        "can you help me {x} {y} in a python script",
        "{x} {y} in python - how is it done",
    ],
    xs: &[
        &["sort", "order", "arrange"],
        &["reverse", "invert", "flip"],
        &["parse", "read", "interpret"],
        &["merge", "combine", "join"],
        &["filter", "select", "pick out"],
        &["plot", "draw", "chart"],
        &["serialize", "encode", "convert to json"],
        &[
            "deduplicate",
            "remove duplicates from",
            "drop repeated items in",
        ],
        &["validate", "check", "verify"],
        &["compress", "shrink", "zip"],
    ],
    ys: &[
        &["a list of numbers", "a numeric list", "an array of numbers"],
        &["a csv file", "a comma separated file", "csv data"],
        &["a dictionary", "a dict object", "a key value map"],
        &["a text string", "a string", "some text"],
        &["a dataframe", "a pandas table", "tabular data"],
        &["a line chart", "a line plot", "a simple line graph"],
        &["a json document", "a json payload", "json data"],
        &["a binary tree", "a tree structure", "a tree of nodes"],
        &["a log file", "server logs", "application logs"],
        &["an image file", "a picture", "an image"],
    ],
};

const DEVICES: DomainSpec = DomainSpec {
    name: "devices",
    templates: &[
        "how can I {x} the {y} of my smartphone",
        "tips for {x}ing my phone {y}",
        "ways to {x} {y} on a mobile phone",
        "what should I do to {x} the {y} on my phone",
        "is there a trick to {x} my device {y}",
    ],
    xs: &[
        &["increase", "extend", "improve", "boost"],
        &["reduce", "lower", "cut down"],
        &["monitor", "track", "keep an eye on"],
        &["fix", "repair", "troubleshoot"],
        &["reset", "restore", "reinitialise"],
        &["secure", "protect", "lock down"],
    ],
    ys: &[
        &["battery life", "battery duration", "power source longevity"],
        &["storage space", "disk space", "free space"],
        &["network speed", "wifi speed", "connection speed"],
        &[
            "screen brightness",
            "display brightness",
            "brightness level",
        ],
        &["data usage", "mobile data consumption", "cellular data use"],
        &["camera quality", "photo quality", "picture sharpness"],
        &[
            "notification settings",
            "alert settings",
            "notification preferences",
        ],
        &[
            "privacy settings",
            "privacy controls",
            "data sharing settings",
        ],
    ],
};

const COOKING: DomainSpec = DomainSpec {
    name: "cooking",
    templates: &[
        "how do I {x} {y} at home",
        "what is an easy way to {x} {y}",
        "give me a simple method to {x} {y}",
        "best technique for {x}ing {y}",
        "steps to {x} {y} in my kitchen",
    ],
    xs: &[
        &["bake", "make", "prepare"],
        &["grill", "roast", "cook"],
        &["ferment", "culture", "brew"],
        &["store", "preserve", "keep fresh"],
        &["season", "flavour", "spice"],
    ],
    ys: &[
        &[
            "sourdough bread",
            "a sourdough loaf",
            "bread with a sourdough starter",
        ],
        &[
            "a chocolate cake",
            "a cake with chocolate",
            "a rich chocolate sponge",
        ],
        &[
            "grilled vegetables",
            "roasted veggies",
            "vegetables on the grill",
        ],
        &["fresh pasta", "homemade pasta", "pasta from scratch"],
        &[
            "cold brew coffee",
            "iced coffee concentrate",
            "slow brewed coffee",
        ],
        &[
            "a tomato sauce",
            "a marinara sauce",
            "a basic tomato based sauce",
        ],
        &[
            "pickled cucumbers",
            "homemade pickles",
            "cucumbers in brine",
        ],
        &[
            "a lentil soup",
            "a soup with lentils",
            "a hearty lentil stew",
        ],
    ],
};

const KNOWLEDGE: DomainSpec = DomainSpec {
    name: "knowledge",
    templates: &[
        "what is {x} {y}",
        "explain {x} {y} in simple terms",
        "give me a short explanation of {x} {y}",
        "can you describe {x} {y}",
        "I want to understand {x} {y}",
    ],
    xs: &[
        &["the concept of", "the idea behind", "the meaning of"],
        &["the history of", "the origin of", "the background of"],
        &[
            "the difference between cats and",
            "how cats differ from",
            "the contrast between cats and",
        ],
        &["the purpose of", "the role of", "the function of"],
    ],
    ys: &[
        &[
            "federated learning",
            "training models across devices",
            "collaborative model training",
        ],
        &[
            "quantum computing",
            "computers based on qubits",
            "quantum computers",
        ],
        &[
            "photosynthesis",
            "how plants make energy",
            "plant energy production",
        ],
        &[
            "the french revolution",
            "the revolution in france",
            "france's 1789 revolution",
        ],
        &[
            "black holes",
            "collapsed stars",
            "regions of extreme gravity",
        ],
        &[
            "inflation in economics",
            "rising price levels",
            "monetary inflation",
        ],
        &["dna replication", "copying of dna", "how dna copies itself"],
        &[
            "string theory",
            "theories of vibrating strings",
            "string based physics",
        ],
        &["dogs", "pet dogs", "domestic dogs"],
        &[
            "semantic caching",
            "caches that match meaning",
            "meaning aware caching",
        ],
    ],
};

const TRAVEL: DomainSpec = DomainSpec {
    name: "travel",
    templates: &[
        "what should I know before {x} {y}",
        "tips for {x} {y}",
        "how do I plan {x} {y}",
        "advice on {x} {y}",
        "what is the best season for {x} {y}",
    ],
    xs: &[
        &["visiting", "travelling to", "taking a trip to"],
        &["hiking in", "trekking through", "walking across"],
        &["backpacking around", "touring", "exploring"],
        &[
            "driving through",
            "road tripping across",
            "taking a car journey in",
        ],
    ],
    ys: &[
        &["japan", "the japanese islands", "tokyo and kyoto"],
        &[
            "iceland",
            "the icelandic highlands",
            "reykjavik and the ring road",
        ],
        &[
            "the swiss alps",
            "alpine switzerland",
            "the mountains of switzerland",
        ],
        &[
            "patagonia",
            "southern chile and argentina",
            "the patagonian region",
        ],
        &[
            "morocco",
            "marrakesh and the atlas mountains",
            "the moroccan desert",
        ],
        &["new zealand", "the south island of new zealand", "aotearoa"],
        &["norway", "the norwegian fjords", "western norway"],
    ],
};

const FINANCE: DomainSpec = DomainSpec {
    name: "finance",
    templates: &[
        "how should I {x} {y}",
        "what is a sensible way to {x} {y}",
        "advice for {x}ing {y}",
        "steps to {x} {y} responsibly",
        "explain how to {x} {y}",
    ],
    xs: &[
        &["budget for", "plan spending on", "allocate money for"],
        &["invest in", "put savings into", "build a position in"],
        &["reduce", "cut", "lower"],
        &["track", "monitor", "keep records of"],
    ],
    ys: &[
        &[
            "a home renovation",
            "remodelling a house",
            "a kitchen remodel",
        ],
        &["index funds", "broad market funds", "passive stock funds"],
        &[
            "monthly subscriptions",
            "recurring subscription costs",
            "subscription spending",
        ],
        &["a student loan", "university debt", "tuition debt"],
        &[
            "an emergency fund",
            "a rainy day fund",
            "savings for emergencies",
        ],
        &[
            "retirement savings",
            "a pension pot",
            "long term retirement money",
        ],
        &[
            "credit card debt",
            "outstanding card balances",
            "revolving credit debt",
        ],
    ],
};

const DOMAINS: &[DomainSpec] = &[PROGRAMMING, DEVICES, COOKING, KNOWLEDGE, TRAVEL, FINANCE];

impl TopicBank {
    /// Generates the full topic bank. `seed` controls which synonym/template
    /// combinations each variant uses, not which topics exist (the topic set
    /// itself is the full cross product and is always identical).
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topics = Vec::new();
        let mut group = 0usize;
        for spec in DOMAINS {
            for y in spec.ys {
                for x in spec.xs {
                    let id = topics.len();
                    let variants = build_variants(spec, x, y, &mut rng);
                    topics.push(Topic {
                        id,
                        domain: spec.name.to_string(),
                        group,
                        variants,
                    });
                }
                group += 1;
            }
        }
        Self { topics }
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// `true` when the bank is empty (never the case for [`TopicBank::generate`]).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Borrow a topic by id.
    pub fn topic(&self, id: usize) -> &Topic {
        &self.topics[id]
    }

    /// Borrow all topics.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Number of sibling groups (see [`Topic::group`]).
    pub fn group_count(&self) -> usize {
        self.topics.iter().map(|t| t.group + 1).max().unwrap_or(0)
    }

    /// Topic ids belonging to each sibling group, indexed by group id.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.group_count()];
        for t in &self.topics {
            groups[t.group].push(t.id);
        }
        groups
    }

    /// Every query string in the bank (all variants of all topics) — used to
    /// fit PCA layers and as an embedding corpus.
    pub fn all_queries(&self) -> Vec<String> {
        self.topics
            .iter()
            .flat_map(|t| t.variants.iter().cloned())
            .collect()
    }
}

/// Builds 5 distinct paraphrases for a (domain, x, y) topic.
fn build_variants(spec: &DomainSpec, x: Syn, y: Syn, rng: &mut StdRng) -> Vec<String> {
    let mut variants = Vec::new();
    let mut seen = std::collections::HashSet::new();
    // Canonical: first template, canonical synonyms.
    let canonical = render(spec.templates[0], x[0], y[0]);
    seen.insert(canonical.clone());
    variants.push(canonical);
    let mut attempts = 0;
    while variants.len() < 5 && attempts < 64 {
        attempts += 1;
        let template = spec.templates[rng.random_range(0..spec.templates.len())];
        let xv = x[rng.random_range(0..x.len())];
        let yv = y[rng.random_range(0..y.len())];
        let candidate = render(template, xv, yv);
        if seen.insert(candidate.clone()) {
            variants.push(candidate);
        }
    }
    variants
}

fn render(template: &str, x: &str, y: &str) -> String {
    template.replace("{x}", x).replace("{y}", y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bank_has_hundreds_of_topics_across_domains() {
        let bank = TopicBank::generate(0);
        assert!(bank.len() > 250, "got {}", bank.len());
        let domains: HashSet<&str> = bank.topics().iter().map(|t| t.domain.as_str()).collect();
        assert_eq!(domains.len(), DOMAINS.len());
        assert!(!bank.is_empty());
    }

    #[test]
    fn every_topic_has_multiple_distinct_variants() {
        let bank = TopicBank::generate(1);
        for topic in bank.topics() {
            assert!(
                topic.variant_count() >= 3,
                "topic {} has too few variants: {:?}",
                topic.id,
                topic.variants
            );
            let unique: HashSet<&String> = topic.variants.iter().collect();
            assert_eq!(
                unique.len(),
                topic.variant_count(),
                "variants must be distinct"
            );
        }
    }

    #[test]
    fn canonical_queries_are_unique_across_topics() {
        let bank = TopicBank::generate(2);
        let canon: HashSet<&str> = bank.topics().iter().map(|t| t.canonical()).collect();
        assert_eq!(canon.len(), bank.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = TopicBank::generate(7);
        let b = TopicBank::generate(7);
        let c = TopicBank::generate(8);
        assert_eq!(a.topics(), b.topics());
        // Topic set is identical but variants differ with the seed.
        assert_eq!(a.len(), c.len());
        assert_ne!(
            a.topics()
                .iter()
                .map(|t| t.variants.clone())
                .collect::<Vec<_>>(),
            c.topics()
                .iter()
                .map(|t| t.variants.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paraphrase_indexing_wraps_around() {
        let bank = TopicBank::generate(3);
        let t = bank.topic(0);
        assert_eq!(t.paraphrase(0), t.canonical());
        assert_eq!(t.paraphrase(t.variant_count()), t.canonical());
        assert_ne!(t.paraphrase(1), t.canonical());
    }

    #[test]
    fn all_queries_counts_every_variant() {
        let bank = TopicBank::generate(4);
        let expected: usize = bank.topics().iter().map(|t| t.variant_count()).sum();
        assert_eq!(bank.all_queries().len(), expected);
    }

    #[test]
    fn variants_of_one_topic_share_meaningful_words() {
        // Sanity check that paraphrases retain content-word overlap (the
        // basis for learnable semantic matching).
        let bank = TopicBank::generate(5);
        let tok = mc_text::Tokenizer::default();
        let mut checked = 0;
        for topic in bank.topics().iter().step_by(37) {
            let sim = mc_text::tokenizer::jaccard_similarity(
                &tok,
                topic.canonical(),
                topic.paraphrase(1),
            );
            assert!(sim > 0.0, "variants must overlap: {:?}", topic.variants);
            checked += 1;
        }
        assert!(checked > 5);
    }
}
