//! Labelled query-pair dataset generation (the GPTCache-corpus stand-in).

use mc_text::{PairDataset, QueryPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TopicBank;

/// Generates `n` labelled pairs with approximately `duplicate_ratio` of them
/// being duplicates.
///
/// * Duplicate pairs are two *different* variants of the same topic.
/// * Non-duplicate pairs are variants of two different topics; half of the
///   non-duplicates are drawn from the *same domain* so the dataset contains
///   hard negatives (lexically close, semantically different).
pub fn generate_pairs(bank: &TopicBank, n: usize, duplicate_ratio: f32, seed: u64) -> PairDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n);
    if bank.is_empty() {
        return PairDataset::new(pairs);
    }
    let ratio = duplicate_ratio.clamp(0.0, 1.0);
    for i in 0..n {
        let make_duplicate = (i as f32 + 0.5) / n as f32 <= ratio;
        if make_duplicate {
            let topic = bank.topic(rng.random_range(0..bank.len()));
            let a_idx = rng.random_range(0..topic.variant_count());
            let mut b_idx = rng.random_range(0..topic.variant_count());
            if topic.variant_count() > 1 {
                while b_idx == a_idx {
                    b_idx = rng.random_range(0..topic.variant_count());
                }
            }
            pairs.push(QueryPair::new(
                topic.paraphrase(a_idx),
                topic.paraphrase(b_idx),
                true,
            ));
        } else {
            let t1 = bank.topic(rng.random_range(0..bank.len()));
            // Half the negatives come from the same domain (hard negatives).
            let same_domain = rng.random_range(0..2u8) == 0;
            let t2 = loop {
                let candidate = bank.topic(rng.random_range(0..bank.len()));
                if candidate.id == t1.id {
                    continue;
                }
                if !same_domain || candidate.domain == t1.domain {
                    break candidate;
                }
            };
            pairs.push(QueryPair::new(
                t1.paraphrase(rng.random_range(0..t1.variant_count())),
                t2.paraphrase(rng.random_range(0..t2.variant_count())),
                false,
            ));
        }
    }
    // Shuffle so duplicates and non-duplicates interleave.
    for i in (1..pairs.len()).rev() {
        let j = rng.random_range(0..=i);
        pairs.swap(i, j);
    }
    PairDataset::new(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_and_ratio() {
        let bank = TopicBank::generate(1);
        let ds = generate_pairs(&bank, 400, 0.3, 2);
        assert_eq!(ds.len(), 400);
        let ratio = ds.duplicate_ratio();
        assert!(
            (ratio - 0.3).abs() < 0.05,
            "duplicate ratio {ratio} should be close to 0.3"
        );
    }

    #[test]
    fn duplicate_pairs_use_distinct_variants_of_one_topic() {
        let bank = TopicBank::generate(3);
        let ds = generate_pairs(&bank, 200, 1.0, 4);
        for p in &ds.pairs {
            assert!(p.is_duplicate);
            assert_ne!(
                p.query_a, p.query_b,
                "duplicates must not be verbatim copies"
            );
        }
    }

    #[test]
    fn non_duplicate_pairs_mix_domains() {
        let bank = TopicBank::generate(5);
        let ds = generate_pairs(&bank, 300, 0.0, 6);
        assert_eq!(ds.duplicate_count(), 0);
        // Every pair uses two different query strings.
        for p in &ds.pairs {
            assert_ne!(p.query_a, p.query_b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let bank = TopicBank::generate(7);
        let a = generate_pairs(&bank, 100, 0.5, 9);
        let b = generate_pairs(&bank, 100, 0.5, 9);
        let c = generate_pairs(&bank, 100, 0.5, 10);
        assert_eq!(a.pairs, b.pairs);
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn extreme_ratios_are_clamped() {
        let bank = TopicBank::generate(8);
        let all_dup = generate_pairs(&bank, 50, 2.0, 1);
        assert_eq!(all_dup.duplicate_count(), 50);
        let none = generate_pairs(&bank, 50, -1.0, 1);
        assert_eq!(none.duplicate_count(), 0);
        assert!(generate_pairs(&bank, 0, 0.5, 1).is_empty());
    }
}
