//! Synthetic embedding clouds with the cluster structure real query
//! embeddings have.
//!
//! Uniform random unit vectors are the *worst* case for any partitioning
//! index (in high dimensions every point is nearly equidistant from every
//! other, so cells carry no neighbourhood information). Real cached query
//! embeddings are nothing like that: queries cluster by topic, and a probe
//! that can hit the cache is by definition close to some cached entry. This
//! module generates that shape — a mixture of topic centroids on the unit
//! sphere with per-topic spread — for index benchmarks and recall tests.

use mc_tensor::{rng, vector};
use rand::rngs::StdRng;

/// A deterministic synthetic embedding cloud: `n` unit vectors drawn from
/// `topics` spherical clusters.
#[derive(Debug, Clone)]
pub struct EmbeddingCloud {
    /// The generated unit vectors, one per cached entry.
    pub vectors: Vec<Vec<f32>>,
    /// Dimensionality of every vector.
    pub dims: usize,
    spread: f32,
    seed: u64,
}

impl EmbeddingCloud {
    /// Generates `n` unit vectors of `dims` dimensions from `topics` cluster
    /// centres with the given intra-topic `spread` (0 = all duplicates,
    /// larger = fuzzier topics; 0.4–0.7 matches what a trained encoder does
    /// to paraphrase families).
    pub fn generate(n: usize, dims: usize, topics: usize, spread: f32, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let topics = topics.max(1);
        let centers: Vec<Vec<f32>> = (0..topics)
            .map(|_| {
                let mut c = rng::uniform_vec(dims, 1.0, &mut r);
                vector::normalize(&mut c);
                c
            })
            .collect();
        let vectors = (0..n)
            .map(|i| {
                let center = &centers[i % topics];
                jitter(center, spread, &mut r)
            })
            .collect();
        Self {
            vectors,
            dims,
            spread,
            seed,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Produces `count` probe vectors, each a small perturbation of a stored
    /// vector — the shape of a cache probe that *should* hit (a paraphrase of
    /// something cached). `closeness` scales the perturbation relative to
    /// the cloud's own spread (0.25 ⇒ the probe is much closer to its base
    /// entry than entries of the same topic are to each other).
    pub fn probes(&self, count: usize, closeness: f32) -> Vec<Vec<f32>> {
        if self.vectors.is_empty() {
            return Vec::new();
        }
        let mut r = rng::seeded(self.seed ^ 0x9E37_79B9);
        let noise = self.spread * closeness;
        (0..count)
            .map(|i| {
                let base = &self.vectors[(i * 7919) % self.vectors.len()];
                jitter(base, noise, &mut r)
            })
            .collect()
    }
}

/// `normalize(base + scale * gaussian_noise)`.
fn jitter(base: &[f32], scale: f32, r: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = base
        .iter()
        .map(|&x| x + scale * rng::sample_standard_normal(r) / (base.len() as f32).sqrt())
        .collect();
    vector::normalize(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_unit_norm_and_deterministic() {
        let cloud = EmbeddingCloud::generate(500, 32, 20, 0.5, 42);
        assert_eq!(cloud.len(), 500);
        assert!(!cloud.is_empty());
        for v in &cloud.vectors {
            assert_eq!(v.len(), 32);
            assert!((vector::norm(v) - 1.0).abs() < 1e-5);
        }
        let again = EmbeddingCloud::generate(500, 32, 20, 0.5, 42);
        assert_eq!(cloud.vectors, again.vectors);
    }

    #[test]
    fn same_topic_vectors_are_closer_than_cross_topic() {
        let cloud = EmbeddingCloud::generate(400, 48, 40, 0.5, 7);
        // Entries i and i+topics share a topic; i and i+1 do not.
        let mut same = 0.0f32;
        let mut cross = 0.0f32;
        let topics = 40;
        for i in 0..topics {
            same +=
                vector::cosine_similarity_normalized(&cloud.vectors[i], &cloud.vectors[i + topics]);
            cross += vector::cosine_similarity_normalized(
                &cloud.vectors[i],
                &cloud.vectors[(i + 1) % topics],
            );
        }
        assert!(
            same / topics as f32 > cross / topics as f32 + 0.2,
            "topic structure must be present (same={same}, cross={cross})"
        );
    }

    #[test]
    fn probes_of_an_empty_cloud_are_empty() {
        let cloud = EmbeddingCloud::generate(0, 8, 4, 0.5, 1);
        assert!(cloud.probes(3, 0.25).is_empty());
    }

    #[test]
    fn probes_are_close_to_their_base_entries() {
        let cloud = EmbeddingCloud::generate(300, 32, 30, 0.5, 13);
        let probes = cloud.probes(50, 0.25);
        assert_eq!(probes.len(), 50);
        for (i, probe) in probes.iter().enumerate() {
            let base = &cloud.vectors[(i * 7919) % cloud.len()];
            let sim = vector::cosine_similarity_normalized(probe, base);
            assert!(sim > 0.9, "probe {i} drifted from its base (sim={sim})");
        }
    }
}
