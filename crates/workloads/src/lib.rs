//! # mc-workloads
//!
//! Synthetic workload generators standing in for the paper's datasets.
//!
//! The paper evaluates on (a) the GPTCache benchmark dataset of duplicate /
//! non-duplicate query pairs, (b) a 450-query GPT-4-generated contextual
//! dataset, and (c) a 27K-query user study of 20 ChatGPT users (Figure 4).
//! None of those artefacts can be redistributed here, so this crate generates
//! deterministic synthetic equivalents with the properties the experiments
//! actually exercise:
//!
//! * [`topics`] — a combinatorial bank of canonical queries, each with
//!   several lexically-diverse paraphrases (synonym substitution + template
//!   variation), spanning several domains. Paraphrases of the same topic are
//!   semantic duplicates; different topics are non-duplicates, with same-
//!   domain topics acting as hard negatives.
//! * [`pairgen`] — labelled pair datasets (the GPTCache-style training /
//!   validation / test corpus).
//! * [`streams`] — cache population + probe workloads with a configurable
//!   duplicate ratio (the 1000-query standalone experiment of Section IV-B).
//! * [`contextual`] — conversations with follow-up queries whose correct
//!   interpretation depends on their parent query (the 450-query contextual
//!   experiment of Section IV-C).
//! * [`userstudy`] — the per-participant totals behind Figure 4 and a trace
//!   generator that reproduces them.
//! * [`embeddings`] — synthetic embedding clouds with realistic topic
//!   cluster structure, for vector-index benchmarks and recall tests.
//! * [`tenancy`] — multi-tenant serving schedules: Zipf-skewed per-tenant
//!   traffic shares with staggered diurnal bursts, each tenant drawing
//!   from its own topic universe (the `exp_tenancy` experiment).

pub mod contextual;
pub mod embeddings;
pub mod pairgen;
pub mod streams;
pub mod tenancy;
pub mod topics;
pub mod userstudy;

pub use contextual::{
    contextual_workload, followup_training_pairs, paper_contextual_workload, ContextualProbe,
    ContextualWorkload, PopulateItem, ProbeKind,
};
pub use embeddings::EmbeddingCloud;
pub use pairgen::generate_pairs;
pub use streams::{standalone_workload, CacheWorkload, ProbeQuery};
pub use tenancy::{tenancy_workload, TenancyConfig, TenancyOp, TenancyWorkload, TenantLoad};
pub use topics::{Topic, TopicBank};
pub use userstudy::{participant_totals, participant_trace, TraceQuery, UserStudy};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modules_compose() {
        let bank = TopicBank::generate(1);
        assert!(bank.len() > 100);
        let pairs = generate_pairs(&bank, 50, 0.5, 2);
        assert_eq!(pairs.len(), 50);
    }
}
