//! Multi-tenant serving workloads for the tenancy experiments.
//!
//! Real multi-tenant cache deployments are not uniform: a handful of hot
//! tenants dominate traffic (Zipf-skewed popularity), and each tenant's
//! request rate swings through the day (diurnal bursts) with peaks that
//! rarely line up across tenants. This module generates a deterministic
//! synthetic schedule with both properties so `exp_tenancy` can measure
//! per-tenant hit rate, latency, and occupancy under realistic contention
//! — in particular whether a background tenant keeps its quota floor while
//! a foreground tenant floods the cache.
//!
//! Each tenant draws its queries from its own slice of the topic bank
//! (seeded per tenant), so cross-tenant traffic is semantically disjoint:
//! a hit served to tenant A from tenant B's entry would be an isolation
//! bug, not a coincidence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::streams::{standalone_workload, ProbeQuery};
use crate::TopicBank;

/// Shape of a multi-tenant workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyConfig {
    /// Number of tenants (rank 0 is the hottest).
    pub tenants: usize,
    /// Zipf exponent for the per-tenant traffic share: share of rank `i`
    /// ∝ `1 / (i + 1)^zipf_s`. `0.0` is uniform; the experiments use
    /// values around `1.0`, which at 8 tenants gives roughly an 8:1
    /// hottest-to-coldest ratio.
    pub zipf_s: f64,
    /// Entries pre-inserted per tenant before the probe phase.
    pub cached_per_tenant: usize,
    /// Total probe operations across every tenant.
    pub probes: usize,
    /// Fraction of each tenant's probes that paraphrase one of its own
    /// cached entries (ground-truth hits).
    pub duplicate_ratio: f32,
    /// Length of one diurnal cycle in schedule ticks.
    pub day_ticks: usize,
    /// Peak-to-mean modulation of each tenant's request intensity over the
    /// diurnal cycle, in `[0, 1]`. `0.0` disables bursts.
    pub burst_amplitude: f64,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        Self {
            tenants: 4,
            zipf_s: 1.0,
            cached_per_tenant: 200,
            probes: 2000,
            duplicate_ratio: 0.5,
            day_ticks: 500,
            burst_amplitude: 0.6,
            seed: 2024,
        }
    }
}

/// One tenant's standing state: what it pre-populates and how much traffic
/// it is expected to send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Tenant name (`tenant-00`, `tenant-01`, …; rank order = heat order).
    pub name: String,
    /// Long-run traffic share from the Zipf law (sums to 1 across tenants).
    pub share: f64,
    /// Queries inserted under this tenant before the probe phase.
    pub populate: Vec<(String, usize)>,
}

/// One probe in the interleaved schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyOp {
    /// Index into [`TenancyWorkload::tenants`].
    pub tenant: usize,
    /// Position in the diurnal timeline (monotone non-decreasing over the
    /// schedule; `tick % day_ticks` is the time of day).
    pub tick: usize,
    /// The probe itself, with its ground-truth label scoped to the
    /// issuing tenant's own cache contents.
    pub probe: ProbeQuery,
}

/// A complete multi-tenant workload: per-tenant populate sets plus one
/// globally interleaved probe schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyWorkload {
    /// Per-tenant standing state, hottest first.
    pub tenants: Vec<TenantLoad>,
    /// Probes in issue order, tagged with tenant and diurnal tick.
    pub schedule: Vec<TenancyOp>,
}

impl TenancyWorkload {
    /// Number of scheduled probes issued by `tenant`.
    pub fn probes_for(&self, tenant: usize) -> usize {
        self.schedule
            .iter()
            .filter(|op| op.tenant == tenant)
            .count()
    }

    /// Ground-truth hit count for `tenant` (what a perfectly isolated,
    /// perfectly accurate cache would serve).
    pub fn expected_hits_for(&self, tenant: usize) -> usize {
        self.schedule
            .iter()
            .filter(|op| op.tenant == tenant && op.probe.should_hit)
            .count()
    }
}

/// Normalised Zipf shares for `n` ranks with exponent `s`.
fn zipf_shares(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Tenant `i`'s intensity multiplier at diurnal tick `t`: a sinusoid
/// around 1.0 with a per-tenant phase offset, so tenant peaks are
/// staggered across the day instead of synchronised.
fn diurnal_intensity(tenant: usize, n: usize, tick: usize, day_ticks: usize, amp: f64) -> f64 {
    if day_ticks == 0 || amp <= 0.0 {
        return 1.0;
    }
    let phase = tenant as f64 / n.max(1) as f64;
    let t = tick as f64 / day_ticks as f64;
    1.0 + amp.clamp(0.0, 1.0) * (std::f64::consts::TAU * (t + phase)).sin()
}

/// Generates the multi-tenant workload.
///
/// Deterministic under a fixed config: tenant populate sets, the schedule,
/// and every ground-truth label replay bit-identically. Each tenant's
/// queries come from a per-tenant topic bank (seeded `seed + rank`), so no
/// query text is shared across tenants.
///
/// # Panics
/// Panics when `tenants == 0`.
pub fn tenancy_workload(config: &TenancyConfig) -> TenancyWorkload {
    assert!(
        config.tenants > 0,
        "tenancy workload needs at least one tenant"
    );
    let shares = zipf_shares(config.tenants, config.zipf_s);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Per-tenant query pools. The pool is oversized relative to the
    // tenant's expected share so weighted sampling never runs dry; if it
    // does anyway (extreme burst alignment), the schedule cycles the pool
    // — ground truth stays correct because labels depend on topic
    // membership, not on first use.
    let mut tenants = Vec::with_capacity(config.tenants);
    let mut pools: Vec<Vec<ProbeQuery>> = Vec::with_capacity(config.tenants);
    for (rank, &share) in shares.iter().enumerate() {
        let bank = TopicBank::generate(config.seed + rank as u64);
        let budget = ((config.probes as f64 * share * 2.0) as usize).max(16);
        let mut w = standalone_workload(
            &bank,
            config.cached_per_tenant,
            budget,
            config.duplicate_ratio,
            config.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // The topic bank's paraphrase text repeats across seeds, so
        // namespace every query with the tenant name: pools become
        // textually disjoint while within-tenant paraphrase structure
        // (shared topic words plus a now-shared prefix) is preserved.
        let name = format!("tenant-{rank:02}");
        for (q, _) in &mut w.populate {
            *q = format!("[{name}] {q}");
        }
        for p in &mut w.probes {
            p.text = format!("[{name}] {}", p.text);
        }
        tenants.push(TenantLoad {
            name,
            share,
            populate: w.populate,
        });
        pools.push(w.probes);
    }

    // Interleaved schedule: at each tick, draw the issuing tenant from the
    // Zipf shares modulated by each tenant's diurnal intensity.
    let mut cursors = vec![0usize; config.tenants];
    let mut schedule = Vec::with_capacity(config.probes);
    for tick in 0..config.probes {
        let weights: Vec<f64> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                s * diurnal_intensity(
                    i,
                    config.tenants,
                    tick,
                    config.day_ticks,
                    config.burst_amplitude,
                )
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut draw = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut tenant = config.tenants - 1;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                tenant = i;
                break;
            }
            draw -= w;
        }
        let pool = &pools[tenant];
        let probe = pool[cursors[tenant] % pool.len()].clone();
        cursors[tenant] += 1;
        schedule.push(TenancyOp {
            tenant,
            tick,
            probe,
        });
    }

    TenancyWorkload { tenants, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let config = TenancyConfig {
            probes: 500,
            cached_per_tenant: 50,
            ..TenancyConfig::default()
        };
        assert_eq!(tenancy_workload(&config), tenancy_workload(&config));
    }

    #[test]
    fn zipf_shares_are_skewed_and_normalised() {
        let shares = zipf_shares(8, 1.0);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            shares[0] / shares[7] > 7.5,
            "rank 0 vs rank 7: {} / {}",
            shares[0],
            shares[7]
        );
        for w in shares.windows(2) {
            assert!(w[0] >= w[1], "shares must be monotone by rank");
        }
    }

    #[test]
    fn schedule_honours_the_traffic_shares() {
        let config = TenancyConfig {
            tenants: 4,
            probes: 4000,
            cached_per_tenant: 40,
            burst_amplitude: 0.0, // isolate the Zipf law from the bursts
            ..TenancyConfig::default()
        };
        let w = tenancy_workload(&config);
        assert_eq!(w.schedule.len(), config.probes);
        for (rank, tenant) in w.tenants.iter().enumerate() {
            let observed = w.probes_for(rank) as f64 / config.probes as f64;
            assert!(
                (observed - tenant.share).abs() < 0.05,
                "tenant {rank}: observed {observed:.3}, share {:.3}",
                tenant.share
            );
        }
    }

    #[test]
    fn bursts_modulate_traffic_through_the_day() {
        let config = TenancyConfig {
            tenants: 2,
            probes: 4000,
            cached_per_tenant: 40,
            day_ticks: 1000,
            burst_amplitude: 0.9,
            ..TenancyConfig::default()
        };
        let w = tenancy_workload(&config);
        // Tenant 1's phase offset puts its peak half a day after tenant
        // 0's; count its probes in opposite half-day windows.
        let first_half = w
            .schedule
            .iter()
            .filter(|op| op.tenant == 1 && op.tick % config.day_ticks < config.day_ticks / 2)
            .count();
        let second_half = w.probes_for(1) - first_half;
        assert!(
            second_half > first_half * 2,
            "diurnal burst must skew tenant 1 toward its peak window: \
             {first_half} vs {second_half}"
        );
    }

    #[test]
    fn tenant_query_pools_are_disjoint() {
        let config = TenancyConfig {
            tenants: 3,
            probes: 300,
            cached_per_tenant: 30,
            ..TenancyConfig::default()
        };
        let w = tenancy_workload(&config);
        let mut seen: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (rank, tenant) in w.tenants.iter().enumerate() {
            for (q, _) in &tenant.populate {
                if let Some(owner) = seen.insert(q.as_str(), rank) {
                    assert_eq!(owner, rank, "populate text shared across tenants: {q}");
                }
            }
        }
    }

    #[test]
    fn ground_truth_counts_are_consistent() {
        let config = TenancyConfig {
            probes: 1000,
            cached_per_tenant: 100,
            ..TenancyConfig::default()
        };
        let w = tenancy_workload(&config);
        let total: usize = (0..config.tenants).map(|t| w.probes_for(t)).sum();
        assert_eq!(total, config.probes);
        for t in 0..config.tenants {
            assert!(w.expected_hits_for(t) <= w.probes_for(t));
        }
    }
}
