//! Cache population + probe workloads for the end-to-end experiments.
//!
//! Section IV-B populates the cache with 1000 queries and then probes it with
//! 1000 new queries of which 30% are semantic duplicates of cached ones
//! (matching the resubmission rates reported for web search). This module
//! generates that workload shape from the topic bank.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TopicBank;

/// A query sent to the cache-enabled service during the probe phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeQuery {
    /// The query text.
    pub text: String,
    /// Topic this query belongs to.
    pub topic_id: usize,
    /// Ground truth: `true` when a semantically equivalent query is cached,
    /// so the correct behaviour is a cache hit.
    pub should_hit: bool,
}

/// A complete standalone-query workload: what to preload and what to probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheWorkload {
    /// Queries inserted into the cache before measurement, with their topics.
    pub populate: Vec<(String, usize)>,
    /// Probe queries with ground-truth labels.
    pub probes: Vec<ProbeQuery>,
}

impl CacheWorkload {
    /// Number of probe queries whose ground truth is a hit.
    pub fn expected_hits(&self) -> usize {
        self.probes.iter().filter(|p| p.should_hit).count()
    }

    /// Fraction of probes that should hit.
    pub fn duplicate_ratio(&self) -> f32 {
        if self.probes.is_empty() {
            0.0
        } else {
            self.expected_hits() as f32 / self.probes.len() as f32
        }
    }
}

/// Generates a standalone workload: `cached` populated queries (one per
/// distinct topic) and `probes` probe queries of which `duplicate_ratio` are
/// paraphrases of cached topics and the rest come from topics that were never
/// cached.
///
/// Topics are recycled (with different paraphrase variants) if the bank has
/// fewer topics than `cached + probes` requires; ground-truth labels stay
/// correct either way because they are derived from cache membership of the
/// topic, not from string identity.
pub fn standalone_workload(
    bank: &TopicBank,
    cached: usize,
    probes: usize,
    duplicate_ratio: f32,
    seed: u64,
) -> CacheWorkload {
    let mut rng = StdRng::seed_from_u64(seed);

    // Choose which topics are cached vs held out at sibling-group granularity
    // (see `Topic::group`): a held-out probe is about a genuinely different
    // subject than anything cached, mirroring how real "new" questions differ
    // from a user's history, rather than being one-word edits of it.
    let groups = bank.groups();
    let group_perm = mc_tensor::rng::permutation(groups.len(), &mut rng);
    let mut cached_topics: Vec<usize> = Vec::new();
    let mut heldout_topics: Vec<usize> = Vec::new();
    for (rank, &g) in group_perm.iter().enumerate() {
        if rank % 2 == 0 && cached_topics.len() < cached.max(1) {
            cached_topics.extend(&groups[g]);
        } else {
            heldout_topics.extend(&groups[g]);
        }
    }
    if cached_topics.is_empty() {
        cached_topics.extend(&groups[group_perm[0]]);
    }
    cached_topics.truncate(cached.max(1));

    // Populate: cycle through the cached topics with their canonical variant
    // first, then additional variants if more cached entries are requested.
    let mut populate = Vec::with_capacity(cached);
    for i in 0..cached {
        let topic = bank.topic(cached_topics[i % cached_topics.len()]);
        let variant = i / cached_topics.len();
        populate.push((topic.paraphrase(variant).to_string(), topic.id));
    }

    // Probes: duplicates draw a *different* variant of a cached topic;
    // non-duplicates draw any variant of a held-out topic.
    let ratio = duplicate_ratio.clamp(0.0, 1.0);
    let n_dup = (probes as f32 * ratio).round() as usize;
    let mut probe_list = Vec::with_capacity(probes);
    for i in 0..probes {
        if i < n_dup {
            let topic = bank.topic(cached_topics[rng.random_range(0..cached_topics.len())]);
            // Populated entries used low variant indices; probe with a later
            // variant so probe text differs from the cached text.
            let variant = 1 + rng.random_range(0..topic.variant_count().saturating_sub(1).max(1));
            probe_list.push(ProbeQuery {
                text: topic.paraphrase(variant).to_string(),
                topic_id: topic.id,
                should_hit: true,
            });
        } else {
            let source = if heldout_topics.is_empty() {
                &cached_topics
            } else {
                &heldout_topics
            };
            let topic = bank.topic(source[rng.random_range(0..source.len())]);
            probe_list.push(ProbeQuery {
                text: topic
                    .paraphrase(rng.random_range(0..topic.variant_count()))
                    .to_string(),
                topic_id: topic.id,
                should_hit: heldout_topics.is_empty(),
            });
        }
    }
    // Interleave duplicates and non-duplicates.
    for i in (1..probe_list.len()).rev() {
        let j = rng.random_range(0..=i);
        probe_list.swap(i, j);
    }

    CacheWorkload {
        populate,
        probes: probe_list,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matches_requested_shape() {
        let bank = TopicBank::generate(1);
        let w = standalone_workload(&bank, 200, 300, 0.3, 2);
        assert_eq!(w.populate.len(), 200);
        assert_eq!(w.probes.len(), 300);
        assert!(
            (w.duplicate_ratio() - 0.3).abs() < 0.02,
            "{}",
            w.duplicate_ratio()
        );
        assert_eq!(w.expected_hits(), 90);
    }

    #[test]
    fn duplicate_probes_reference_cached_topics_with_new_text() {
        let bank = TopicBank::generate(3);
        let w = standalone_workload(&bank, 100, 100, 0.5, 4);
        let cached_topics: std::collections::HashSet<usize> =
            w.populate.iter().map(|(_, t)| *t).collect();
        let cached_texts: std::collections::HashSet<&str> =
            w.populate.iter().map(|(q, _)| q.as_str()).collect();
        for p in w.probes.iter().filter(|p| p.should_hit) {
            assert!(
                cached_topics.contains(&p.topic_id),
                "duplicate probe must reference a cached topic"
            );
            assert!(
                !cached_texts.contains(p.text.as_str()),
                "duplicate probes should paraphrase, not repeat verbatim: {}",
                p.text
            );
        }
    }

    #[test]
    fn non_duplicate_probes_use_uncached_topics() {
        let bank = TopicBank::generate(5);
        let w = standalone_workload(&bank, 80, 120, 0.25, 6);
        let cached_topics: std::collections::HashSet<usize> =
            w.populate.iter().map(|(_, t)| *t).collect();
        for p in w.probes.iter().filter(|p| !p.should_hit) {
            assert!(!cached_topics.contains(&p.topic_id));
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let bank = TopicBank::generate(7);
        let a = standalone_workload(&bank, 50, 60, 0.3, 8);
        let b = standalone_workload(&bank, 50, 60, 0.3, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn more_cached_entries_than_topics_recycles_variants() {
        let bank = TopicBank::generate(9);
        let w = standalone_workload(&bank, bank.len() * 2, 50, 0.3, 10);
        assert_eq!(w.populate.len(), bank.len() * 2);
        // All populated texts are still distinct or at least mostly distinct
        // (recycling uses different variants).
        let unique: std::collections::HashSet<&str> =
            w.populate.iter().map(|(q, _)| q.as_str()).collect();
        assert!(unique.len() > w.populate.len() / 2);
    }

    #[test]
    fn empty_probe_list_ratio_is_zero() {
        let bank = TopicBank::generate(11);
        let w = standalone_workload(&bank, 10, 0, 0.3, 1);
        assert_eq!(w.duplicate_ratio(), 0.0);
    }
}
