//! The 20-participant ChatGPT user study behind Figure 4.
//!
//! The paper reports, for each of 20 participants, the total number of
//! queries they submitted and how many were similar to previously submitted
//! ones, concluding that ~31% of queries are repeats on average. The exact
//! per-participant numbers are reproduced here as reference data, and a trace
//! generator synthesises query streams with the same totals and duplicate
//! counts so the end-to-end cache can be exercised on realistic per-user
//! volumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TopicBank;

/// Per-participant totals read off Figure 4 of the paper: (total queries,
/// duplicate queries) for participants 1..=20.
pub const PAPER_FIGURE4: [(u64, u64); 20] = [
    (1571, 573),
    (457, 194),
    (428, 144),
    (180, 61),
    (2530, 798),
    (1531, 547),
    (427, 132),
    (2647, 700),
    (1480, 404),
    (119, 54),
    (3367, 1269),
    (91, 19),
    (345, 120),
    (116, 18),
    (352, 88),
    (3710, 1247),
    (242, 58),
    (466, 83),
    (104, 36),
    (6984, 2850),
];

/// Returns the paper's per-participant (total, duplicate) counts.
pub fn participant_totals() -> &'static [(u64, u64); 20] {
    &PAPER_FIGURE4
}

/// Summary statistics over the user study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStudy {
    /// Per-participant (total queries, duplicate queries).
    pub participants: Vec<(u64, u64)>,
}

impl UserStudy {
    /// The paper's study.
    pub fn paper() -> Self {
        Self {
            participants: PAPER_FIGURE4.to_vec(),
        }
    }

    /// Total queries across all participants (the paper reports "over 27K").
    pub fn total_queries(&self) -> u64 {
        self.participants.iter().map(|(t, _)| t).sum()
    }

    /// Total duplicate queries across all participants.
    pub fn total_duplicates(&self) -> u64 {
        self.participants.iter().map(|(_, d)| d).sum()
    }

    /// Mean of the per-participant duplicate ratios (the paper's "on average,
    /// 31% of queries are similar to previously submitted queries").
    pub fn mean_duplicate_ratio(&self) -> f64 {
        if self.participants.is_empty() {
            return 0.0;
        }
        self.participants
            .iter()
            .map(|(t, d)| if *t == 0 { 0.0 } else { *d as f64 / *t as f64 })
            .sum::<f64>()
            / self.participants.len() as f64
    }

    /// Pooled duplicate ratio (duplicates / totals).
    pub fn pooled_duplicate_ratio(&self) -> f64 {
        let total = self.total_queries();
        if total == 0 {
            0.0
        } else {
            self.total_duplicates() as f64 / total as f64
        }
    }
}

/// One synthetic query in a participant trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceQuery {
    /// Query text.
    pub text: String,
    /// Topic this query belongs to.
    pub topic_id: usize,
    /// `true` when this query repeats (paraphrases) an earlier query in the
    /// same trace.
    pub is_repeat: bool,
}

/// Generates a synthetic query trace with `total` queries of which `repeats`
/// paraphrase earlier queries in the trace (per-participant Figure 4 shape).
/// Truncates `repeats` to `total - 1` since the first query cannot repeat.
pub fn participant_trace(
    bank: &TopicBank,
    total: usize,
    repeats: usize,
    seed: u64,
) -> Vec<TraceQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let repeats = repeats.min(total.saturating_sub(1));
    let fresh = total - repeats;
    let mut trace: Vec<TraceQuery> = Vec::with_capacity(total);
    let mut used_topics: Vec<usize> = Vec::new();

    // Decide which positions are repeats: spread them after the first query.
    let mut is_repeat = vec![false; total];
    let mut placed = 0;
    while placed < repeats {
        let pos = rng.random_range(1..total);
        if !is_repeat[pos] {
            is_repeat[pos] = true;
            placed += 1;
        }
    }
    let _ = fresh;

    for flag in is_repeat.into_iter() {
        if flag && !used_topics.is_empty() {
            let topic = bank.topic(used_topics[rng.random_range(0..used_topics.len())]);
            let variant = rng.random_range(0..topic.variant_count());
            trace.push(TraceQuery {
                text: topic.paraphrase(variant).to_string(),
                topic_id: topic.id,
                is_repeat: true,
            });
        } else {
            let topic = bank.topic(rng.random_range(0..bank.len()));
            used_topics.push(topic.id);
            trace.push(TraceQuery {
                text: topic.canonical().to_string(),
                topic_id: topic.id,
                is_repeat: false,
            });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_reported_aggregates() {
        let study = UserStudy::paper();
        assert_eq!(study.participants.len(), 20);
        // "over 27K queries"
        assert!(study.total_queries() > 27_000);
        // "about 31% of user queries were similar to previous ones"
        let mean = study.mean_duplicate_ratio();
        assert!((mean - 0.31).abs() < 0.03, "mean duplicate ratio {mean}");
        assert!(study.pooled_duplicate_ratio() > 0.25);
        assert_eq!(participant_totals()[0], (1571, 573));
    }

    #[test]
    fn empty_study_is_well_defined() {
        let study = UserStudy {
            participants: vec![],
        };
        assert_eq!(study.mean_duplicate_ratio(), 0.0);
        assert_eq!(study.pooled_duplicate_ratio(), 0.0);
    }

    #[test]
    fn trace_has_requested_length_and_repeat_count() {
        let bank = TopicBank::generate(1);
        let trace = participant_trace(&bank, 500, 150, 2);
        assert_eq!(trace.len(), 500);
        let repeats = trace.iter().filter(|q| q.is_repeat).count();
        assert_eq!(repeats, 150);
        assert!(!trace[0].is_repeat, "first query can never be a repeat");
    }

    #[test]
    fn repeats_reference_previously_seen_topics() {
        let bank = TopicBank::generate(3);
        let trace = participant_trace(&bank, 200, 80, 4);
        let mut seen = std::collections::HashSet::new();
        for q in &trace {
            if q.is_repeat {
                assert!(
                    seen.contains(&q.topic_id),
                    "repeat query must reuse an earlier topic"
                );
            }
            seen.insert(q.topic_id);
        }
    }

    #[test]
    fn repeat_count_is_truncated_when_impossible() {
        let bank = TopicBank::generate(5);
        let trace = participant_trace(&bank, 3, 10, 6);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.iter().filter(|q| q.is_repeat).count(), 2);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let bank = TopicBank::generate(7);
        let a = participant_trace(&bank, 100, 30, 8);
        let b = participant_trace(&bank, 100, 30, 8);
        assert_eq!(a, b);
    }
}
