//! Contextual-query workload (the 450-query GPT-4 dataset stand-in).
//!
//! Section IV-C populates the cache with 200 queries (100 standalone + 100
//! follow-ups of those standalone queries) and probes it with 250 queries:
//! 75 duplicate standalone queries, 75 duplicate contextual queries, and 100
//! non-duplicate queries. The critical property is that a follow-up such as
//! "change the color to red" is lexically similar across conversations but
//! must only hit the cache when its *parent* matches — the situation that
//! produces GPTCache's 54 false hits in Figure 8a.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TopicBank;

/// Generic follow-up intents that make sense after almost any query, each
/// with paraphrase variants (index 0 is canonical).
const FOLLOW_UPS: &[&[&str]] = &[
    &[
        "change the color to red",
        "make it red instead",
        "switch the colour to red please",
        "use red as the color",
    ],
    &[
        "make it shorter",
        "can you shorten it",
        "give me a more compact version",
        "trim it down a bit",
    ],
    &[
        "explain it in simpler terms",
        "explain that more simply",
        "give me a simpler explanation",
        "break it down in plain language",
    ],
    &[
        "give me an example",
        "show me a concrete example",
        "can you provide an example",
        "illustrate that with an example",
    ],
    &[
        "translate it to french",
        "give me the french version",
        "say that in french",
        "convert it into french",
    ],
    &[
        "add error handling",
        "include error handling",
        "handle the error cases too",
        "make it robust to errors",
    ],
    &[
        "make it faster",
        "optimise it for speed",
        "improve its performance",
        "speed it up",
    ],
    &[
        "turn it into a bullet list",
        "format it as bullet points",
        "rewrite it as a list",
        "present that as bullets",
    ],
];

/// What kind of probe a contextual probe is (used for per-kind reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Paraphrase of a cached standalone query — should hit.
    DuplicateStandalone,
    /// Paraphrase of a cached follow-up *with the same parent* — should hit.
    DuplicateContextual,
    /// A standalone query from a topic that was never cached — should miss.
    NovelStandalone,
    /// A follow-up that is lexically similar to a cached follow-up but issued
    /// under a different conversation — should miss (GPTCache's failure mode).
    ContextMismatch,
}

/// One entry to preload into the cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulateItem {
    /// Query text.
    pub text: String,
    /// Index (into the populate list) of the parent query, or `None` for a
    /// standalone query.
    pub parent: Option<usize>,
    /// Topic id of the standalone query this item belongs to (its own topic
    /// for standalone items, the parent's topic for follow-ups).
    pub topic_id: usize,
    /// Follow-up intent index, when this item is a follow-up.
    pub followup_id: Option<usize>,
}

/// One probe query with its conversational context and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextualProbe {
    /// Query text.
    pub text: String,
    /// Conversation history preceding this query (oldest first). Empty for
    /// standalone probes.
    pub context: Vec<String>,
    /// Ground truth: should this probe be served from the cache?
    pub should_hit: bool,
    /// Which scenario this probe exercises.
    pub kind: ProbeKind,
    /// Topic id of the conversation this probe belongs to.
    pub topic_id: usize,
}

/// The full contextual workload (populate + probes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextualWorkload {
    /// Entries to preload, in order (follow-ups always appear after their
    /// parent so `parent` indices are valid at insertion time).
    pub populate: Vec<PopulateItem>,
    /// Probe queries.
    pub probes: Vec<ContextualProbe>,
}

impl ContextualWorkload {
    /// Total number of queries in the workload (populate + probes), which the
    /// paper reports as 450.
    pub fn total_queries(&self) -> usize {
        self.populate.len() + self.probes.len()
    }

    /// Probes of a given kind.
    pub fn probes_of_kind(&self, kind: ProbeKind) -> Vec<&ContextualProbe> {
        self.probes.iter().filter(|p| p.kind == kind).collect()
    }
}

/// Generates the paper-shaped contextual workload: `standalone` cached
/// standalone queries each with one cached follow-up, probed by
/// `dup_standalone` + `dup_contextual` duplicates and `novel` non-duplicates
/// (half novel standalone topics, half context-mismatched follow-ups).
pub fn contextual_workload(
    bank: &TopicBank,
    standalone: usize,
    dup_standalone: usize,
    dup_contextual: usize,
    novel: usize,
    seed: u64,
) -> ContextualWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cached vs held-out topics are split at sibling-group granularity (see
    // `Topic::group`), so a "different conversation" is genuinely about a
    // different subject.
    let groups = bank.groups();
    let group_perm = mc_tensor::rng::permutation(groups.len(), &mut rng);
    let mut cached_topics: Vec<usize> = Vec::new();
    let mut heldout_topics: Vec<usize> = Vec::new();
    for (rank, &g) in group_perm.iter().enumerate() {
        if rank % 2 == 0 && cached_topics.len() < standalone.max(1) {
            cached_topics.extend(&groups[g]);
        } else {
            heldout_topics.extend(&groups[g]);
        }
    }
    if cached_topics.is_empty() {
        cached_topics.extend(&groups[group_perm[0]]);
    }
    cached_topics.truncate(standalone.max(1));

    // Populate: standalone queries then one follow-up per standalone query.
    let mut populate = Vec::with_capacity(standalone * 2);
    for i in 0..standalone {
        let topic = bank.topic(cached_topics[i % cached_topics.len()]);
        populate.push(PopulateItem {
            text: topic.paraphrase(i / cached_topics.len()).to_string(),
            parent: None,
            topic_id: topic.id,
            followup_id: None,
        });
    }
    for i in 0..standalone {
        let parent_item = &populate[i];
        let followup_id = i % FOLLOW_UPS.len();
        let text = FOLLOW_UPS[followup_id][0].to_string();
        populate.push(PopulateItem {
            text,
            parent: Some(i),
            topic_id: parent_item.topic_id,
            followup_id: Some(followup_id),
        });
    }

    let mut probes = Vec::new();

    // Duplicate standalone probes: another paraphrase of a cached topic.
    for i in 0..dup_standalone {
        let pos = i % standalone.max(1);
        let topic = bank.topic(populate[pos].topic_id);
        probes.push(ContextualProbe {
            text: topic
                .paraphrase(1 + (i % (topic.variant_count() - 1).max(1)))
                .to_string(),
            context: Vec::new(),
            should_hit: true,
            kind: ProbeKind::DuplicateStandalone,
            topic_id: topic.id,
        });
    }

    // Duplicate contextual probes: a paraphrase of a cached follow-up asked
    // again in the *same* conversation (the parent standalone query, possibly
    // rephrased, precedes it).
    for i in 0..dup_contextual {
        let pos = i % standalone.max(1);
        let parent_item = &populate[pos];
        let followup_id = pos % FOLLOW_UPS.len();
        let variants = FOLLOW_UPS[followup_id];
        let text = variants[1 + (i % (variants.len() - 1))].to_string();
        let parent_topic = bank.topic(parent_item.topic_id);
        probes.push(ContextualProbe {
            text,
            context: vec![parent_topic.paraphrase(1).to_string()],
            should_hit: true,
            kind: ProbeKind::DuplicateContextual,
            topic_id: parent_item.topic_id,
        });
    }

    // Non-duplicates: half novel standalone topics, half context mismatches.
    let n_mismatch = novel / 2;
    let n_novel_standalone = novel - n_mismatch;
    for i in 0..n_novel_standalone {
        let source = if heldout_topics.is_empty() {
            &cached_topics
        } else {
            &heldout_topics
        };
        let topic = bank.topic(source[(i * 7 + rng.random_range(0..source.len())) % source.len()]);
        probes.push(ContextualProbe {
            text: topic
                .paraphrase(rng.random_range(0..topic.variant_count()))
                .to_string(),
            context: Vec::new(),
            should_hit: heldout_topics.is_empty(),
            kind: ProbeKind::NovelStandalone,
            topic_id: topic.id,
        });
    }
    for i in 0..n_mismatch {
        // A follow-up phrased like a cached one, but the conversation it
        // belongs to is a *different*, uncached standalone query (Q3/Q4 in
        // Section II). Returning the cached follow-up response would be a
        // false hit. The new conversation's topic is drawn from a *different
        // domain* than the cached parents of this follow-up: as in the
        // paper's example, the two conversations are genuinely about
        // different things, not one-word variations of the same request.
        let followup_id = i % FOLLOW_UPS.len();
        let variants = FOLLOW_UPS[followup_id];
        let parent_domains: std::collections::HashSet<&str> = populate
            .iter()
            .filter(|p| p.followup_id == Some(followup_id))
            .map(|p| bank.topic(p.topic_id).domain.as_str())
            .collect();
        let source = if heldout_topics.is_empty() {
            &cached_topics
        } else {
            &heldout_topics
        };
        let mut new_parent_topic = bank.topic(source[rng.random_range(0..source.len())]);
        for _ in 0..64 {
            if !parent_domains.contains(new_parent_topic.domain.as_str()) {
                break;
            }
            new_parent_topic = bank.topic(source[rng.random_range(0..source.len())]);
        }
        probes.push(ContextualProbe {
            text: variants[i % variants.len()].to_string(),
            context: vec![new_parent_topic.canonical().to_string()],
            should_hit: false,
            kind: ProbeKind::ContextMismatch,
            topic_id: new_parent_topic.id,
        });
    }

    // Interleave probe kinds deterministically.
    for i in (1..probes.len()).rev() {
        let j = rng.random_range(0..=i);
        probes.swap(i, j);
    }

    ContextualWorkload { populate, probes }
}

/// Labelled pairs over the follow-up intents: paraphrases of the same
/// follow-up are duplicates, different follow-ups are non-duplicates. Mixed
/// into the training corpus so the encoder also learns to match the short
/// imperative follow-up phrasings that contextual conversations produce.
pub fn followup_training_pairs() -> mc_text::PairDataset {
    let mut pairs = Vec::new();
    for (i, variants) in FOLLOW_UPS.iter().enumerate() {
        for a in 0..variants.len() {
            for b in (a + 1)..variants.len() {
                pairs.push(mc_text::QueryPair::new(variants[a], variants[b], true));
            }
        }
        let other = FOLLOW_UPS[(i + 1) % FOLLOW_UPS.len()];
        pairs.push(mc_text::QueryPair::new(variants[0], other[0], false));
        pairs.push(mc_text::QueryPair::new(
            variants[variants.len() - 1],
            other[1],
            false,
        ));
    }
    mc_text::PairDataset::new(pairs)
}

/// The exact configuration the paper uses: 100 standalone + 100 contextual
/// cached queries, probed with 75 + 75 duplicates and 100 non-duplicates —
/// 450 queries in total.
pub fn paper_contextual_workload(bank: &TopicBank, seed: u64) -> ContextualWorkload {
    contextual_workload(bank, 100, 75, 75, 100, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_has_450_queries() {
        let bank = TopicBank::generate(1);
        let w = paper_contextual_workload(&bank, 2);
        assert_eq!(w.populate.len(), 200);
        assert_eq!(w.probes.len(), 250);
        assert_eq!(w.total_queries(), 450);
        assert_eq!(w.probes_of_kind(ProbeKind::DuplicateStandalone).len(), 75);
        assert_eq!(w.probes_of_kind(ProbeKind::DuplicateContextual).len(), 75);
        assert_eq!(
            w.probes_of_kind(ProbeKind::NovelStandalone).len()
                + w.probes_of_kind(ProbeKind::ContextMismatch).len(),
            100
        );
    }

    #[test]
    fn follow_ups_reference_valid_parents() {
        let bank = TopicBank::generate(3);
        let w = paper_contextual_workload(&bank, 4);
        for (i, item) in w.populate.iter().enumerate() {
            if let Some(parent) = item.parent {
                assert!(parent < i, "parent must be inserted before its follow-up");
                assert!(
                    w.populate[parent].parent.is_none(),
                    "parents are standalone"
                );
                assert_eq!(w.populate[parent].topic_id, item.topic_id);
                assert!(item.followup_id.is_some());
            }
        }
        let standalone_count = w.populate.iter().filter(|p| p.parent.is_none()).count();
        assert_eq!(standalone_count, 100);
    }

    #[test]
    fn context_mismatch_probes_share_text_with_cached_followups_but_not_context() {
        let bank = TopicBank::generate(5);
        let w = paper_contextual_workload(&bank, 6);
        let cached_followup_texts: std::collections::HashSet<&str> = w
            .populate
            .iter()
            .filter(|p| p.parent.is_some())
            .map(|p| p.text.as_str())
            .collect();
        let mismatches = w.probes_of_kind(ProbeKind::ContextMismatch);
        assert!(!mismatches.is_empty());
        // Lexical trap: a good fraction of mismatch probes reuse the exact
        // cached follow-up wording (so keyword/semantic-only caches false-hit).
        let exact_overlap = mismatches
            .iter()
            .filter(|p| cached_followup_texts.contains(p.text.as_str()))
            .count();
        assert!(exact_overlap > 0);
        for p in &mismatches {
            assert!(!p.should_hit);
            assert!(
                !p.context.is_empty(),
                "mismatch probes carry their own context"
            );
        }
    }

    #[test]
    fn duplicate_contextual_probes_carry_matching_context() {
        let bank = TopicBank::generate(7);
        let w = paper_contextual_workload(&bank, 8);
        for p in w.probes_of_kind(ProbeKind::DuplicateContextual) {
            assert!(p.should_hit);
            assert_eq!(p.context.len(), 1);
            // The context is a paraphrase of the cached parent topic.
            let parent_topic = bank.topic(p.topic_id);
            assert!(parent_topic.variants.contains(&p.context[0]));
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let bank = TopicBank::generate(9);
        let a = paper_contextual_workload(&bank, 10);
        let b = paper_contextual_workload(&bank, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_sizes_are_respected() {
        let bank = TopicBank::generate(11);
        let w = contextual_workload(&bank, 10, 5, 7, 9, 12);
        assert_eq!(w.populate.len(), 20);
        assert_eq!(w.probes.len(), 21);
        assert_eq!(w.probes_of_kind(ProbeKind::DuplicateContextual).len(), 7);
    }
}
